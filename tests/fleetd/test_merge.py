"""The merge layer: a pure fold over shard results, in shard order."""

import json

from repro.fleetd.executor import ShardResult
from repro.fleetd.merge import (
    fleet_digest,
    format_report,
    merge_results,
    merge_timelines,
    write_report,
)
from repro.obs.metrics import merge_rows, sum_counters


def _result(index, **overrides):
    fields = dict(
        index=index, seed=100 + index, desktops=2, laptops=1,
        dispatched=1000 + index, sim_seconds=3600.0,
        digest="digest-%d" % index, events=10 + index,
        reports=[{"name": "s%02d-bach" % index, "attempts": 4,
                  "success_pct": 90.0, "missing_pct": 1.0}],
        metrics_rows=[{"metric": "cache.hits", "type": "counter",
                       "value": 5 + index, "labels": {"node": "n"}}],
        stream_stats={"monotone": True, "nodes": [], "kinds": {},
                      "first_time": 0.0, "last_time": 1.0,
                      "prefix": "s%02d-" % index},
        timeline=[{"time": 0.0, "kind": "cache_hit",
                   "node": "s%02d-bach" % index}],
    )
    fields.update(overrides)
    return ShardResult(**fields)


def test_fleet_digest_chains_in_shard_order():
    results = [_result(0), _result(1)]
    digest = fleet_digest(results)
    assert digest == fleet_digest([_result(0), _result(1)])
    # Order is load-bearing: swapped shards are a different fleet.
    swapped = [_result(1), _result(0)]
    assert fleet_digest(swapped) != digest


def test_fleet_digest_refuses_partial_coverage():
    assert fleet_digest([_result(0), _result(1, digest=None)]) is None


def test_merge_timelines_stamps_the_owning_shard():
    lines = merge_timelines([_result(0), _result(1)])
    assert len(lines) == 2
    assert json.loads(lines[0])["shard"] == 0
    assert json.loads(lines[1])["shard"] == 1
    assert merge_timelines([_result(0), _result(1, timeline=None)]) is None


def test_merge_rows_is_lossless_and_sorted():
    rows_a = [{"metric": "link.bytes_sent", "type": "counter",
               "value": 7, "labels": {"link": "modem"}}]
    rows_b = [{"metric": "link.bytes_sent", "type": "counter",
               "value": 9, "labels": {"link": "modem"}}]
    merged = merge_rows([(0, rows_a), (1, rows_b)])
    # Same metric + same labels from two shards must NOT collapse: the
    # shard label keeps both rows alive.
    assert len(merged) == 2
    assert [row["labels"]["shard"] for row in merged] == [0, 1]
    # Inputs were not mutated.
    assert "shard" not in rows_a[0]["labels"]
    assert sum_counters(merged) == {"link.bytes_sent": 16}


def test_merge_results_pools_and_sums():
    from repro.fleetd import plan_shards
    shards = plan_shards("fleet-8", days=0.5)
    report = merge_results("fleet-8", 0, 2, shards,
                           [_result(0), _result(1)])
    assert report.scenario == "fleet-8"
    assert report.workers == 2
    assert report.days == 0.5
    assert report.clients == 6
    assert report.dispatched == 2001
    assert report.validation_attempts == 8
    assert report.mean_success_pct == 90.0
    assert [client["shard"] for client in report.reports] == [0, 1]
    assert report.fleet_digest is not None
    assert len(report.timeline) == 2


def test_report_roundtrips_to_json(tmp_path):
    from repro.fleetd import plan_shards
    shards = plan_shards("fleet-8", days=0.5)
    report = merge_results("fleet-8", 0, 2, shards,
                           [_result(0), _result(1)])
    path = write_report(report, str(tmp_path / "FLEET_report.json"))
    loaded = json.load(open(path))
    assert loaded["schema"] == "repro.fleetd/1"
    assert loaded["fleet_digest"] == report.fleet_digest
    assert loaded["clients"] == 6
    assert len(loaded["shards"]) == 2
    text = format_report(report)
    assert "2 shard(s)" in text
    assert report.fleet_digest in text
