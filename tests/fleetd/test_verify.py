"""The equivalence proof, and that it actually catches divergence.

A verifier that always says yes is worse than none, so half of this
file plants corruptions — flipped digests, foreign node identities,
backwards timestamps — and checks the verify layer names them.
"""

import copy

import pytest

from repro.fleetd import (
    merged_stream_invariants,
    plan_shards,
    run_sharded,
    verify_sharded,
)
from repro.fleetd.verify import MERGED_INVARIANTS, compare_reports

DAYS = 0.1


@pytest.fixture(scope="module")
def pooled():
    return run_sharded("fleet-8", workers=2, days=DAYS)


def test_pooled_run_verifies_clean(pooled):
    verdict = verify_sharded("fleet-8", days=DAYS, report=pooled)
    assert verdict.ok
    assert verdict.shards == 2
    assert verdict.workers == 2
    text = verdict.format()
    assert "byte-identical" in text
    assert "%d invariant(s)" % len(MERGED_INVARIANTS) in text


def test_flipped_digest_is_named(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[1]["digest"] = "0" * 64
    verdict = verify_sharded("fleet-8", days=DAYS, report=tampered)
    assert not verdict.ok
    assert any(m.shard == 1 and m.name == "digest"
               for m in verdict.mismatches)
    assert "shard 01 digest" in verdict.format()


def test_tampered_client_report_is_caught(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.reports[0]["attempts"] += 1
    # validation_attempts is derived from the reports, so recompute it
    # the way a buggy merge would — keeping totals consistent makes
    # the reports comparison itself do the catching.
    tampered.validation_attempts += 1
    verdict = verify_sharded("fleet-8", days=DAYS, report=tampered)
    assert any(m.name in ("client reports", "validation_attempts")
               for m in verdict.mismatches)


def test_compare_reports_sees_shard_count_drift(pooled):
    truncated = copy.deepcopy(pooled)
    truncated.shards = truncated.shards[:1]
    mismatches = compare_reports(truncated, pooled)
    assert any(m.name == "shard count" for m in mismatches)


def test_invariants_pass_on_a_real_run(pooled):
    assert merged_stream_invariants(pooled) == []


def test_invariant_shard_cover(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[1]["index"] = 5
    assert any(v.startswith("shard-cover")
               for v in merged_stream_invariants(tampered))


def test_invariant_monotone_time(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[0]["stream_stats"]["monotone"] = False
    assert any("goes backwards" in v
               for v in merged_stream_invariants(tampered))


def test_invariant_taxonomy(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[0]["stream_stats"]["kinds"]["warp_drive"] = 3
    violations = merged_stream_invariants(tampered)
    assert any("taxonomy" in v and "warp_drive" in v for v in violations)


def test_invariant_ownership_foreign_prefix(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[0]["stream_stats"]["nodes"].append("s01-mallory")
    violations = merged_stream_invariants(tampered)
    assert any("outside its prefix" in v for v in violations)


def test_invariant_ownership_cross_shard_leak(pooled):
    tampered = copy.deepcopy(pooled)
    name = "s00-eve"
    tampered.shards[0]["stream_stats"]["nodes"].append(name)
    tampered.shards[1]["stream_stats"]["nodes"].append(name)
    violations = merged_stream_invariants(tampered)
    assert any("appears in shards" in v for v in violations)


def test_infrastructure_nodes_are_exempt(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[0]["stream_stats"]["nodes"].append("server")
    assert merged_stream_invariants(tampered) == \
        merged_stream_invariants(pooled)


def test_uninstrumented_shard_is_a_violation(pooled):
    tampered = copy.deepcopy(pooled)
    tampered.shards[1]["stream_stats"] = None
    assert any("no stream stats" in v
               for v in merged_stream_invariants(tampered))


def test_verify_runs_its_own_pool_when_not_given_one():
    verdict = verify_sharded("fleet-8", workers=1, days=DAYS)
    assert verdict.ok
    assert verdict.workers == 1


def test_plan_reuse_matches_report_days(pooled):
    # verify_sharded(days=None, report=...) must rebuild the plan with
    # the report's own days, not the catalogue default.
    verdict = verify_sharded("fleet-8", report=pooled)
    assert verdict.ok
    assert plan_shards("fleet-8", days=pooled.days)[0].days == DAYS
