"""Shard execution and the cross-process determinism guarantee.

The heart of this file is the equivalence satellite: ``fleet-8`` run
sharded with 1, 2, and 4 workers must merge to byte-identical output —
timeline, metrics, digests — across worker counts *and* against the
plain in-process run.  Worker count may only change wall-clock.
"""

import pytest

from repro.fleetd import plan_shards, run_sharded
from repro.fleetd.executor import digest_rows, run_shard

DAYS = 0.1   # keeps four full fleet-8 runs inside tier-1 budget


@pytest.fixture(scope="module")
def runs():
    """fleet-8 merged reports keyed by worker count (0 = in-process)."""
    return {workers: run_sharded("fleet-8", workers=workers, days=DAYS,
                                 with_timeline=True)
            for workers in (0, 1, 2, 4)}


def test_merged_output_identical_across_worker_counts(runs):
    reference = runs[0]
    assert reference.timeline, "in-process run carried no timeline"
    for workers in (1, 2, 4):
        pooled = runs[workers]
        assert pooled.workers == workers
        assert pooled.timeline == reference.timeline
        assert pooled.metrics_rows == reference.metrics_rows
        assert pooled.fleet_digest == reference.fleet_digest
        assert pooled.reports == reference.reports
        assert pooled.shards == reference.shards


def test_merged_report_totals(runs):
    report = runs[0]
    assert report.clients == 8
    assert len(report.shards) == 2
    assert report.dispatched == sum(s["dispatched"] for s in report.shards)
    assert report.dispatched > 0
    assert report.sim_seconds == pytest.approx(2 * DAYS * 86400.0)
    assert len(report.reports) == 8
    assert {client["shard"] for client in report.reports} == {0, 1}


def test_shard_digest_matches_shipped_timeline(runs):
    # The digest each worker computed over its own rows is the digest
    # of a fresh local run of the same shard — nothing got lost in
    # pickling, and "the same clients simulated alone" is literal.
    report = runs[2]
    shards = plan_shards("fleet-8", days=DAYS)
    local = run_shard(shards[0], with_timeline=True)
    assert digest_rows(local.timeline) == local.digest
    assert local.digest == report.shards[0]["digest"]


def test_run_shard_is_deterministic():
    shard = plan_shards("fleet-8", days=DAYS)[1]
    first = run_shard(shard)
    second = run_shard(shard)
    assert first.digest == second.digest
    assert first.events == second.events
    assert first.dispatched == second.dispatched
    assert first.reports == second.reports


def test_uninstrumented_run_carries_no_digest():
    shard = plan_shards("fleet-8", days=DAYS)[0]
    bare = run_shard(shard, instrument=False)
    assert bare.digest is None
    assert bare.events == 0
    assert bare.metrics_rows == []
    assert bare.stream_stats is None
    # ... but the kernel totals and client reports still come back.
    assert bare.dispatched > 0
    assert len(bare.reports) == shard.clients


def test_pool_never_outsizes_the_plan(runs):
    # workers=4 against a 2-shard plan must behave exactly like
    # workers=2 (pool capped at len(shards)); covered by the
    # equivalence assertions above, spelled out here for the reader.
    assert runs[4].timeline == runs[2].timeline
