"""Shard planning: partitioning, seeds, and the construction path."""

import pytest

from repro.bench.fleet import FleetConfig
from repro.fleetd import FLEET_SPECS, plan_shards, shard_config, shard_seed
from repro.fleetd.plan import _split
from repro.sim.rand import derive_rng


def test_catalogue_populations_are_consistent():
    for name, spec in FLEET_SPECS.items():
        assert spec.clients == spec.desktops + spec.laptops
        assert spec.shards >= 2, name
        assert spec.days > 0


@pytest.mark.parametrize("scenario", sorted(FLEET_SPECS))
def test_plan_partitions_the_whole_population(scenario):
    spec = FLEET_SPECS[scenario]
    shards = plan_shards(scenario)
    assert len(shards) == spec.shards
    assert sum(s.desktops for s in shards) == spec.desktops
    assert sum(s.laptops for s in shards) == spec.laptops
    assert [s.index for s in shards] == list(range(spec.shards))
    # The split is even: no shard more than one client apart.
    sizes = [s.clients for s in shards]
    assert max(sizes) - min(sizes) <= 2  # desktops and laptops split independently


def test_split_spreads_the_remainder():
    assert _split(10, 4) == [3, 3, 2, 2]
    assert _split(8, 4) == [2, 2, 2, 2]
    assert sum(_split(7, 3)) == 7


def test_prefixes_are_unique_and_identity_bearing():
    shards = plan_shards("fleet-64")
    prefixes = [s.name_prefix for s in shards]
    assert len(set(prefixes)) == len(prefixes)
    assert prefixes[0] == "s00-"
    assert prefixes[7] == "s07-"


def test_shard_seeds_route_through_derive_rng():
    assert shard_seed("fleet-8", 0, 1) == \
        derive_rng("fleetd", "fleet-8", 0, 1).getrandbits(32)
    # Distinct shards, scenarios, and fleet seeds all get distinct
    # universes.
    seeds = {shard_seed(sc, fs, ix)
             for sc in ("fleet-8", "fleet-32")
             for fs in (0, 1) for ix in (0, 1)}
    assert len(seeds) == 8


def test_plan_is_independent_of_how_it_will_run():
    # No worker count anywhere in the planning API: two plans of the
    # same (scenario, seed, days) are equal, full stop.
    assert plan_shards("fleet-8", seed=3) == plan_shards("fleet-8", seed=3)
    assert plan_shards("fleet-8", seed=3) != plan_shards("fleet-8", seed=4)


def test_days_override_reaches_every_shard():
    for shard in plan_shards("fleet-32", days=0.25):
        assert shard.days == 0.25
    # ... without perturbing the seeds.
    assert [s.seed for s in plan_shards("fleet-32", days=0.25)] == \
        [s.seed for s in plan_shards("fleet-32")]


def test_unknown_scenario_lists_the_catalogue():
    with pytest.raises(ValueError, match="fleet-1024"):
        plan_shards("fleet-7")


def test_shard_config_is_the_single_construction_path():
    shard = plan_shards("fleet-8")[1]
    config = shard_config(shard)
    assert isinstance(config, FleetConfig)
    assert config.desktops == shard.desktops
    assert config.laptops == shard.laptops
    assert config.days == shard.days
    assert config.seed == shard.seed
    assert config.name_prefix == shard.name_prefix
