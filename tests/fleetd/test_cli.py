"""The ``repro fleetd`` command and the perf ``--workers`` plumbing."""

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["fleetd", "--scenario", "fleet-8", "--days", "0.1"]


def test_parser_defaults():
    args = build_parser().parse_args(["fleetd"])
    assert args.command == "fleetd"
    assert args.scenario == "fleet-8"
    assert args.workers == 4
    assert args.seed == 0
    assert args.days is None
    assert not args.verify


def test_fleetd_runs_and_reports(capsys):
    assert main(ARGS + ["--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "fleetd fleet-8" in out
    assert "fleet digest" in out
    assert "shard 00" in out and "shard 01" in out


def test_fleetd_verify_passes(capsys):
    assert main(ARGS + ["--workers", "2", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out


def test_fleetd_json_report(tmp_path, capsys):
    out_file = tmp_path / "FLEET_report.json"
    assert main(ARGS + ["--workers", "1", "--json",
                        "--out", str(out_file)]) == 0
    loaded = json.load(open(out_file))
    assert loaded["schema"] == "repro.fleetd/1"
    assert loaded["scenario"] == "fleet-8"
    assert loaded["clients"] == 8
    assert len(loaded["shards"]) == 2
    assert all(shard["digest"] for shard in loaded["shards"])


def test_fleetd_in_process_workers_zero(capsys):
    assert main(ARGS + ["--workers", "0"]) == 0
    assert "in-process" in capsys.readouterr().out


def test_fleetd_unknown_scenario():
    with pytest.raises(SystemExit, match="fleet-1024"):
        main(["fleetd", "--scenario", "fleet-9000"])


def test_fleetd_fast_mode_shrinks_days(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_FAST", "1")
    assert main(["fleetd", "--scenario", "fleet-8", "--workers", "0"]) == 0
    # fleet-8 catalogues 2.0 days; REPRO_FAST runs an eighth.
    assert "0.25 day(s)" in capsys.readouterr().out


def test_perf_workers_flag_is_repeatable():
    args = build_parser().parse_args(
        ["perf", "--scenario", "fleetd-64",
         "--workers", "1", "--workers", "4"])
    assert args.workers == [1, 4]


def test_perf_rejects_workers_on_unsharded(capsys):
    with pytest.raises(SystemExit, match="only applies to sharded"):
        main(["perf", "--scenario", "fleet-8", "--workers", "2",
              "--no-profile"])
