"""Link model: serialization, latency, contention, loss, outages."""

import random

import pytest

from repro.net import Datagram, Link


def mk_link(sim, bandwidth=8000.0, latency=0.0, loss=0.0,
            bits_per_byte=8, deliver=None, seed=0):
    return Link(sim, "a", "b", bandwidth_bps=bandwidth, latency=latency,
                loss_rate=loss, bits_per_byte=bits_per_byte,
                rng=random.Random(seed), deliver=deliver)


def dg(size, src="a", dst="b"):
    return Datagram(src=src, src_port=1, dst=dst, dst_port=2,
                    payload=None, size=size)


def test_serialization_delay(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0,
                   deliver=lambda d: arrived.append(sim.now))
    link.send(dg(1000))   # 1000 B * 8 b / 8000 b/s = 1 s
    sim.run()
    assert arrived == [1.0]


def test_latency_adds_after_serialization(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0, latency=0.25,
                   deliver=lambda d: arrived.append(sim.now))
    link.send(dg(1000))
    sim.run()
    assert arrived == [1.25]


def test_async_serial_framing_costs_ten_bits(sim):
    arrived = []
    link = mk_link(sim, bandwidth=9600.0, bits_per_byte=10,
                   deliver=lambda d: arrived.append(sim.now))
    link.send(dg(960))    # 960 B * 10 b / 9600 b/s = 1 s
    sim.run()
    assert arrived == [1.0]


def test_fifo_contention_queues_packets(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0,
                   deliver=lambda d: arrived.append((d.ident, sim.now)))
    first, second = dg(1000), dg(1000)
    link.send(first)
    link.send(second)     # must wait for the first to leave the wire
    sim.run()
    assert [t for _i, t in arrived] == [1.0, 2.0]


def test_directions_do_not_contend(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0,
                   deliver=lambda d: arrived.append((d.dst, sim.now)))
    link.send(dg(1000, src="a", dst="b"))
    link.send(dg(1000, src="b", dst="a"))
    sim.run()
    assert sorted(arrived) == [("a", 1.0), ("b", 1.0)]


def test_loss_drops_packets_deterministically(sim):
    arrived = []
    link = mk_link(sim, loss=0.5, seed=42,
                   deliver=lambda d: arrived.append(d.ident))
    for _ in range(100):
        link.send(dg(10))
    sim.run()
    assert 25 < len(arrived) < 75
    stats = link.stats()
    assert stats.packets_lost + stats.packets_delivered == 100


def test_down_link_drops_everything(sim):
    arrived = []
    link = mk_link(sim, deliver=lambda d: arrived.append(d))
    link.set_up(False)
    link.send(dg(10))
    link.send(dg(25))
    sim.run()
    assert arrived == []
    assert link.stats().packets_dropped_down == 2
    assert link.stats().bytes_dropped_down == 35


def test_packet_in_flight_lost_when_link_drops(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0,
                   deliver=lambda d: arrived.append(d))
    link.send(dg(1000))   # arrives at t=1 if the link stays up

    def chop():
        yield sim.timeout(0.5)
        link.set_up(False)

    sim.process(chop())
    sim.run()
    assert arrived == []
    assert link.stats().bytes_dropped_down == 1000


def test_dropped_bytes_aggregate_across_directions(sim):
    link = mk_link(sim, deliver=lambda d: None)
    link.set_up(False)
    link.send(dg(100))                     # forward
    link.send(dg(40, src="b", dst="a"))    # backward
    sim.run()
    stats = link.stats()
    assert stats.packets_dropped_down == 2
    assert stats.bytes_dropped_down == 140
    assert link.forward.stats.bytes_dropped_down == 100
    assert link.backward.stats.bytes_dropped_down == 40


def test_outage_schedule(sim):
    arrived = []
    link = mk_link(sim, bandwidth=80_000.0,
                   deliver=lambda d: arrived.append(sim.now))
    link.outage(after=1.0, duration=2.0)

    def sender():
        link.send(dg(10))          # t=0: up, delivered
        yield sim.timeout(2.0)     # t=2: down
        link.send(dg(10))
        yield sim.timeout(2.0)     # t=4: up again
        link.send(dg(10))

    sim.process(sender())
    sim.run()
    assert len(arrived) == 2


def test_set_bandwidth_on_the_fly(sim):
    arrived = []
    link = mk_link(sim, bandwidth=8000.0,
                   deliver=lambda d: arrived.append(sim.now))
    link.set_bandwidth(80_000.0)
    link.send(dg(1000))
    sim.run()
    assert arrived == [0.1]


def test_direction_lookup_rejects_stranger(sim):
    link = mk_link(sim)
    with pytest.raises(ValueError):
        link.direction("marauder")


def test_zero_size_datagram_rejected():
    with pytest.raises(ValueError):
        Datagram(src="a", src_port=1, dst="b", dst_port=2,
                 payload=None, size=0)


# ---------------------------------------------------------------------------
# Default RNG derivation (the PR 3 regression: both directions of a
# default-constructed link used to share one random.Random(0))


def test_default_link_directions_draw_independently(sim):
    from repro.sim import RandomStreams
    sim.rand = RandomStreams(0)
    link = Link(sim, "a", "b", bandwidth_bps=8000.0)
    forward = [link.forward._rng.random() for _ in range(8)]
    backward = [link.backward._rng.random() for _ in range(8)]
    assert forward != backward
    # Each direction reads the named stream keyed by its label, so a
    # draw on one direction never advances the other.
    assert link.forward._rng is sim.rand.stream("link.loss::a->b")
    assert link.backward._rng is sim.rand.stream("link.loss::b->a")


def test_default_link_rngs_keyed_by_seed(sim):
    from repro.sim import RandomStreams, Simulator
    sim.rand = RandomStreams(0)
    other = Simulator()
    other.rand = RandomStreams(1)
    link_a = Link(sim, "a", "b", bandwidth_bps=8000.0)
    link_b = Link(other, "a", "b", bandwidth_bps=8000.0)
    assert [link_a.forward._rng.random() for _ in range(4)] \
        != [link_b.forward._rng.random() for _ in range(4)]


def test_default_link_without_streams_still_independent():
    from repro.sim import Simulator
    bare = Simulator()          # no sim.rand attached
    link = Link(bare, "a", "b", bandwidth_bps=8000.0)
    forward = [link.forward._rng.random() for _ in range(8)]
    backward = [link.backward._rng.random() for _ in range(8)]
    assert forward != backward
    # ... and reproducibly so: a second identical link draws the same.
    again = Link(Simulator(), "a", "b", bandwidth_bps=8000.0)
    assert [again.forward._rng.random() for _ in range(8)] == forward


def test_explicit_rng_still_shared_across_directions(sim):
    shared = random.Random(7)
    link = Link(sim, "a", "b", bandwidth_bps=8000.0, rng=shared)
    assert link.forward._rng is shared
    assert link.backward._rng is shared


def test_loss_bytes_and_in_flight_conserve(sim):
    lossy = mk_link(sim, bandwidth=8000.0, loss=0.5, seed=3)
    for _ in range(40):
        lossy.send(dg(1000))
    direction = lossy.forward
    stats = direction.stats
    # Mid-run: some packets still on the wire.
    assert stats.bytes_sent == (stats.bytes_delivered + stats.bytes_lost
                                + stats.bytes_dropped_down
                                + direction.bytes_in_flight)
    sim.run()
    assert direction.bytes_in_flight == 0
    assert stats.bytes_sent == (stats.bytes_delivered + stats.bytes_lost
                                + stats.bytes_dropped_down)
    assert stats.packets_lost > 0
    assert stats.bytes_lost == stats.packets_lost * 1000
