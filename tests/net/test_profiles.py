"""Network profiles and host cost models."""

import pytest

from repro.net import (
    ETHERNET,
    ISDN,
    MODEM,
    PROFILES,
    SLIP_1200,
    WAVELAN,
    profile_by_name,
)
from repro.net.host import IDEAL, LAPTOP_1995, SERVER_1995
from repro.net.cpu import HostCpu


def test_paper_nominal_speeds():
    assert ETHERNET.bandwidth_bps == 10e6
    assert WAVELAN.bandwidth_bps == 2e6
    assert ISDN.bandwidth_bps == 64e3
    assert MODEM.bandwidth_bps == 9600
    assert SLIP_1200.bandwidth_bps == 1200


def test_profiles_ordered_fastest_first():
    speeds = [p.bandwidth_bps for p in PROFILES]
    assert speeds == sorted(speeds, reverse=True)


def test_serial_lines_pay_framing():
    assert MODEM.bits_per_byte == 10
    assert SLIP_1200.bits_per_byte == 10
    assert ETHERNET.bits_per_byte == 8


def test_transmission_time():
    assert MODEM.transmission_time(960) == pytest.approx(1.0)
    assert ETHERNET.transmission_time(1_250_000) == pytest.approx(1.0)


def test_profile_lookup():
    assert profile_by_name("modem") is MODEM
    assert profile_by_name("Ethernet") is ETHERNET
    with pytest.raises(KeyError):
        profile_by_name("carrier-pigeon")


def test_bandwidth_spans_four_orders_of_magnitude():
    assert ETHERNET.bandwidth_bps / SLIP_1200.bandwidth_bps > 8000


def test_host_costs_scale_with_size():
    small = LAPTOP_1995.send_cost(40)
    large = LAPTOP_1995.send_cost(1064)
    assert large > small > 0


def test_receive_path_costs_more_on_1995_hosts():
    assert LAPTOP_1995.recv_cost(1024) > LAPTOP_1995.send_cost(1024)
    assert SERVER_1995.send_cost(1024) < LAPTOP_1995.send_cost(1024)


def test_ideal_host_is_free():
    assert IDEAL.send_cost(10_000) == 0.0
    assert IDEAL.recv_cost(10_000) == 0.0


def test_host_cpu_serializes_work(sim):
    cpu = HostCpu(sim, LAPTOP_1995)
    finished = []

    def job(tag):
        yield from cpu.use(1.0)
        finished.append((tag, sim.now))

    sim.process(job("a"))
    sim.process(job("b"))
    sim.run()
    assert finished == [("a", 1.0), ("b", 2.0)]
    assert cpu.busy_seconds == pytest.approx(2.0)


def test_host_cpu_zero_cost_is_free(sim):
    cpu = HostCpu(sim, IDEAL)

    def job():
        yield from cpu.use(0.0)
        return sim.now

    assert sim.run(sim.process(job())) == 0.0
