"""Network routing and sockets."""

import pytest

from repro.net import ETHERNET, Network


def make_net(sim):
    net = Network(sim)
    net.add_link("client", "server", profile=ETHERNET)
    return net


def test_socket_send_receive(sim):
    net = make_net(sim)
    a = net.socket("client", 10)
    b = net.socket("server", 20)

    def receiver():
        datagram = yield b.recv()
        return (datagram.payload, datagram.src, datagram.src_port)

    proc = sim.process(receiver())
    a.send("server", 20, {"hello": 1}, size=100)
    assert sim.run(proc) == ({"hello": 1}, "client", 10)


def test_no_route_drops_silently(sim):
    net = make_net(sim)
    a = net.socket("client", 10)
    a.send("mars", 20, "x", size=10)
    sim.run()  # nothing raised, nothing delivered


def test_unbound_port_drops(sim):
    net = make_net(sim)
    a = net.socket("client", 10)
    a.send("server", 99, "x", size=10)
    sim.run()


def test_duplicate_bind_rejected(sim):
    net = make_net(sim)
    net.socket("client", 10)
    with pytest.raises(ValueError):
        net.socket("client", 10)


def test_closed_socket_rejects_send_and_drops_arrivals(sim):
    net = make_net(sim)
    a = net.socket("client", 10)
    b = net.socket("server", 20)
    b.close()
    a.send("server", 20, "x", size=10)
    sim.run()
    assert b.pending() == 0
    with pytest.raises(RuntimeError):
        b.send("client", 10, "x", size=10)


def test_port_reusable_after_close(sim):
    net = make_net(sim)
    net.socket("client", 10).close()
    net.socket("client", 10)


def test_link_between_lookup(sim):
    net = make_net(sim)
    assert net.link_between("client", "server") is not None
    assert net.link_between("server", "client") is not None
    assert net.link_between("client", "mars") is None


def test_pending_counts_undrained_datagrams(sim):
    net = make_net(sim)
    a = net.socket("client", 10)
    b = net.socket("server", 20)
    a.send("server", 20, "one", size=10)
    a.send("server", 20, "two", size=10)
    sim.run()
    assert b.pending() == 2
