"""Counter/gauge/histogram semantics and registry behaviour."""

import math

import pytest

from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, Histogram,
                               MetricsRegistry, format_labels)


def make_registry(clock=None):
    if clock is None:
        return MetricsRegistry()
    return MetricsRegistry(time_fn=lambda: clock[0])


class TestCounter:

    def test_starts_at_zero_and_increments(self):
        counter = make_registry().counter("ops")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = make_registry().counter("ops")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 0

    def test_stamps_time_of_last_update(self):
        clock = [0.0]
        counter = make_registry(clock).counter("ops")
        assert counter.last_update is None
        clock[0] = 12.5
        counter.inc()
        assert counter.last_update == 12.5

    def test_data_row(self):
        counter = make_registry().counter("ops")
        counter.inc(3)
        assert counter.data()["value"] == 3


class TestGauge:

    def test_set_inc_dec(self):
        gauge = make_registry().gauge("depth")
        assert gauge.value is None
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_inc_from_unset_counts_from_zero(self):
        gauge = make_registry().gauge("depth")
        gauge.inc(2)
        assert gauge.value == 2

    def test_min_max_envelope(self):
        gauge = make_registry().gauge("depth")
        for value in (5, -2, 9, 3):
            gauge.set(value)
        assert gauge.min_value == -2
        assert gauge.max_value == 9
        assert gauge.data() == {"value": 3, "min": -2, "max": 9,
                                "last_update": 0.0}


class TestHistogram:

    def test_observe_fills_buckets(self):
        hist = make_registry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.counts == [2, 1, 1]        # <=1, <=10, +inf
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.mean == pytest.approx(106.4 / 4)

    def test_bucket_bound_is_inclusive(self):
        hist = make_registry().histogram("lat", buckets=(1.0,))
        hist.observe(1.0)
        assert hist.counts == [1, 0]

    def test_empty_histogram(self):
        hist = make_registry().histogram("lat", buckets=(1.0,))
        assert hist.mean is None
        assert hist.quantile(0.5) is None

    def test_quantile_upper_bound_biased(self):
        hist = make_registry().histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.quantile(0.50) == 1.0
        assert hist.quantile(0.75) == 10.0
        assert hist.quantile(1.00) == 100.0

    def test_quantile_in_overflow_returns_observed_max(self):
        hist = make_registry().histogram("lat", buckets=(1.0,))
        hist.observe(500.0)
        assert hist.quantile(0.99) == 500.0

    def test_bucket_rows_include_inf(self):
        hist = make_registry().histogram("lat", buckets=(1.0,))
        hist.observe(2.0)
        assert hist.bucket_rows() == [(1.0, 0), (math.inf, 1)]

    def test_bounds_are_sorted(self):
        hist = make_registry().histogram("lat", buckets=(10.0, 1.0))
        assert hist.bounds == (1.0, 10.0)

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Histogram("lat", {}, lambda: 0.0, buckets=())

    def test_default_buckets(self):
        hist = make_registry().histogram("lat")
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS

    def test_data_row(self):
        hist = make_registry().histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(3.0)
        data = hist.data()
        assert data["count"] == 2
        assert data["buckets"] == [[1.0, 1]]
        assert data["overflow"] == 1


class TestRegistry:

    def test_same_key_returns_same_instrument(self):
        registry = make_registry()
        a = registry.counter("ops", node="x")
        b = registry.counter("ops", node="x")
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = make_registry()
        a = registry.counter("ops", a=1, b=2)
        b = registry.counter("ops", b=2, a=1)
        assert a is b

    def test_distinct_labels_distinct_instruments(self):
        registry = make_registry()
        assert registry.counter("ops", node="x") \
            is not registry.counter("ops", node="y")
        assert len(registry) == 2

    def test_name_kind_conflict_raises(self):
        registry = make_registry()
        registry.counter("ops", node="x")
        with pytest.raises(TypeError):
            registry.gauge("ops", node="x")     # same key, other kind
        with pytest.raises(TypeError):
            registry.gauge("ops", node="y")     # same name, other kind

    def test_histogram_bucket_defaults_shared_per_name(self):
        registry = make_registry()
        registry.histogram("lat", buckets=(1.0, 2.0), node="x")
        later = registry.histogram("lat", node="y")
        assert later.bounds == (1.0, 2.0)

    def test_histogram_bucket_mismatch_raises(self):
        registry = make_registry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(3.0,), node="y")

    def test_instruments_sorted_and_queries(self):
        registry = make_registry()
        registry.counter("b.ops", node="y").inc(2)
        registry.counter("b.ops", node="x").inc(3)
        registry.counter("a.ops").inc()
        registry.gauge("b.depth").set(7)
        names = [inst.name for inst in registry.instruments()]
        assert names == ["a.ops", "b.depth", "b.ops", "b.ops"]
        assert len(registry.with_name("b.ops")) == 2
        assert len(registry.with_prefix("b.")) == 3
        assert registry.total("b.ops") == 5     # gauges excluded
        assert registry.value("b.ops", node="x") == 3
        assert registry.value("missing", default=-1) == -1
        assert registry.find("b.ops", node="z") is None

    def test_rows_cover_every_instrument(self):
        registry = make_registry()
        registry.counter("ops", node="x").inc()
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        rows = {row["metric"]: row for row in registry.rows()}
        assert rows["ops"]["type"] == "counter"
        assert rows["ops"]["labels"] == {"node": "x"}
        assert rows["depth"]["value"] == 2
        assert rows["lat"]["count"] == 1


def test_format_labels_sorted():
    assert format_labels({"b": 2, "a": "x"}) == "a=x,b=2"
    assert format_labels({}) == ""


def test_instrument_repr_mentions_identity():
    counter = make_registry().counter("ops", node="x")
    assert "ops" in repr(counter) and "node=x" in repr(counter)
