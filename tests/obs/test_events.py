"""Trace recorder semantics: taxonomy, filters, limits, null recorder."""

import pytest

from repro.obs.events import (EVENT_KINDS, NullRecorder, TraceEvent,
                              TraceRecorder)
from repro.obs.observatory import (NULL_OBS, NullObservatory, Observatory)
from repro.sim import Simulator


class TestTraceRecorder:

    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record("link_down", 1.0, link="a->b")
        recorder.record("link_up", 2.0, link="a->b")
        assert [e.kind for e in recorder] == ["link_down", "link_up"]
        assert len(recorder) == 2
        assert recorder.events[0].fields == {"link": "a->b"}

    def test_unknown_kind_raises(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.record("rpc_sned", 0.0)

    def test_kind_filter(self):
        recorder = TraceRecorder(kinds={"link_up"})
        recorder.record("link_up", 1.0)
        recorder.record("link_down", 2.0)
        assert [e.kind for e in recorder] == ["link_up"]

    def test_unknown_kind_in_filter_raises(self):
        with pytest.raises(ValueError):
            TraceRecorder(kinds={"link_up", "nope"})

    def test_limit_counts_drops(self):
        recorder = TraceRecorder(limit=2)
        for _ in range(5):
            recorder.record("cache_hit", 0.0)
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_by_kind_and_counts(self):
        recorder = TraceRecorder()
        recorder.record("cache_hit", 1.0)
        recorder.record("cache_miss", 2.0)
        recorder.record("cache_hit", 3.0)
        assert len(recorder.by_kind("cache_hit")) == 2
        assert recorder.counts() == {"cache_hit": 2, "cache_miss": 1}

    def test_clear(self):
        recorder = TraceRecorder(limit=1)
        recorder.record("cache_hit", 0.0)
        recorder.record("cache_hit", 0.0)
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0

    def test_field_named_kind_survives_export_row(self):
        recorder = TraceRecorder()
        recorder.record("validation_rpc", 1.0, scope="volume", kind="x")
        row = recorder.events[0].to_row()
        assert row["kind"] == "validation_rpc"
        assert row["field_kind"] == "x"

    def test_taxonomy_covers_instrumented_kinds(self):
        required = {"rpc_send", "rpc_reply", "retransmit", "link_up",
                    "link_down", "cache_hit", "cache_miss", "cml_append",
                    "reintegration_chunk", "validation_rpc",
                    "state_transition"}
        assert required <= EVENT_KINDS


class TestNullRecorder:

    def test_is_inert(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        recorder.record("cache_hit", 0.0, node="x")
        recorder.record("not even a kind", 0.0)
        assert len(recorder) == 0
        assert recorder.counts() == {}
        assert recorder.by_kind("cache_hit") == []
        assert recorder.events == ()


class TestObservatory:

    def test_event_stamped_with_sim_time(self):
        sim = Simulator()
        observatory = Observatory(sim)
        assert sim.obs is observatory

        def body():
            yield sim.timeout(7.0)

        sim.run(sim.process(body()))
        observatory.event("cache_hit", node="x")
        assert observatory.trace.events[-1].time == 7.0

    def test_time_is_zero_until_installed(self):
        observatory = Observatory()
        assert observatory.time() == 0.0
        observatory.event("cache_hit")
        assert observatory.trace.events[0].time == 0.0

    def test_uninstall_restores_null(self):
        sim = Simulator()
        observatory = Observatory()
        observatory.install(sim)
        observatory.uninstall()
        assert sim.obs is NULL_OBS
        observatory.uninstall()     # idempotent

    def test_simulator_defaults_to_null(self):
        sim = Simulator()
        assert sim.obs is NULL_OBS
        assert not sim.obs.enabled

    def test_null_observatory_is_inert(self):
        null = NullObservatory()
        null.event("whatever", x=1)
        assert null.time() == 0.0
        null.metrics.counter("a", node="x").inc(5)
        null.metrics.gauge("b").set(3)
        null.metrics.gauge("b").dec()
        null.metrics.histogram("c").observe(1.0)
        assert null.metrics.rows() == []
        assert null.metrics.instruments() == []
        assert len(null.metrics) == 0
        assert "disabled" in null.summary()
        sim = Simulator()
        null.install(sim)
        assert sim.obs is null
        null.uninstall()

    def test_event_kind_validated_even_when_live(self):
        observatory = Observatory()
        with pytest.raises(ValueError):
            observatory.event("no_such_kind")

    def test_summary_delegates_to_report(self):
        observatory = Observatory()
        observatory.metrics.counter("cache.hits", node="x").inc()
        assert "Observability summary" in observatory.summary()


def test_trace_event_repr():
    event = TraceEvent(time=1.25, kind="cache_hit", fields={"node": "x"})
    text = repr(event)
    assert "cache_hit" in text and "node" in text
