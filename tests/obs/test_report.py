"""Report formatting: a synthetic observatory renders every section."""

from repro.obs.observatory import Observatory
from repro.obs.report import cml_series, summary


def synthetic_observatory():
    obs = Observatory()
    m = obs.metrics
    m.counter("sim.events_dispatched").inc(100)
    m.gauge("sim.queue_depth").set(4)
    m.counter("link.bytes_sent", link="a->b").inc(5000)
    m.counter("link.packets_sent", link="a->b").inc(10)
    m.counter("rpc.packets_out", node="a", kind="Request").inc(6)
    m.counter("rpc.bytes_out", node="a", kind="Request").inc(600)
    m.counter("rpc.bytes_out", node="a", kind="Ping").inc(400)
    m.counter("rpc.retransmits", node="a").inc(2)
    hist = m.histogram("rpc.latency_seconds", buckets=(0.1, 1.0),
                       node="a", proc="Fetch")
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(9.0)
    m.counter("cache.hits", node="a").inc(3)
    m.counter("cache.misses", node="a", reason="fetch").inc(1)
    m.gauge("cml.length", node="a").set(2)
    m.counter("reintegration.chunks", node="a", status="committed").inc(1)
    m.counter("validation.rpcs", node="a", kind="volume").inc(1)
    obs.event("cml_append", node="a", op="store", records=1, bytes=500)
    obs.event("cml_append", node="a", op="store", records=2, bytes=900)
    obs.event("reintegration_chunk", node="a", status="committed",
              records=2, bytes=900, cml_records=0, cml_bytes=0)
    obs.event("reintegration_chunk", node="a", status="conflict",
              records=1, bytes=0, cml_records=0, cml_bytes=0)
    return obs


class TestSummary:

    def test_all_sections_present(self):
        text = summary(synthetic_observatory())
        for heading in ("Observability summary", "Simulator",
                        "Links (per direction)", "RPC traffic",
                        "Cache references", "Client modify log",
                        "Trickle reintegration", "Validation RPCs",
                        "Event mix"):
            assert heading in text

    def test_traffic_shares_sum_sensibly(self):
        text = summary(synthetic_observatory())
        assert "60.0%" in text      # 600 of 1000 bytes
        assert "40.0%" in text      # the keepalive share
        assert "packets out: 6" in text
        assert "retransmits: 2" in text

    def test_histogram_block(self):
        text = summary(synthetic_observatory())
        assert "rpc.latency_seconds{node=a,proc=Fetch}" in text
        assert "count=3" in text
        assert "+inf" in text       # the 9.0 observation overflowed

    def test_cache_ratio(self):
        text = summary(synthetic_observatory())
        assert "hit ratio: 75.0% (3/4)" in text

    def test_cml_series_from_events(self):
        obs = synthetic_observatory()
        series = cml_series(obs)
        # Appends contribute their post-append length; only committed
        # chunks contribute (the conflict event is skipped).
        assert [value for _t, value in series] == [1, 2, 0]
        assert "length over time" in summary(obs)

    def test_empty_observatory_renders_header_only(self):
        text = summary(Observatory())
        assert "Observability summary" in text
        assert "Links" not in text
        assert "Event mix" not in text

    def test_event_mix_counts(self):
        text = summary(synthetic_observatory())
        assert "cml_append" in text
        assert "reintegration_chunk" in text

    def test_series_downsampling_keeps_endpoints(self):
        obs = Observatory()
        for i in range(40):
            obs.event("cml_append", node="a", op="store",
                      records=i + 1, bytes=0)
        text = summary(obs)
        lines = [l for l in text.splitlines() if "#" in l or "." in l]
        # Downsampled to at most 12 sample rows but first/last survive.
        assert any(" 1  " in line for line in lines)
        assert any(" 40  " in line for line in lines)
