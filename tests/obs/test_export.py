"""JSONL/CSV export round-trips for the timeline and the metrics."""

import io
import json
import math

import pytest

from repro.obs.events import TraceEvent, TraceRecorder
from repro.obs.export import (read_events_csv, read_events_jsonl,
                              read_metrics_csv, write_events_csv,
                              write_events_jsonl, write_metrics_csv,
                              write_metrics_jsonl)
from repro.obs.metrics import MetricsRegistry


def sample_events():
    recorder = TraceRecorder()
    recorder.record("rpc_send", 1.5, node="laptop", peer="server",
                    proc="Fetch", seq=3)
    recorder.record("link_down", 2.0, link="laptop->server")
    recorder.record("cml_append", 2.5, node="laptop", op="store",
                    records=2, bytes=1700)
    return recorder.events


def sample_registry():
    registry = MetricsRegistry(time_fn=lambda: 42.0)
    registry.counter("link.bytes_sent", link="a->b").inc(1200)
    registry.gauge("cml.length", node="laptop").set(3)
    hist = registry.histogram("rpc.latency_seconds",
                              buckets=(0.1, 1.0), node="laptop")
    hist.observe(0.05)
    hist.observe(5.0)
    return registry


class TestEventsJsonl:

    def test_round_trip_is_exact(self, tmp_path):
        events = sample_events()
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(events, path) == 3
        back = read_events_jsonl(path)
        assert back == list(events)

    def test_file_objects_accepted(self):
        buffer = io.StringIO()
        write_events_jsonl(sample_events(), buffer)
        back = read_events_jsonl(io.StringIO(buffer.getvalue()))
        assert [e.kind for e in back] == ["rpc_send", "link_down",
                                         "cml_append"]

    def test_lines_are_plain_json_with_sorted_keys(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(sample_events(), path)
        first = path.read_text().splitlines()[0]
        row = json.loads(first)
        assert row["kind"] == "rpc_send" and row["time"] == 1.5
        assert list(row) == sorted(row)

    def test_non_json_values_degrade_to_str(self, tmp_path):
        events = [TraceEvent(time=0.0, kind="cache_hit",
                             fields={"obj": frozenset({1})})]
        path = tmp_path / "events.jsonl"
        write_events_jsonl(events, path)
        [back] = read_events_jsonl(path)
        assert isinstance(back.fields["obj"], str)

    def test_blank_lines_skipped(self):
        back = read_events_jsonl(io.StringIO(
            '{"time": 1.0, "kind": "cache_hit"}\n\n'))
        assert len(back) == 1


class TestEventsCsv:

    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.csv"
        assert write_events_csv(sample_events(), path) == 3
        back = read_events_csv(path)
        assert [e.kind for e in back] == ["rpc_send", "link_down",
                                         "cml_append"]
        assert back[0].time == 1.5
        assert back[0].fields["proc"] == "Fetch"
        # Cells absent for an event are dropped, not empty strings.
        assert "proc" not in back[1].fields

    def test_header_is_union_of_fields(self, tmp_path):
        path = tmp_path / "events.csv"
        write_events_csv(sample_events(), path)
        header = path.read_text().splitlines()[0].split(",")
        assert header[:2] == ["time", "kind"]
        assert {"node", "link", "op", "records"} <= set(header)

    def test_field_named_kind_does_not_clobber_event_kind(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record("validation_rpc", 1.0, scope="volume", kind="x")
        path = tmp_path / "events.csv"
        write_events_csv(recorder.events, path)
        [back] = read_events_csv(path)
        assert back.kind == "validation_rpc"
        assert back.fields["field_kind"] == "x"


class TestMetricsExport:

    def test_jsonl_rows(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        assert write_metrics_jsonl(sample_registry(), path) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {row["metric"]: row for row in rows}
        assert by_name["link.bytes_sent"]["value"] == 1200
        assert by_name["link.bytes_sent"]["labels"] == {"link": "a->b"}
        assert by_name["cml.length"]["max"] == 3
        assert by_name["rpc.latency_seconds"]["count"] == 2
        assert by_name["rpc.latency_seconds"]["overflow"] == 1

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "metrics.csv"
        assert write_metrics_csv(sample_registry(), path) == 3
        rows = {row["metric"]: row for row in read_metrics_csv(path)}
        counter = rows["link.bytes_sent"]
        assert counter["type"] == "counter"
        assert counter["value"] == 1200
        assert counter["labels"] == {"link": "a->b"}
        assert counter["last_update"] == 42
        hist = rows["rpc.latency_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(5.05)
        assert hist["buckets"] == [[0.1, 1], [1.0, 0]]
        assert hist["overflow"] == 1
        gauge = rows["cml.length"]
        assert gauge["value"] == 3 and "buckets" not in gauge

    def test_csv_numbers_parse_back_to_int_when_integral(self, tmp_path):
        path = tmp_path / "metrics.csv"
        write_metrics_csv(sample_registry(), path)
        [gauge] = [r for r in read_metrics_csv(path)
                   if r["metric"] == "cml.length"]
        assert isinstance(gauge["value"], int)
        assert not math.isnan(gauge["last_update"])
