"""Scenario runs, the determinism regression, and the obs CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import Observatory
from repro.obs.events import TraceRecorder
from repro.obs.scenarios import SCENARIOS, fingerprint, run_scenario


class TestDeterminism:
    """Observation must not perturb the simulation (the tentpole
    guarantee): with the null recorder and with a live observatory the
    kernel dispatches the *same events in the same order* and ends in
    the same externally visible state.
    """

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_instrumented_run_is_schedule_identical(self, name):
        bare_schedule = []
        bare = run_scenario(name, schedule_log=bare_schedule)

        observatory = Observatory()
        live_schedule = []
        live = run_scenario(name, observatory=observatory,
                            schedule_log=live_schedule)

        assert len(bare_schedule) > 500     # the probe actually probed
        assert bare_schedule == live_schedule
        assert fingerprint(bare) == fingerprint(live)
        # And the live run really observed things.
        assert len(observatory.trace.events) > 0
        assert len(observatory.metrics) > 0

    def test_two_null_runs_identical(self):
        first = run_scenario("trickle")
        second = run_scenario("trickle")
        assert fingerprint(first) == fingerprint(second)


class TestTrickleScenario:

    @pytest.fixture(scope="class")
    def observed(self):
        observatory = Observatory()
        testbed = run_scenario("trickle", observatory=observatory)
        return observatory, testbed

    def test_required_event_kinds_recorded(self, observed):
        observatory, _testbed = observed
        kinds = set(observatory.trace.counts())
        assert {"rpc_send", "rpc_reply", "cache_hit", "cache_miss",
                "cml_append", "reintegration_chunk", "fragment",
                "validation_rpc", "state_transition"} <= kinds

    def test_metrics_agree_with_component_stats(self, observed):
        observatory, testbed = observed
        metrics = observatory.metrics
        link = testbed.link.stats()
        sent = metrics.total("link.packets_sent")
        delivered = metrics.total("link.packets_delivered")
        assert sent == link.packets_sent
        assert delivered == link.packets_delivered
        assert metrics.total("link.bytes_sent") == link.bytes_sent
        trickle = testbed.venus.trickle.stats
        assert metrics.total("reintegration.fragments") \
            == trickle.fragments_shipped
        committed = metrics.value("reintegration.chunks",
                                  node=testbed.venus.node,
                                  status="committed")
        assert committed == trickle.chunks_committed
        validation = testbed.venus.validator.stats
        assert metrics.value("validation.rpcs", node=testbed.venus.node,
                             kind="volume") > 0
        assert metrics.total("validation.volumes") == validation.attempts

    def test_timeline_times_monotonic(self, observed):
        observatory, testbed = observed
        times = [event.time for event in observatory.trace.events]
        assert times == sorted(times)
        assert times[-1] <= testbed.sim.now

    def test_cml_gauge_drains_to_zero(self, observed):
        observatory, testbed = observed
        gauge = observatory.metrics.find("cml.length",
                                         node=testbed.venus.node)
        assert gauge is not None
        assert gauge.max_value >= 2     # draft + results at least
        assert gauge.value == len(testbed.venus.cml)

    def test_uninstall_after_run(self, observed):
        observatory, testbed = observed
        # The observatory stays attached to the finished testbed's sim.
        assert testbed.sim.obs is observatory


class TestOutageScenario:

    def test_link_flaps_recorded(self):
        observatory = Observatory(recorder=TraceRecorder(
            kinds={"link_up", "link_down", "packet_drop"}))
        run_scenario("outage", observatory=observatory)
        counts = observatory.trace.counts()
        assert counts.get("link_down", 0) >= 1
        assert counts.get("link_up", 0) >= 1
        # The filtered recorder kept nothing else.
        assert set(counts) <= {"link_up", "link_down", "packet_drop"}
        assert observatory.metrics.total("link.transitions") >= 2

    def test_bytes_dropped_while_down_surface_in_summary(self):
        from repro.obs import report
        observatory = Observatory()
        testbed = run_scenario("outage", observatory=observatory)
        dropped = observatory.metrics.total("link.bytes_dropped")
        assert dropped > 0
        assert dropped == testbed.link.stats().bytes_dropped_down
        assert "link.bytes_dropped" in report.summary(observatory)


def test_unknown_scenario_raises():
    with pytest.raises(ValueError):
        run_scenario("nope")


class TestObsCli:

    def test_obs_command_writes_timeline_and_summary(self, tmp_path, capsys):
        out = tmp_path / "timeline.jsonl"
        metrics_csv = tmp_path / "metrics.csv"
        assert main(["obs", "--scenario", "trickle",
                     "--out", str(out),
                     "--metrics-csv", str(metrics_csv)]) == 0
        printed = capsys.readouterr().out
        assert "Observability summary" in printed
        assert "Links (per direction)" in printed
        assert "rpc.latency_seconds" in printed
        assert "hit ratio" in printed
        assert "Client modify log" in printed
        assert "Validation RPCs" in printed
        rows = [json.loads(line)
                for line in out.read_text().splitlines() if line]
        assert len(rows) > 20
        assert {"time", "kind"} <= set(rows[0])
        assert metrics_csv.read_text().startswith("metric,type,labels")

    def test_obs_command_summary_only(self, capsys):
        assert main(["obs"]) == 0
        assert "Event mix" in capsys.readouterr().out
