"""Conflict repair (section 2.2's recovery mechanisms)."""

import pytest

from repro.fs import Content
from repro.venus import VenusConfig

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def conflicted_testbed():
    """A testbed with one update/update conflict already confined."""
    config = VenusConfig(aging_window=0.0, daemon_period=5.0)
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"mine mine mine"))
    vnode = _server_file(testbed, "a.txt")
    vnode.content = Content.of(b"theirs")
    testbed.volume.bump(vnode, 1.0)
    # The other client's update breaks our callbacks, as it would live.
    testbed.server._break_callbacks("other-client", vnode.fid)
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert len(venus.conflicts) == 1
    return testbed


def _server_file(testbed, name):
    d = testbed.volume.require(testbed.volume.root.lookup("dir"))
    return testbed.volume.get(d.lookup(name))


def test_conflict_preserves_both_sides():
    testbed = conflicted_testbed()
    conflict = testbed.venus.list_conflicts()[0]
    # The local side lives in the conflict record...
    assert conflict.record.content == Content.of(b"mine mine mine")
    # ...and the server side is intact.
    assert _server_file(testbed, "a.txt").content == Content.of(b"theirs")
    assert conflict.path == M + "/dir/a.txt"
    assert "update/update" in conflict.describe()


def test_resolve_theirs_keeps_server_version():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "theirs"))
    assert venus.list_conflicts() == []
    assert conflict.resolved == "theirs"
    content = testbed.run(venus.read_file(M + "/dir/a.txt"))
    assert content == Content.of(b"theirs")


def test_resolve_mine_reapplies_local_version():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "mine"))
    assert venus.list_conflicts() == []
    # The reapplied update reintegrates against the *current* server
    # version, so it lands cleanly this time.
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert _server_file(testbed, "a.txt").content \
        == Content.of(b"mine mine mine")
    assert len(venus.conflicts.pending()) == 0


def test_double_resolution_rejected():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "theirs"))
    with pytest.raises(ValueError):
        testbed.run(venus.repair(conflict.ident, "theirs"))


def test_bad_resolution_keyword_rejected():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    with pytest.raises(ValueError):
        testbed.run(venus.repair(conflict.ident, "both"))


def test_name_collision_conflict_recovers_under_new_name():
    """A create that collides recreates as <name>.conflict on 'mine'."""
    config = VenusConfig(aging_window=0.0, daemon_period=5.0)
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.link.set_up(False)
    venus.handle_disconnection()
    testbed.run(venus.write_file(M + "/dir/report", b"my report"))
    # Another client creates the same name on the server first.
    from repro.fs import ObjectType, SyntheticContent, Vnode
    volume = testbed.volume
    other = Vnode(volume.alloc_fid(), ObjectType.FILE,
                  content=Content.of(b"their report"))
    volume.add(other)
    d = volume.require(volume.root.lookup("dir"))
    d.children["report"] = other.fid
    volume.bump(d, 1.0)
    testbed.link.set_up(True)
    connected(testbed)
    testbed.sim.run(until=testbed.sim.now + 300.0)
    conflicts = venus.list_conflicts()
    assert conflicts, "expected a name-collision conflict"
    create = [c for c in conflicts if c.record.op.value == "create"][0]
    testbed.run(venus.repair(create.ident, "mine"))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    # Both reports exist now.
    assert _server_file(testbed, "report").content \
        == Content.of(b"their report")
    assert _server_file(testbed, "report.conflict") is not None


def test_unresolved_conflicts_survive_listing():
    testbed = conflicted_testbed()
    venus = testbed.venus
    assert len(venus.conflicts.all()) == 1
    assert len(venus.list_conflicts()) == 1
    with pytest.raises(KeyError):
        venus.conflicts.get(999)
