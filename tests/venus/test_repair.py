"""Conflict repair (section 2.2's recovery mechanisms)."""

import pytest

from repro.fs import Content
from repro.venus import VenusConfig

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def conflicted_testbed():
    """A testbed with one update/update conflict already confined."""
    config = VenusConfig(aging_window=0.0, daemon_period=5.0)
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"mine mine mine"))
    vnode = _server_file(testbed, "a.txt")
    vnode.content = Content.of(b"theirs")
    testbed.volume.bump(vnode, 1.0)
    # The other client's update breaks our callbacks, as it would live.
    testbed.server._break_callbacks("other-client", vnode.fid)
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert len(venus.conflicts) == 1
    return testbed


def _server_file(testbed, name):
    d = testbed.volume.require(testbed.volume.root.lookup("dir"))
    return testbed.volume.get(d.lookup(name))


def test_conflict_preserves_both_sides():
    testbed = conflicted_testbed()
    conflict = testbed.venus.list_conflicts()[0]
    # The local side lives in the conflict record...
    assert conflict.record.content == Content.of(b"mine mine mine")
    # ...and the server side is intact.
    assert _server_file(testbed, "a.txt").content == Content.of(b"theirs")
    assert conflict.path == M + "/dir/a.txt"
    assert "update/update" in conflict.describe()


def test_resolve_theirs_keeps_server_version():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "theirs"))
    assert venus.list_conflicts() == []
    assert conflict.resolved == "theirs"
    content = testbed.run(venus.read_file(M + "/dir/a.txt"))
    assert content == Content.of(b"theirs")


def test_resolve_mine_reapplies_local_version():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "mine"))
    assert venus.list_conflicts() == []
    # The reapplied update reintegrates against the *current* server
    # version, so it lands cleanly this time.
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert _server_file(testbed, "a.txt").content \
        == Content.of(b"mine mine mine")
    assert len(venus.conflicts.pending()) == 0


def test_double_resolution_rejected():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    testbed.run(venus.repair(conflict.ident, "theirs"))
    with pytest.raises(ValueError):
        testbed.run(venus.repair(conflict.ident, "theirs"))


def test_bad_resolution_keyword_rejected():
    testbed = conflicted_testbed()
    venus = testbed.venus
    conflict = venus.list_conflicts()[0]
    with pytest.raises(ValueError):
        testbed.run(venus.repair(conflict.ident, "both"))


def test_name_collision_conflict_recovers_under_new_name():
    """A create that collides recreates as <name>.conflict on 'mine'."""
    config = VenusConfig(aging_window=0.0, daemon_period=5.0)
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.link.set_up(False)
    venus.handle_disconnection()
    testbed.run(venus.write_file(M + "/dir/report", b"my report"))
    # Another client creates the same name on the server first.
    from repro.fs import ObjectType, SyntheticContent, Vnode
    volume = testbed.volume
    other = Vnode(volume.alloc_fid(), ObjectType.FILE,
                  content=Content.of(b"their report"))
    volume.add(other)
    d = volume.require(volume.root.lookup("dir"))
    d.children["report"] = other.fid
    volume.bump(d, 1.0)
    testbed.link.set_up(True)
    connected(testbed)
    testbed.sim.run(until=testbed.sim.now + 300.0)
    conflicts = venus.list_conflicts()
    assert conflicts, "expected a name-collision conflict"
    create = [c for c in conflicts if c.record.op.value == "create"][0]
    testbed.run(venus.repair(create.ident, "mine"))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    # Both reports exist now.
    assert _server_file(testbed, "report").content \
        == Content.of(b"their report")
    assert _server_file(testbed, "report.conflict") is not None


def _disconnected_testbed():
    """A connected-then-severed testbed, ready to log colliding ops."""
    config = VenusConfig(aging_window=0.0, daemon_period=5.0)
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    testbed.link.set_up(False)
    testbed.venus.handle_disconnection()
    return testbed


def _plant_on_server(testbed, name, otype, **kwargs):
    """Another client wins the race: ``dir/<name>`` appears server-side."""
    from repro.fs import Vnode
    volume = testbed.volume
    other = Vnode(volume.alloc_fid(), otype, **kwargs)
    volume.add(other)
    d = volume.require(volume.root.lookup("dir"))
    d.children[name] = other.fid
    volume.bump(d, 1.0)
    return other


def _reconnect_and_confine(testbed):
    testbed.link.set_up(True)
    connected(testbed)
    testbed.sim.run(until=testbed.sim.now + 300.0)
    conflicts = testbed.venus.list_conflicts()
    assert conflicts, "expected a confined conflict"
    return conflicts


def test_directory_collision_recovers_as_conflict_directory():
    """An mkdir that collides recreates as <name>.conflict, still a dir."""
    from repro.fs import ObjectType
    testbed = _disconnected_testbed()
    venus = testbed.venus
    testbed.run(venus.mkdir(M + "/dir/build"))
    _plant_on_server(testbed, "build", ObjectType.DIRECTORY)
    conflicts = _reconnect_and_confine(testbed)
    mkdir = [c for c in conflicts if c.record.op.value == "mkdir"][0]
    testbed.run(venus.repair(mkdir.ident, "mine"))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    theirs = _server_file(testbed, "build")
    assert theirs is not None and theirs.otype is ObjectType.DIRECTORY
    recovered = _server_file(testbed, "build.conflict")
    assert recovered is not None
    assert recovered.otype is ObjectType.DIRECTORY


def test_symlink_collision_recovers_with_target_preserved():
    """A symlink that collides recreates as <name>.conflict and keeps
    pointing where the local one pointed."""
    from repro.fs import ObjectType
    testbed = _disconnected_testbed()
    venus = testbed.venus
    testbed.run(venus.symlink("a.txt", M + "/dir/latest"))
    _plant_on_server(testbed, "latest", ObjectType.SYMLINK, target="b.txt")
    conflicts = _reconnect_and_confine(testbed)
    sym = [c for c in conflicts if c.record.op.value == "symlink"][0]
    testbed.run(venus.repair(sym.ident, "mine"))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert _server_file(testbed, "latest").target == "b.txt"
    recovered = _server_file(testbed, "latest.conflict")
    assert recovered is not None
    assert recovered.otype is ObjectType.SYMLINK
    assert recovered.target == "a.txt"


def test_removed_file_store_recovers_beside_the_original():
    """keep='mine' on an update/remove conflict recreates the file as
    <name>.conflict — the file variant of the recovery rename."""
    testbed = _disconnected_testbed()
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"survivor"))
    # The other client removes the object entirely, server-side.
    volume = testbed.volume
    d = volume.require(volume.root.lookup("dir"))
    doomed = volume.get(d.lookup("a.txt"))
    del d.children["a.txt"]
    volume.remove(doomed.fid)
    volume.bump(d, 1.0)
    conflicts = _reconnect_and_confine(testbed)
    store = [c for c in conflicts if c.record.op.value == "store"][0]
    testbed.run(venus.repair(store.ident, "mine"))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    assert _server_file(testbed, "a.txt") is None
    recovered = _server_file(testbed, "a.txt.conflict")
    assert recovered is not None
    assert recovered.content == Content.of(b"survivor")


def test_unresolved_conflicts_survive_listing():
    testbed = conflicted_testbed()
    venus = testbed.venus
    assert len(venus.conflicts.all()) == 1
    assert len(venus.list_conflicts()) == 1
    with pytest.raises(KeyError):
        venus.conflicts.get(999)
