"""Venus file API across the three states."""

import pytest

from repro.fs import Content
from repro.venus import CacheMissError, VenusState
from repro.venus.errors import OfflineError

from tests.conftest import build_testbed, connected


M = "/coda/usr/u"


def test_connect_reaches_hoarding_on_ethernet(testbed):
    assert connected(testbed) is VenusState.HOARDING


def test_read_from_warm_cache(testbed):
    connected(testbed)
    content = testbed.run(testbed.venus.read_file(M + "/dir/a.txt"))
    assert content.size == 4_000


def test_readdir_and_stat(testbed):
    connected(testbed)
    names = testbed.run(testbed.venus.readdir(M + "/dir"))
    assert names == ["a.txt", "b.txt", "big.bin"]
    entry = testbed.run(testbed.venus.stat(M + "/dir/b.txt"))
    assert entry.length == 12_000


def test_write_through_while_hoarding(testbed):
    connected(testbed)
    testbed.run(testbed.venus.write_file(M + "/dir/new.txt", b"fresh"))
    # Visible on the server immediately; nothing in the CML.
    fid = testbed.volume.root.lookup("dir")
    dir_vnode = testbed.volume.require(fid)
    new_fid = dir_vnode.lookup("new.txt")
    assert testbed.volume.require(new_fid).content == Content.of(b"fresh")
    assert len(testbed.venus.cml) == 0


def test_overwrite_bumps_server_version(testbed):
    connected(testbed)
    testbed.run(testbed.venus.write_file(M + "/dir/a.txt", b"v2!"))
    entry = testbed.run(testbed.venus.stat(M + "/dir/a.txt"))
    vnode = testbed.volume.require(entry.fid)
    assert vnode.version == 2
    assert entry.version == 2


def test_mkdir_rmdir_unlink_rename_symlink(testbed):
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.mkdir(M + "/work"))
    testbed.run(venus.write_file(M + "/work/x", b"x"))
    testbed.run(venus.rename(M + "/work/x", M + "/work/y"))
    assert testbed.run(venus.readdir(M + "/work")) == ["y"]
    testbed.run(venus.symlink("y", M + "/work/link"))
    assert testbed.run(venus.readlink(M + "/work/link")) == "y"
    testbed.run(venus.unlink(M + "/work/link"))
    testbed.run(venus.unlink(M + "/work/y"))
    testbed.run(venus.rmdir(M + "/work"))
    with pytest.raises(FileNotFoundError):
        testbed.run(venus.readdir(M + "/work"))


def test_rmdir_nonempty_fails(testbed):
    connected(testbed)
    testbed.run(testbed.venus.mkdir(M + "/full"))
    testbed.run(testbed.venus.write_file(M + "/full/x", b"x"))
    with pytest.raises(OSError):
        testbed.run(testbed.venus.rmdir(M + "/full"))


def test_missing_file_raises(testbed):
    connected(testbed)
    with pytest.raises(FileNotFoundError):
        testbed.run(testbed.venus.read_file(M + "/dir/ghost.txt"))


def test_open_close_session_semantics(testbed):
    connected(testbed)
    venus = testbed.venus

    def session():
        handle = yield from venus.open(M + "/dir/a.txt", "w")
        handle.write(b"session data")
        # Not yet stored: close is the store point.
        yield from venus.close(handle)

    testbed.run(session())
    content = testbed.run(venus.read_file(M + "/dir/a.txt"))
    assert content == Content.of(b"session data")


def test_disconnected_updates_log_to_cml(testbed):
    connected(testbed)
    testbed.link.set_up(False)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/offline.txt", b"x" * 1000))
    assert venus.state.state is VenusState.EMULATING
    assert len(venus.cml) == 2          # create + store
    # Local visibility: read back from cache.
    content = testbed.run(venus.read_file(M + "/dir/offline.txt"))
    assert content.size == 1000


def test_disconnected_miss_is_recorded(testbed):
    connected(testbed)
    testbed.link.set_up(False)
    venus = testbed.venus
    venus.handle_disconnection()
    # Evict a cached file, then try to read it while offline.
    entry = testbed.run(venus.stat(M + "/dir/big.bin"))
    venus.cache.remove(entry.fid)
    with pytest.raises(CacheMissError):
        testbed.run(venus.read_file(M + "/dir/big.bin", program="cat"))
    assert len(venus.misses) == 1
    assert venus.misses.peek()[0].program == "cat"


def test_sync_offline_raises(testbed):
    connected(testbed)
    testbed.venus.handle_disconnection()
    with pytest.raises(OfflineError):
        testbed.run(testbed.venus.sync())


def test_reconnect_drains_cml_and_returns_to_hoarding(testbed):
    connected(testbed)
    testbed.link.set_up(False)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/offline.txt", b"y" * 500))
    testbed.link.set_up(True)
    assert connected(testbed) is VenusState.HOARDING
    assert len(venus.cml) == 0
    # The update made it to the server.
    dir_fid = testbed.volume.root.lookup("dir")
    dir_vnode = testbed.volume.require(dir_fid)
    assert dir_vnode.lookup("offline.txt") is not None


def test_weak_link_stays_write_disconnected():
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM)
    assert connected(testbed) is VenusState.WRITE_DISCONNECTED


def test_weakly_connected_update_is_logged_not_written_through():
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM)
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"weak write"))
    assert len(venus.cml) == 1
    vnode = testbed.volume.require(
        testbed.run(venus.stat(M + "/dir/a.txt")).fid)
    assert vnode.version == 1        # server unchanged so far


def test_weak_miss_below_patience_fetches_transparently():
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM)
    connected(testbed)
    venus = testbed.venus
    entry = testbed.run(venus.stat(M + "/dir/a.txt"))
    venus.cache.remove(entry.fid)
    # 4 KB at ~9.6 Kb/s is a few seconds; priority 900 tolerates it.
    venus.hoard(M + "/dir/a.txt", 900)
    content = testbed.run(venus.read_file(M + "/dir/a.txt"))
    assert content.size == 4_000
    assert venus.stats.misses_transparent == 1


def test_weak_miss_above_patience_is_refused():
    from repro.net import MODEM
    testbed = build_testbed(profile=MODEM)
    connected(testbed)
    venus = testbed.venus
    entry = testbed.run(venus.stat(M + "/dir/big.bin"))
    venus.cache.remove(entry.fid)
    # 400 KB at 9.6 Kb/s is ~7 minutes; priority 0 tolerates ~3 s.
    with pytest.raises(CacheMissError) as exc:
        testbed.run(venus.read_file(M + "/dir/big.bin", program="grep"))
    assert exc.value.estimated_seconds > 60
    assert venus.stats.misses_denied == 1
    assert venus.misses.peek()[0].size_bytes == 400_000


def test_callback_break_invalidates_cached_object(testbed):
    connected(testbed)
    venus = testbed.venus
    entry = testbed.run(venus.stat(M + "/dir/a.txt"))
    # Another client updates a.txt on the server.
    vnode = testbed.volume.require(entry.fid)
    vnode.content = Content.of(b"other client was here")
    testbed.volume.bump(vnode, 1.0)
    testbed.server._break_callbacks("other", entry.fid)
    testbed.sim.run(until=testbed.sim.now + 5.0)   # let the break land
    assert not venus.cache.is_valid(venus.cache.get(entry.fid))
    # The object is refetched on next use.
    content = testbed.run(venus.read_file(M + "/dir/a.txt"))
    assert content == Content.of(b"other client was here")
