"""Hoard database, Venus state machine, user models, miss log."""

import pytest

from repro.venus import (
    AlwaysApprove,
    HoardDatabase,
    MissRecord,
    NeverApprove,
    ScriptedUser,
    TimeoutUser,
    VenusState,
)
from repro.venus.advice import FetchCandidate
from repro.venus.misshandler import MissLog
from repro.venus.states import IllegalTransition, VenusStateMachine


# ---------------------------------------------------------------- HDB

def test_hdb_add_and_priority():
    hdb = HoardDatabase()
    hdb.add("/coda/a/b", 600)
    assert hdb.priority_for("/coda/a/b") == 600
    assert hdb.priority_for("/coda/a/b/c") == 0
    assert hdb.priority_for("/coda/x") == 0


def test_hdb_children_covers_descendants():
    hdb = HoardDatabase()
    hdb.add("/coda/proj", 100, children=True)
    assert hdb.priority_for("/coda/proj/src/deep/file.c") == 100
    assert hdb.priority_for("/coda/projX") == 0


def test_hdb_highest_covering_priority_wins():
    hdb = HoardDatabase()
    hdb.add("/coda/proj", 100, children=True)
    hdb.add("/coda/proj/src/main.c", 900)
    assert hdb.priority_for("/coda/proj/src/main.c") == 900


def test_hdb_entries_sorted_by_priority():
    hdb = HoardDatabase()
    hdb.add("/a", 10)
    hdb.add("/b", 500)
    hdb.add("/c", 100)
    assert [e.priority for e in hdb.entries()] == [500, 100, 10]


def test_hdb_replace_and_remove():
    hdb = HoardDatabase()
    hdb.add("/a", 10)
    hdb.add("/a", 20)
    assert len(hdb) == 1
    assert hdb.priority_for("/a") == 20
    assert hdb.remove("/a")
    assert not hdb.remove("/a")


def test_hdb_rejects_negative_priority():
    with pytest.raises(ValueError):
        HoardDatabase().add("/a", -1)


# ------------------------------------------------------------- states

def test_figure2_legal_transitions():
    machine = VenusStateMachine(initial=VenusState.EMULATING)
    machine.transition(VenusState.WRITE_DISCONNECTED, now=1.0)
    machine.transition(VenusState.HOARDING, now=2.0)
    machine.transition(VenusState.WRITE_DISCONNECTED, now=3.0)
    machine.transition(VenusState.EMULATING, now=4.0)
    assert len(machine.transitions) == 4


def test_no_direct_emulating_to_hoarding():
    """Reconnection always passes through write disconnected."""
    machine = VenusStateMachine(initial=VenusState.EMULATING)
    with pytest.raises(IllegalTransition):
        machine.transition(VenusState.HOARDING)


def test_hoarding_to_emulating_on_disconnect():
    machine = VenusStateMachine(initial=VenusState.HOARDING)
    machine.transition(VenusState.EMULATING)
    assert machine.state is VenusState.EMULATING


def test_self_transition_is_noop():
    machine = VenusStateMachine(initial=VenusState.HOARDING)
    assert machine.transition(VenusState.HOARDING) is False
    assert machine.transitions == []


def test_listeners_called_on_transition():
    machine = VenusStateMachine(initial=VenusState.EMULATING)
    seen = []
    machine.on_transition(lambda old, new: seen.append((old, new)))
    machine.transition(VenusState.WRITE_DISCONNECTED)
    assert seen == [(VenusState.EMULATING, VenusState.WRITE_DISCONNECTED)]


def test_logging_updates_predicate():
    assert VenusStateMachine(VenusState.EMULATING).logging_updates
    assert VenusStateMachine(VenusState.WRITE_DISCONNECTED).logging_updates
    assert not VenusStateMachine(VenusState.HOARDING).logging_updates


# --------------------------------------------------------- user models

def candidates():
    return [
        FetchCandidate("/a", 900, 1000, 1.0, preapproved=True),
        FetchCandidate("/b", 100, 9_000_000, 900.0, preapproved=False),
        FetchCandidate("/c", 100, 5_000_000, 500.0, preapproved=False),
    ]


def test_timeout_user_fetches_everything():
    approved, suppressed = TimeoutUser(60.0).approve_fetches(candidates())
    assert approved == ["/b", "/c"]
    assert suppressed == []


def test_never_approve_skips_all():
    approved, suppressed = NeverApprove().approve_fetches(candidates())
    assert approved == [] and suppressed == []


def test_always_approve_has_no_delay():
    user = AlwaysApprove()
    assert user.delay_seconds == 0.0
    approved, _ = user.approve_fetches(candidates())
    assert approved == ["/b", "/c"]


def test_scripted_user_decisions():
    user = ScriptedUser(approvals={"/b": True, "/c": "stop"})
    approved, suppressed = user.approve_fetches(candidates())
    assert approved == ["/b"]
    assert suppressed == ["/c"]
    assert user.asked == ["/b", "/c"]


def test_scripted_user_hoard_additions_once():
    user = ScriptedUser(hoard_additions=[("/a", 600, False)])
    assert user.review_misses([]) == [("/a", 600, False)]
    assert user.review_misses([]) == []


# ------------------------------------------------------------ miss log

def test_miss_log_drain():
    log = MissLog()
    log.record(MissRecord(path="/a", time=1.0, program="emacs"))
    log.record(MissRecord(path="/b", time=2.0))
    assert len(log) == 2
    drained = log.drain()
    assert [m.path for m in drained] == ["/a", "/b"]
    assert len(log) == 0
    assert log.total_recorded == 2
