"""Hard links, setattr, multi-volume clients, SLIP floor, eviction."""

import pytest

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.fs import Content
from repro.net import ETHERNET, SLIP_1200
from repro.venus import VenusConfig, VenusState

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def test_hard_link_connected(testbed):
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.link(M + "/dir/a.txt", M + "/dir/a-link"))
    names = testbed.run(venus.readdir(M + "/dir"))
    assert "a-link" in names
    # Both names resolve to the same object.
    a = testbed.run(venus.stat(M + "/dir/a.txt"))
    b = testbed.run(venus.stat(M + "/dir/a-link"))
    assert a.fid == b.fid
    # Server agrees.
    dir_vnode = testbed.volume.require(testbed.volume.root.lookup("dir"))
    assert dir_vnode.lookup("a-link") == a.fid
    assert testbed.volume.require(a.fid).link_count == 2


def test_hard_link_while_disconnected_reintegrates(testbed):
    connected(testbed)
    venus = testbed.venus
    testbed.link.set_up(False)
    venus.handle_disconnection()
    testbed.run(venus.link(M + "/dir/a.txt", M + "/dir/a-link"))
    assert len(venus.cml) == 1
    testbed.link.set_up(True)
    connected(testbed)
    assert len(venus.cml) == 0
    dir_vnode = testbed.volume.require(testbed.volume.root.lookup("dir"))
    assert dir_vnode.lookup("a-link") is not None


def test_unlink_one_name_of_linked_file_keeps_object(testbed):
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.link(M + "/dir/a.txt", M + "/dir/a-link"))
    testbed.run(venus.unlink(M + "/dir/a.txt"))
    content = testbed.run(venus.read_file(M + "/dir/a-link"))
    assert content.size == 4_000


def test_link_to_directory_rejected(testbed):
    connected(testbed)
    with pytest.raises(IsADirectoryError):
        testbed.run(testbed.venus.link(M + "/dir", M + "/dirlink"))


def test_setattr_connected_bumps_version(testbed):
    connected(testbed)
    venus = testbed.venus
    before = testbed.run(venus.stat(M + "/dir/a.txt")).version
    testbed.run(venus.setattr(M + "/dir/a.txt", {"mode": 0o644}))
    after = testbed.run(venus.stat(M + "/dir/a.txt")).version
    assert after == before + 1


def test_setattr_disconnected_logs(testbed):
    connected(testbed)
    venus = testbed.venus
    testbed.link.set_up(False)
    venus.handle_disconnection()
    testbed.run(venus.setattr(M + "/dir/a.txt", {"mode": 0o600}))
    assert len(venus.cml) == 1
    # Two setattrs of one object collapse to one record.
    testbed.run(venus.setattr(M + "/dir/a.txt", {"mode": 0o640}))
    assert len(venus.cml) == 1


def test_multi_volume_client_validates_in_one_rpc():
    testbed = make_testbed(ETHERNET,
                           venus_config=VenusConfig(start_daemons=False))
    volumes = []
    for i in range(4):
        mount = "/coda/multi/v%d" % i
        tree = {mount + "/d": ("dir", 0),
                mount + "/d/f": ("file", 1_000)}
        volume = populate_volume(testbed.server, mount, tree)
        warm_cache(testbed.venus, testbed.server, volume)
        volumes.append(volume)
    venus = testbed.venus

    def scenario():
        yield from venus.connect()
        venus.handle_disconnection()
        packets_before = venus.endpoint.packets_out
        yield from venus.validator.validate_all()
        return venus.endpoint.packets_out - packets_before

    packets = testbed.run(scenario())
    # Four volumes, one batched ValidateVolumes RPC: 1 request out.
    assert packets <= 2
    stats = venus.validator.stats
    assert stats.attempts >= 4
    assert stats.objects_saved >= 4 * 3 - 4


def test_slip_1200_still_usable():
    """The paper's floor: mechanisms work down to 1.2 Kb/s."""
    testbed = build_testbed(profile=SLIP_1200)
    state = connected(testbed)
    assert state is VenusState.WRITE_DISCONNECTED
    venus = testbed.venus
    # A small write trickles out eventually.
    testbed.run(venus.write_file(M + "/dir/note", b"x" * 600))
    testbed.sim.run(until=testbed.sim.now + 1_200.0)
    assert len(venus.cml) == 0
    dir_vnode = testbed.volume.require(testbed.volume.root.lookup("dir"))
    assert dir_vnode.lookup("note") is not None


def test_cache_pressure_evicts_cold_not_dirty():
    tree = {M + "/dir": ("dir", 0)}
    for i in range(8):
        tree["%s/dir/f%d" % (M, i)] = ("file", 40_000)
    config = VenusConfig(cache_capacity=8 * 50_000,
                         start_daemons=False)
    testbed = build_testbed(tree=tree, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.link.set_up(False)
    venus.handle_disconnection()
    # Dirty a file, then force pressure with big new writes.
    testbed.run(venus.write_file(M + "/dir/f0", b"d" * 45_000))
    for i in range(3):
        testbed.run(venus.write_file("%s/dir/new%d" % (M, i),
                                     b"n" * 45_000))
    entry = testbed.run(venus.stat(M + "/dir/f0"))
    assert entry.content is not None       # dirty data survived
    assert venus.cache.evictions > 0
