"""Hoard walks and user-assisted miss handling (sections 4.4.2-4.4.3)."""

import pytest

from repro.fs import Content
from repro.net import MODEM
from repro.venus import (
    CacheMissError,
    ScriptedUser,
    NeverApprove,
    VenusConfig,
    VenusState,
)

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def cold_tree():
    return {
        M + "/papers": ("dir", 0),
        M + "/papers/s15.bib": ("file", 3_000),
        M + "/papers/s15.tex": ("file", 20_000),
        M + "/bin": ("dir", 0),
        M + "/bin/emacs": ("file", 600_000),
    }


def test_walk_fetches_hoarded_objects_when_strong():
    testbed = build_testbed(tree=cold_tree(), warm=False)
    connected(testbed)
    venus = testbed.venus
    venus.hoard(M + "/papers", 600, children=True)
    report = testbed.run(venus.hoard_walk())
    assert report.fetched == 2
    assert report.stamps_acquired == 1
    # Both files now readable from cache even if we disconnect.
    testbed.link.set_up(False)
    venus.handle_disconnection()
    content = testbed.run(venus.read_file(M + "/papers/s15.tex"))
    assert content.size == 20_000


def test_walk_preapproves_cheap_fetches_when_weak():
    config = VenusConfig(start_daemons=False)
    testbed = build_testbed(profile=MODEM, tree=cold_tree(), warm=False,
                            venus_config=config, user=NeverApprove())
    connected(testbed)
    venus = testbed.venus
    assert venus.state.state is VenusState.WRITE_DISCONNECTED
    venus.hoard(M + "/papers/s15.bib", 600)   # 3 KB: within patience
    venus.hoard(M + "/bin/emacs", 100)        # 600 KB: way beyond
    report = testbed.run(venus.hoard_walk())
    assert report.preapproved == 1
    assert report.fetched == 1
    assert report.skipped == 1
    assert venus.cache.get(
        testbed.run(venus.stat(M + "/papers/s15.bib")).fid).content


def test_walk_user_can_approve_expensive_fetch():
    user = ScriptedUser(approvals={M + "/bin/emacs": True},
                        delay_seconds=5.0)
    config = VenusConfig(start_daemons=False)
    testbed = build_testbed(profile=MODEM, tree=cold_tree(), warm=False,
                            venus_config=config, user=user)
    connected(testbed)
    venus = testbed.venus
    venus.hoard(M + "/bin/emacs", 100)
    report = testbed.run(venus.hoard_walk())
    assert user.asked == [M + "/bin/emacs"]
    assert report.user_approved == 1
    assert report.fetched == 1


def test_stop_asking_suppresses_until_strong():
    user = ScriptedUser(approvals={M + "/bin/emacs": "stop"})
    config = VenusConfig(start_daemons=False)
    testbed = build_testbed(profile=MODEM, tree=cold_tree(), warm=False,
                            venus_config=config, user=user)
    connected(testbed)
    venus = testbed.venus
    venus.hoard(M + "/bin/emacs", 100)
    report = testbed.run(venus.hoard_walk())
    assert report.suppressed == 1
    # A second walk does not ask again.
    report2 = testbed.run(venus.hoard_walk())
    assert user.asked == [M + "/bin/emacs"]
    assert report2.candidates == 0


def test_miss_review_feeds_hoard_database():
    """The Figure 5 loop: miss -> review -> hoard -> next walk fetches."""
    user = ScriptedUser(
        hoard_additions=[(M + "/bin/emacs", 900, False)],
        approvals={})
    config = VenusConfig(start_daemons=False)
    testbed = build_testbed(profile=MODEM, tree=cold_tree(), warm=False,
                            venus_config=config, user=user)
    connected(testbed)
    venus = testbed.venus
    with pytest.raises(CacheMissError):
        testbed.run(venus.read_file(M + "/bin/emacs", program="csh"))
    assert len(venus.misses) == 1
    additions = testbed.run(venus.review_misses())
    assert additions == [(M + "/bin/emacs", 900, False)]
    assert venus.hdb.priority_for(M + "/bin/emacs") == 900
    # At priority 900 the patience threshold is enormous: the next
    # walk pre-approves the fetch.
    report = testbed.run(venus.hoard_walk())
    assert report.preapproved == 1
    assert report.fetched == 1
    content = testbed.run(venus.read_file(M + "/bin/emacs"))
    assert content.size == 600_000


def test_unattended_client_times_out_to_fetch_all():
    """Figure 6: no input -> the screen disappears, everything fetches."""
    config = VenusConfig(start_daemons=False, advice_timeout=60.0)
    testbed = build_testbed(profile=MODEM, tree=cold_tree(), warm=False,
                            venus_config=config)   # default TimeoutUser
    connected(testbed)
    venus = testbed.venus
    venus.hoard(M + "/bin/emacs", 100)
    start = testbed.sim.now
    report = testbed.run(venus.hoard_walk())
    assert report.fetched == 1
    assert testbed.sim.now - start >= 60.0     # waited out the screen


def test_periodic_walk_daemon_runs():
    config = VenusConfig(hoard_walk_interval=600.0)
    testbed = build_testbed(tree=cold_tree(), warm=False,
                            venus_config=config)
    connected(testbed)
    venus = testbed.venus
    venus.hoard(M + "/papers", 500, children=True)
    testbed.sim.run(until=testbed.sim.now + 700.0)
    assert venus.stats.hoard_walks >= 1
    entry = venus.cache.get(
        testbed.run(venus.stat(M + "/papers/s15.bib")).fid)
    assert entry.content is not None
