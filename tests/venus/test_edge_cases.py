"""Edge cases across the Venus surface."""

import pytest

from repro.fs import Content, Fid, SyntheticContent
from repro.net import MODEM
from repro.venus import CacheMissError, CmlOp, CmlRecord, VenusConfig, \
    VenusState
from repro.venus.cml import ClientModifyLog

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


# ------------------------------------------------------------- resolve

def test_path_through_file_raises_notadirectory(testbed):
    connected(testbed)
    with pytest.raises(NotADirectoryError):
        testbed.run(testbed.venus.read_file(M + "/dir/a.txt/oops"))


def test_missing_intermediate_directory(testbed):
    connected(testbed)
    with pytest.raises(FileNotFoundError):
        testbed.run(testbed.venus.read_file(M + "/ghost/deeper/x"))


def test_unmounted_path_rejected(testbed):
    connected(testbed)
    with pytest.raises(FileNotFoundError):
        testbed.run(testbed.venus.read_file("/elsewhere/x"))


def test_mount_root_itself_resolves(testbed):
    connected(testbed)
    names = testbed.run(testbed.venus.readdir(M))
    assert names == ["dir"]


def test_cross_volume_rename_rejected():
    from repro.bench.common import make_testbed, populate_volume, warm_cache
    from repro.net import ETHERNET
    testbed = make_testbed(ETHERNET)
    for mount in ("/coda/v1", "/coda/v2"):
        volume = populate_volume(testbed.server, mount,
                                 {mount + "/d": ("dir", 0),
                                  mount + "/d/f": ("file", 100)})
        warm_cache(testbed.venus, testbed.server, volume)
    connected(testbed)
    with pytest.raises(OSError, match="cross-volume"):
        testbed.run(testbed.venus.rename("/coda/v1/d/f", "/coda/v2/d/g"))


# -------------------------------------------------------------- writes

def test_write_to_directory_path_rejected(testbed):
    connected(testbed)
    with pytest.raises(IsADirectoryError):
        testbed.run(testbed.venus.write_file(M + "/dir", b"x"))


def test_rename_onto_existing_name_rejected(testbed):
    connected(testbed)
    with pytest.raises(FileExistsError):
        testbed.run(testbed.venus.rename(M + "/dir/a.txt",
                                         M + "/dir/b.txt"))


def test_mkdir_over_existing_rejected(testbed):
    connected(testbed)
    with pytest.raises(FileExistsError):
        testbed.run(testbed.venus.mkdir(M + "/dir"))


def test_unlink_directory_rejected(testbed):
    connected(testbed)
    with pytest.raises(IsADirectoryError):
        testbed.run(testbed.venus.unlink(M + "/dir"))


def test_empty_write_creates_empty_file(testbed):
    connected(testbed)
    testbed.run(testbed.venus.write_file(M + "/dir/empty", b""))
    content = testbed.run(testbed.venus.read_file(M + "/dir/empty"))
    assert content.size == 0


def test_open_read_mode_rejects_write(testbed):
    connected(testbed)
    venus = testbed.venus

    def session():
        handle = yield from venus.open(M + "/dir/a.txt", "r")
        try:
            handle.write(b"nope")
        finally:
            yield from venus.close(handle)

    with pytest.raises(PermissionError):
        testbed.run(session())


def test_double_close_is_harmless(testbed):
    connected(testbed)
    venus = testbed.venus

    def session():
        handle = yield from venus.open(M + "/dir/a.txt", "r")
        yield from venus.close(handle)
        yield from venus.close(handle)
        return handle.entry.pins

    assert testbed.run(session()) == 0


# ------------------------------------------------- CML rename chains

def fidn(n):
    return Fid(1, n, n)


def test_rename_chain_then_unlink_stays_conservative():
    cml = ClientModifyLog()
    parent = fidn(1)
    f = fidn(2)
    cml.append(CmlRecord(op=CmlOp.CREATE, fid=f, parent=parent,
                         name="a"), 0.0)
    cml.append(CmlRecord(op=CmlOp.RENAME, fid=f, parent=parent, name="a",
                         to_parent=parent, to_name="b"), 1.0)
    cml.append(CmlRecord(op=CmlOp.RENAME, fid=f, parent=parent, name="b",
                         to_parent=parent, to_name="c"), 2.0)
    appended = cml.append(CmlRecord(op=CmlOp.UNLINK, fid=f, parent=parent,
                                    name="c"), 3.0)
    # Renames block identity cancellation: everything ships.
    assert appended
    assert len(cml) == 4


def test_store_after_rename_still_overwritten():
    cml = ClientModifyLog()
    parent = fidn(1)
    f = fidn(2)
    cml.append(CmlRecord(op=CmlOp.STORE, fid=f,
                         content=SyntheticContent(5_000)), 0.0)
    cml.append(CmlRecord(op=CmlOp.RENAME, fid=f, parent=parent, name="a",
                         to_parent=parent, to_name="b"), 1.0)
    cml.append(CmlRecord(op=CmlOp.STORE, fid=f,
                         content=SyntheticContent(100)), 2.0)
    stores = [r for r in cml.records if r.op is CmlOp.STORE]
    assert len(stores) == 1
    assert stores[0].content.size == 100


# --------------------------------------------------- misses & advice

def test_review_misses_with_nothing_pending(testbed):
    connected(testbed)
    additions = testbed.run(testbed.venus.review_misses())
    assert additions == []


def test_miss_log_counts_multiple_programs():
    config = VenusConfig(start_daemons=False)
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    entry = testbed.run(venus.stat(M + "/dir/big.bin"))
    venus.cache.remove(entry.fid)
    for program in ("latex", "gcc"):
        with pytest.raises(CacheMissError):
            testbed.run(venus.read_file(M + "/dir/big.bin",
                                        program=program))
    programs = [m.program for m in venus.misses.peek()]
    assert programs == ["latex", "gcc"]


def test_subtree_sync_of_clean_subtree_with_dirty_sibling():
    config = VenusConfig(aging_window=3600.0)
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.mkdir(M + "/quiet"))
    testbed.run(venus.write_file(M + "/dir/busy.txt", b"pending"))
    # Syncing the freshly made (dirty) quiet dir ships its mkdir but
    # not the sibling's store.
    ok = testbed.run(venus.sync_subtree(M + "/quiet"))
    assert ok
    remaining_ops = [r.op for r in venus.cml.records]
    assert CmlOp.MKDIR not in remaining_ops
    assert CmlOp.STORE in remaining_ops
