"""Cache manager: space, eviction, validity flags."""

import pytest

from repro.fs import Fid, ObjectType, SyntheticContent
from repro.venus import CacheEntry, CacheManager, NoSpaceError
from repro.venus.cache import ENTRY_OVERHEAD


def entry(n, size=0, volume=1, priority=0):
    e = CacheEntry(Fid(volume, n, n), ObjectType.FILE)
    e.content = SyntheticContent(size)
    e.length = size
    e.hoard_priority = priority
    return e


def test_space_accounting():
    cache = CacheManager(capacity_bytes=100_000)
    cache.add(entry(1, 10_000), now=0.0)
    assert cache.used_bytes == ENTRY_OVERHEAD + 10_000
    assert cache.available_bytes == 100_000 - cache.used_bytes


def test_eviction_frees_space_for_new_entries():
    cache = CacheManager(capacity_bytes=3 * (ENTRY_OVERHEAD + 10_000))
    for n in range(3):
        cache.add(entry(n, 10_000), now=float(n))
    cache.add(entry(99, 10_000), now=10.0)
    assert len(cache) == 3
    assert cache.evictions == 1
    assert cache.get(Fid(1, 0, 0)) is None      # LRU victim


def test_hoarded_entries_evicted_last():
    cache = CacheManager(capacity_bytes=3 * (ENTRY_OVERHEAD + 10_000))
    hoarded = entry(1, 10_000, priority=500)
    cache.add(hoarded, now=0.0)                 # oldest but hoarded
    cache.add(entry(2, 10_000), now=1.0)
    cache.add(entry(3, 10_000), now=2.0)
    cache.add(entry(4, 10_000), now=3.0)
    assert cache.get(hoarded.fid) is hoarded
    assert cache.get(Fid(1, 2, 2)) is None


def test_dirty_and_pinned_entries_never_evicted():
    cache = CacheManager(capacity_bytes=2 * (ENTRY_OVERHEAD + 10_000))
    dirty = entry(1, 10_000)
    dirty.dirty = True
    pinned = entry(2, 10_000)
    pinned.pins = 1
    cache.add(dirty, now=0.0)
    cache.add(pinned, now=1.0)
    with pytest.raises(NoSpaceError):
        cache.add(entry(3, 10_000), now=2.0)
    assert cache.get(dirty.fid) and cache.get(pinned.fid)


def test_object_too_big_for_cache():
    cache = CacheManager(capacity_bytes=1000)
    with pytest.raises(NoSpaceError):
        cache.ensure_space(2000)


def test_touch_updates_recency():
    cache = CacheManager(capacity_bytes=2 * (ENTRY_OVERHEAD + 10_000))
    oldest = entry(1, 10_000)
    cache.add(oldest, now=0.0)
    cache.add(entry(2, 10_000), now=1.0)
    cache.touch(oldest, now=5.0)        # refresh: now entry 2 is LRU
    cache.add(entry(3, 10_000), now=6.0)
    assert cache.get(oldest.fid) is not None
    assert cache.get(Fid(1, 2, 2)) is None


def test_validity_via_object_callback():
    cache = CacheManager()
    e = entry(1)
    e.callback = True
    cache.add(e, now=0.0)
    assert cache.is_valid(e)
    cache.break_object(e.fid)
    assert not cache.is_valid(e)


def test_validity_via_volume_callback():
    cache = CacheManager()
    e = entry(1, volume=7)
    cache.add(e, now=0.0)
    assert not cache.is_valid(e)
    info = cache.volume_info(7)
    info.stamp = 41
    info.callback = True
    assert cache.is_valid(e)


def test_volume_break_drops_stamp_too():
    """Once broken, the stamp is stale and must be re-acquired."""
    cache = CacheManager()
    info = cache.volume_info(7)
    info.stamp = 41
    info.callback = True
    cache.break_volume(7)
    assert info.stamp is None
    assert not info.callback


def test_object_callback_survives_volume_break():
    cache = CacheManager()
    e = entry(1, volume=7)
    e.callback = True
    cache.add(e, now=0.0)
    info = cache.volume_info(7)
    info.callback = True
    cache.break_volume(7)
    assert cache.is_valid(e)     # falls back on the object callback


def test_disconnection_drops_callbacks_keeps_stamps():
    cache = CacheManager()
    e = entry(1, volume=7)
    e.callback = True
    cache.add(e, now=0.0)
    info = cache.volume_info(7)
    info.stamp = 41
    info.callback = True
    cache.drop_all_callbacks()
    assert not e.callback
    assert not info.callback
    assert info.stamp == 41      # the whole point of rapid validation


def test_local_entries_always_valid():
    cache = CacheManager()
    e = entry(1)
    e.local = True
    cache.add(e, now=0.0)
    assert cache.is_valid(e)


def test_entries_in_volume():
    cache = CacheManager()
    cache.add(entry(1, volume=1), now=0.0)
    cache.add(entry(2, volume=2), now=0.0)
    cache.add(entry(3, volume=1), now=0.0)
    assert len(cache.entries_in_volume(1)) == 2
