"""CML log optimizations, aging, chunk selection, and the barrier."""

import pytest

from repro.fs import Fid, SyntheticContent
from repro.venus import ClientModifyLog, CmlOp, CmlRecord
from repro.venus.cml import RECORD_OVERHEAD


def fid(n):
    return Fid(1, n, n)


DIR = fid(100)


def store(f, size, tag=None):
    return CmlRecord(op=CmlOp.STORE, fid=f,
                     content=SyntheticContent(size, tag=tag))


def create(f, name):
    return CmlRecord(op=CmlOp.CREATE, fid=f, parent=DIR, name=name)


def unlink(f, name):
    return CmlRecord(op=CmlOp.UNLINK, fid=f, parent=DIR, name=name)


def test_append_assigns_seqno_and_time():
    cml = ClientModifyLog()
    record = store(fid(1), 100)
    assert cml.append(record, now=5.0)
    assert record.seqno == 1
    assert record.time == 5.0
    assert len(cml) == 1


def test_store_overwrites_earlier_store():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10_000), 0.0)
    cml.append(store(fid(1), 2_000), 1.0)
    assert len(cml) == 1
    assert cml.records[0].content.size == 2_000
    assert cml.stats.optimized_bytes == RECORD_OVERHEAD + 10_000


def test_stores_of_different_files_coexist():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10), 0.0)
    cml.append(store(fid(2), 20), 1.0)
    assert len(cml) == 2


def test_create_store_unlink_annihilates():
    """The paper's example: create + store + unlink all vanish."""
    cml = ClientModifyLog()
    cml.append(create(fid(1), "f"), 0.0)
    cml.append(store(fid(1), 50_000), 1.0)
    appended = cml.append(unlink(fid(1), "f"), 2.0)
    assert not appended
    assert len(cml) == 0
    # All three records' bytes count as saved.
    assert cml.stats.optimized_bytes == (RECORD_OVERHEAD * 3 + 50_000)


def test_unlink_of_preexisting_file_stays():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 9_000), 0.0)
    appended = cml.append(unlink(fid(1), "f"), 1.0)
    assert appended
    assert [r.op for r in cml.records] == [CmlOp.UNLINK]


def test_setattr_overwrites_setattr():
    cml = ClientModifyLog()
    cml.append(CmlRecord(op=CmlOp.SETATTR, fid=fid(1), attrs={"a": 1}), 0.0)
    cml.append(CmlRecord(op=CmlOp.SETATTR, fid=fid(1), attrs={"a": 2}), 1.0)
    assert len(cml) == 1
    assert cml.records[0].attrs == {"a": 2}


def test_mkdir_rmdir_annihilates():
    cml = ClientModifyLog()
    d = fid(9)
    cml.append(CmlRecord(op=CmlOp.MKDIR, fid=d, parent=DIR, name="w"), 0.0)
    appended = cml.append(
        CmlRecord(op=CmlOp.RMDIR, fid=d, parent=DIR, name="w"), 1.0)
    assert not appended
    assert len(cml) == 0


def test_rmdir_blocked_by_activity_inside_dir():
    cml = ClientModifyLog()
    d = fid(9)
    cml.append(CmlRecord(op=CmlOp.MKDIR, fid=d, parent=DIR, name="w"), 0.0)
    # A surviving unlink inside d blocks identity cancellation.
    cml.append(CmlRecord(op=CmlOp.UNLINK, fid=fid(10), parent=d,
                         name="x"), 1.0)
    appended = cml.append(
        CmlRecord(op=CmlOp.RMDIR, fid=d, parent=DIR, name="w"), 2.0)
    assert appended
    assert len(cml) == 3


def test_rename_blocks_identity_cancellation():
    cml = ClientModifyLog()
    cml.append(create(fid(1), "f"), 0.0)
    cml.append(CmlRecord(op=CmlOp.RENAME, fid=fid(1), parent=DIR,
                         name="f", to_parent=DIR, to_name="g"), 1.0)
    appended = cml.append(unlink(fid(1), "g"), 2.0)
    assert appended
    assert len(cml) == 3


def test_size_accounting():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 5_000), 0.0)
    cml.append(create(fid(2), "g"), 1.0)
    assert cml.size_bytes == (RECORD_OVERHEAD + 5_000) + RECORD_OVERHEAD


# ------------------------------------------------------- aging & chunks

def test_eligible_records_is_aged_prefix():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10), 0.0)
    cml.append(store(fid(2), 10), 100.0)
    cml.append(store(fid(3), 10), 500.0)
    eligible = cml.eligible_records(now=700.0, aging_window=600.0)
    assert [r.fid for r in eligible] == [fid(1), fid(2)]


def test_select_chunk_respects_budget():
    cml = ClientModifyLog()
    for i in range(5):
        cml.append(store(fid(i), 1_000), 0.0)
    chunk = cml.select_chunk(now=1000.0, aging_window=0.0,
                             chunk_bytes=2 * (RECORD_OVERHEAD + 1000))
    assert len(chunk) == 2


def test_select_chunk_always_takes_one_if_oversized():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10_000_000), 0.0)
    chunk = cml.select_chunk(now=1000.0, aging_window=0.0, chunk_bytes=100)
    assert len(chunk) == 1


def test_select_chunk_empty_when_nothing_aged():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10), 100.0)
    assert cml.select_chunk(now=150.0, aging_window=600.0,
                            chunk_bytes=10**9) == []


# ------------------------------------------------------------ barrier

def test_frozen_records_protected_from_optimization():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10_000, tag="old"), 0.0)
    cml.freeze(1)
    cml.append(store(fid(1), 2_000, tag="new"), 1.0)
    # Both live: the frozen store may not be cancelled (Figure 3).
    assert len(cml) == 2
    assert cml.frozen_count == 1


def test_commit_frozen_removes_prefix():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10), 0.0)
    cml.append(store(fid(2), 10), 1.0)
    cml.freeze(1)
    done = cml.commit_frozen()
    assert [r.fid for r in done] == [fid(1)]
    assert len(cml) == 1
    assert cml.frozen_count == 0
    assert cml.stats.reintegrated_records == 1


def test_abort_reoptimizes_across_old_barrier():
    """On abort, records superfluous because of concurrent updates
    are removed — section 4.3.3."""
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10_000, tag="old"), 0.0)
    cml.freeze(1)
    cml.append(store(fid(1), 2_000, tag="new"), 1.0)
    cml.abort_frozen()
    assert len(cml) == 1
    assert cml.records[0].content.tag == "new"


def test_identity_cancellation_respects_barrier():
    """An unlink cannot annihilate a create that is being shipped."""
    cml = ClientModifyLog()
    cml.append(create(fid(1), "f"), 0.0)
    cml.freeze(1)
    appended = cml.append(unlink(fid(1), "f"), 1.0)
    assert appended
    assert len(cml) == 2


def test_double_freeze_rejected():
    cml = ClientModifyLog()
    cml.append(store(fid(1), 10), 0.0)
    cml.freeze(1)
    with pytest.raises(RuntimeError):
        cml.freeze(1)


def test_freeze_too_many_rejected():
    cml = ClientModifyLog()
    with pytest.raises(ValueError):
        cml.freeze(1)


def test_discard_removes_conflicted_records():
    cml = ClientModifyLog()
    a = store(fid(1), 10)
    b = store(fid(2), 10)
    cml.append(a, 0.0)
    cml.append(b, 1.0)
    removed = cml.discard([a])
    assert removed == 1
    assert cml.records == [b]
