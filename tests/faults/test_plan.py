"""FaultPlan validation, ordering, and dict round-tripping."""

import pytest

from repro.faults import (
    ACTION_TYPES,
    ClientCrash,
    ClientRestart,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    LossBurst,
    ServerCrash,
    ServerRestart,
)


class TestValidation:

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []

    def test_actions_sorted_by_time(self):
        plan = FaultPlan([
            ClientRestart(at=300.0),
            LinkOutage(at=10.0, duration=5.0),
            ClientCrash(at=200.0),
        ])
        assert [a.at for a in plan] == [10.0, 200.0, 300.0]

    def test_simultaneous_actions_keep_authored_order(self):
        first = LinkOutage(at=50.0, duration=5.0)
        second = LossBurst(at=50.0, duration=5.0)
        plan = FaultPlan([first, second])
        assert plan.actions == (first, second)

    def test_rejects_non_action(self):
        with pytest.raises(TypeError):
            FaultPlan(["link_outage"])

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultPlan([ServerCrash(at=-1.0)])

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            FaultPlan([LinkOutage(at=5.0, duration=0.0)])
        with pytest.raises(ValueError):
            FaultPlan([LossBurst(at=5.0, duration=-3.0)])


class TestPairing:

    def test_restart_without_crash_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([ClientRestart(at=10.0)])
        with pytest.raises(ValueError):
            FaultPlan([ServerRestart(at=10.0)])

    def test_double_crash_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([ClientCrash(at=10.0), ClientCrash(at=20.0)])
        with pytest.raises(ValueError):
            FaultPlan([ServerCrash(at=10.0), ServerCrash(at=20.0)])

    def test_crash_restart_crash_restart_ok(self):
        plan = FaultPlan([
            ClientCrash(at=10.0), ClientRestart(at=20.0),
            ClientCrash(at=30.0), ClientRestart(at=40.0),
        ])
        assert len(plan) == 4

    def test_client_and_server_tracked_independently(self):
        plan = FaultPlan([
            ServerCrash(at=10.0), ClientCrash(at=15.0),
            ServerRestart(at=20.0), ClientRestart(at=25.0),
        ])
        assert len(plan) == 4

    def test_unmatched_final_crash_allowed(self):
        # A run may legitimately end with a node still down.
        plan = FaultPlan([ServerCrash(at=10.0)])
        assert len(plan) == 1


class TestDictRoundTrip:

    ROWS = [
        {"kind": "link_outage", "at": 10.0, "duration": 30.0},
        {"kind": "link_degrade", "at": 50.0, "duration": 20.0,
         "bandwidth_bps": 9600.0, "loss_rate": 0.1},
        {"kind": "loss_burst", "at": 90.0, "duration": 10.0,
         "loss_rate": 0.3},
        {"kind": "server_crash", "at": 120.0},
        {"kind": "server_restart", "at": 150.0},
        {"kind": "client_crash", "at": 180.0},
        {"kind": "client_restart", "at": 210.0},
    ]

    def test_round_trip(self):
        plan = FaultPlan.from_dicts(self.ROWS)
        assert plan.to_dicts() == self.ROWS
        again = FaultPlan.from_dicts(plan.to_dicts())
        assert again.actions == plan.actions

    def test_covers_whole_vocabulary(self):
        plan = FaultPlan.from_dicts(self.ROWS)
        assert {a.kind for a in plan} == set(ACTION_TYPES)

    def test_unknown_kind_names_the_vocabulary(self):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_dicts([{"kind": "meteor_strike", "at": 1.0}])
        message = str(excinfo.value)
        assert "meteor_strike" in message
        for kind in ACTION_TYPES:
            assert kind in message

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_dicts(
                [{"kind": "server_crash", "at": 1.0, "severity": 11}])
        assert "severity" in str(excinfo.value)

    def test_degrade_defaults(self):
        action = LinkDegrade(at=5.0, duration=10.0)
        assert action.bandwidth_bps is None
        assert action.loss_rate is None
