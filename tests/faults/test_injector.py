"""FaultInjector execution: determinism, zero perturbation, reverts."""

import pytest

from repro.bench.common import make_testbed
from repro.faults import (
    ClientCrash,
    ClientRestart,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    LossBurst,
    fault_fingerprint,
)
from repro.faults.scenarios import FAULT_SCENARIOS, run_fault_scenario
from repro.net import MODEM
from repro.obs.scenarios import _probe_schedule


def _idle_run(testbed, until=200.0):
    sim = testbed.sim

    def session():
        yield sim.timeout(until)

    sim.run(sim.process(session()))


class TestZeroPerturbation:
    """An empty plan must be indistinguishable from no injector."""

    @staticmethod
    def _run(with_injector):
        schedule = []
        testbed = make_testbed(MODEM, seed=7)
        _probe_schedule(testbed.sim, schedule)
        if with_injector:
            injector = FaultInjector(testbed, FaultPlan([]))
            assert injector.start() is None
            assert injector.log == []
        _idle_run(testbed)
        return schedule

    def test_empty_plan_is_schedule_identical(self):
        bare = self._run(with_injector=False)
        armed = self._run(with_injector=True)
        assert len(bare) > 10
        assert bare == armed

    def test_empty_plan_draws_no_randomness(self):
        testbed = make_testbed(MODEM, seed=7)
        before = testbed.sim.rand.stream("faults.jitter").getstate()
        FaultInjector(testbed, FaultPlan([]), jitter=5.0).start()
        after = testbed.sim.rand.stream("faults.jitter").getstate()
        assert before == after


class TestDeterminism:

    @pytest.mark.parametrize("name", sorted(FAULT_SCENARIOS))
    def test_same_seed_same_schedule_and_fingerprint(self, name):
        first_schedule, second_schedule = [], []
        first = run_fault_scenario(name, schedule_log=first_schedule)
        second = run_fault_scenario(name, schedule_log=second_schedule)
        assert len(first_schedule) > 500
        assert first_schedule == second_schedule
        assert fault_fingerprint(first) == fault_fingerprint(second)
        # The injected timeline itself is reproduced exactly.
        assert first.faults.log == second.faults.log
        assert len(first.faults.log) == len(first.faults.plan) + sum(
            1 for a in first.faults.plan if hasattr(a, "duration"))

    def test_jitter_is_reproducible_per_seed(self):
        plan = FaultPlan([LinkOutage(at=50.0, duration=10.0),
                          ClientCrash(at=100.0),
                          ClientRestart(at=130.0)])

        def jittered_times(seed):
            testbed = make_testbed(MODEM, seed=seed)
            injector = FaultInjector(testbed, plan, jitter=20.0)
            return [when for when, _seq, _label, _fn in injector._expand()]

        assert jittered_times(3) == jittered_times(3)
        assert jittered_times(3) != jittered_times(4)
        # Jitter only delays: every step lands at or after its plan time.
        plain = [when for when, _s, _l, _f in
                 FaultInjector(make_testbed(MODEM, seed=3), plan)._expand()]
        for shifted, base in zip(sorted(jittered_times(3)), sorted(plain)):
            assert shifted >= base

    def test_jitter_without_streams_refused(self):
        testbed = make_testbed(MODEM, seed=0)
        testbed.sim.rand = None
        injector = FaultInjector(
            testbed, FaultPlan([ClientCrash(at=5.0)]), jitter=1.0)
        with pytest.raises(RuntimeError):
            injector.start()


class TestWindowedReverts:

    def test_outage_window_restores_link(self):
        testbed = make_testbed(MODEM, seed=0)
        FaultInjector(testbed, FaultPlan(
            [LinkOutage(at=50.0, duration=30.0)])).start()
        seen = []
        sim = testbed.sim

        def watch():
            yield sim.timeout(60.0)
            seen.append(testbed.link.forward.up)
            yield sim.timeout(40.0)
            seen.append(testbed.link.forward.up)

        sim.run(sim.process(watch()))
        assert seen == [False, True]

    def test_degrade_window_restores_bandwidth_and_loss(self):
        testbed = make_testbed(MODEM, seed=0)
        original_down = testbed.link.forward.bandwidth_bps
        original_up = testbed.link.backward.bandwidth_bps
        original_loss = testbed.link.forward.loss_rate
        FaultInjector(testbed, FaultPlan([LinkDegrade(
            at=20.0, duration=30.0, bandwidth_bps=2_400.0,
            loss_rate=0.2)])).start()
        sim = testbed.sim
        mid = {}

        def watch():
            yield sim.timeout(30.0)
            mid["bps"] = testbed.link.forward.bandwidth_bps
            mid["loss"] = testbed.link.forward.loss_rate

        sim.run(sim.process(watch()))
        _idle_run(testbed, until=40.0)
        assert mid == {"bps": 2_400.0, "loss": 0.2}
        assert testbed.link.forward.bandwidth_bps == original_down
        assert testbed.link.backward.bandwidth_bps == original_up
        assert testbed.link.forward.loss_rate == original_loss

    def test_loss_burst_reverts(self):
        testbed = make_testbed(MODEM, seed=0)
        original = testbed.link.forward.loss_rate
        FaultInjector(testbed, FaultPlan(
            [LossBurst(at=10.0, duration=20.0, loss_rate=0.5)])).start()
        _idle_run(testbed, until=50.0)
        assert testbed.link.forward.loss_rate == original

    def test_restart_without_crash_refused(self):
        testbed = make_testbed(MODEM, seed=0)
        injector = FaultInjector(testbed, FaultPlan([
            ClientCrash(at=10.0), ClientRestart(at=20.0)]))
        # Bypass the plan check to hit the injector's own guard.
        with pytest.raises(RuntimeError):
            injector._client_restart(ClientRestart(at=20.0))
