"""Crash/recovery end-to-end: scripted crashes recover consistently.

The load-bearing invariant throughout: a run interrupted by a crash
must converge to the *same server namespace* as the same run with no
faults at all.  Volume stamps bump once per applied record, so digest
equality (stamps included) is also a proof that no CML record was
applied twice.
"""

import pytest

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.cli import main
from repro.faults import FaultPlan, namespace_digest, run_fault_scenario
from repro.fs.content import SyntheticContent
from repro.net import MODEM
from repro.obs import Observatory
from repro.obs.scenarios import MOUNT


class TestSmokeScenario:

    @pytest.fixture(scope="class")
    def observed(self):
        observatory = Observatory()
        testbed = run_fault_scenario("smoke", observatory=observatory)
        return observatory, testbed

    def test_whole_timeline_executed(self, observed):
        _observatory, testbed = observed
        labels = [label for _when, label in testbed.faults.log]
        assert labels == ["link_outage", "link_outage:revert",
                          "loss_burst", "loss_burst:revert",
                          "client_crash", "client_restart"]

    def test_crash_caught_records_in_the_log(self, observed):
        _observatory, testbed = observed
        snapshot = testbed.faults.client_snapshot
        assert snapshot is not None
        assert snapshot.cml_len >= 1

    def test_log_drains_after_restart(self, observed):
        _observatory, testbed = observed
        assert len(testbed.venus.cml) == 0
        assert testbed.venus.cml.stats.reintegrated_records >= 4

    def test_all_updates_reach_the_server(self, observed):
        _observatory, testbed = observed
        rows = {path: row for volume in namespace_digest(testbed.server)
                for path, row in volume[2]}
        expected = {
            MOUNT + "/work/notes.txt": SyntheticContent(
                6_000, tag=("smoke", 1)),
            MOUNT + "/work/draft.tex": SyntheticContent(
                16_000, tag=("smoke", 2)),
            MOUNT + "/work/results.dat": SyntheticContent(
                40_000, tag=("smoke", 3)),
            MOUNT + "/work/report.txt": SyntheticContent(
                8_000, tag=("smoke", 4)),
        }
        for path, content in expected.items():
            assert path in rows, path
            _otype, _version, fingerprint, _target, _children = rows[path]
            assert fingerprint == content.fingerprint, path

    def test_fault_events_recorded(self, observed):
        observatory, testbed = observed
        counts = observatory.trace.counts()
        # One event per plan action (window reverts are not injections).
        assert counts.get("fault_injected") == len(testbed.faults.plan)
        assert counts.get("node_crash", 0) == 1
        assert counts.get("node_restart", 0) == 1
        assert observatory.metrics.total("faults.injected") \
            == len(testbed.faults.plan)

    def test_restarted_client_revalidates_rapidly(self, observed):
        _observatory, testbed = observed
        # The restart presented surviving volume stamps, so validation
        # went through the batched volume path, not per-object checks.
        assert testbed.venus.validator.stats.attempts >= 1


class TestClientCrashRecovery:

    def test_converges_to_the_unfaulted_namespace(self):
        faulted = run_fault_scenario("client-crash")
        clean = run_fault_scenario("client-crash", plan=FaultPlan([]))
        assert faulted.faults.client_snapshot.cml_len >= 1
        assert namespace_digest(faulted.server) \
            == namespace_digest(clean.server)

    def test_no_record_applied_twice(self):
        testbed = run_fault_scenario("client-crash")
        server = testbed.server
        # Every surviving CML record was applied exactly once: any
        # re-shipped duplicates were filtered, never re-applied.
        applied = server.reintegrator._applied.values()
        seqnos = [seqno for marks in applied for seqno in marks]
        assert len(seqnos) == len(set(seqnos))
        assert len(testbed.venus.cml) == 0


class TestServerCrashRecovery:

    def test_converges_to_the_unfaulted_namespace(self):
        faulted = run_fault_scenario("server-crash")
        clean = run_fault_scenario("server-crash", plan=FaultPlan([]))
        assert faulted.server.crashes == 1
        assert namespace_digest(faulted.server) \
            == namespace_digest(clean.server)

    def test_volatile_state_lost_store_survives(self):
        testbed = run_fault_scenario("server-crash")
        server = testbed.server
        assert not server.crashed                 # restart happened
        assert len(testbed.venus.cml) == 0        # drain completed anyway
        assert server.reintegration_conflicts == 0


class TestIdempotentReplay:
    """Direct replay of a chunk the server already committed —
    the lost-reply retry a recovering client performs."""

    class _Ctx:
        peer = "laptop"

    def _testbed_with_records(self):
        testbed = make_testbed(MODEM, seed=0)
        tree = {MOUNT + "/work": ("dir", 0),
                MOUNT + "/work/a.txt": ("file", 2_000)}
        volume = populate_volume(testbed.server, MOUNT, tree)
        warm_cache(testbed.venus, testbed.server, volume)
        venus = testbed.venus
        sim = testbed.sim

        def session():
            yield from venus.write_file(
                MOUNT + "/work/a.txt",
                SyntheticContent(3_000, tag=("idem", 1)))
            yield from venus.write_file(
                MOUNT + "/work/b.txt",
                SyntheticContent(1_000, tag=("idem", 2)))

        sim.run(sim.process(session()))
        records = list(venus.cml)
        assert len(records) >= 2
        return testbed, records

    def _reintegrate(self, testbed, records):
        gen = testbed.server._h_reintegrate(
            self._Ctx(), {"records": records, "preshipped": []})
        return testbed.run(gen)

    def test_exact_replay_is_a_no_op(self):
        testbed, records = self._testbed_with_records()
        first = self._reintegrate(testbed, records)
        assert first["status"] == "ok"
        digest = namespace_digest(testbed.server)
        versions = dict(first["new_versions"])

        second = self._reintegrate(testbed, records)
        assert second["status"] == "ok"
        # Same acknowledgement, no state change, duplicates accounted.
        assert dict(second["new_versions"]) == versions
        assert namespace_digest(testbed.server) == digest
        assert testbed.server.reintegrator.duplicates_skipped \
            == len(records)

    def test_partially_duplicate_chunk_applies_only_the_fresh_tail(self):
        testbed, records = self._testbed_with_records()
        head, tail = records[:1], records[1:]
        first = self._reintegrate(testbed, head)
        assert first["status"] == "ok"

        replay = self._reintegrate(testbed, head + tail)
        assert replay["status"] == "ok"
        assert testbed.server.reintegrator.duplicates_skipped == len(head)
        # The fresh tail really landed.
        digest_rows = {path: row
                       for volume in namespace_digest(testbed.server)
                       for path, row in volume[2]}
        assert MOUNT + "/work/b.txt" in digest_rows

    def test_duplicate_store_does_not_conflict_with_fresh_store(self):
        """A re-shipped store on a fid followed by a fresh store on the
        same fid must not read as an update/update conflict: the bump
        the duplicate already applied was this client's own."""
        testbed, records = self._testbed_with_records()
        store_a = next(r for r in records if r.op.value == "store")
        first = self._reintegrate(testbed, [store_a])
        assert first["status"] == "ok"
        venus = testbed.venus
        sim = testbed.sim

        def overwrite():
            yield from venus.write_file(
                MOUNT + "/work/a.txt",
                SyntheticContent(4_000, tag=("idem", 3)))

        sim.run(sim.process(overwrite()))
        fresh = [r for r in venus.cml
                 if r.op.value == "store" and r.fid == store_a.fid
                 and r.seqno != store_a.seqno]
        assert fresh
        replay = self._reintegrate(testbed, [store_a] + fresh)
        assert replay["status"] == "ok", replay


class TestFaultsCli:

    def test_smoke_command_prints_timeline_and_summary(self, capsys):
        assert main(["faults", "--scenario", "smoke"]) == 0
        printed = capsys.readouterr().out
        assert "6 action(s) injected" in printed
        assert "client_crash" in printed
        assert "Fault injection" in printed
        assert "Observability summary" in printed

    def test_unknown_fault_scenario_lists_the_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--scenario", "nope"])
        message = str(excinfo.value)
        assert "nope" in message
        assert "smoke" in message
        assert "client-crash" in message
        assert "server-crash" in message

    def test_unknown_obs_scenario_lists_the_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["obs", "--scenario", "nope"])
        message = str(excinfo.value)
        assert "nope" in message
        assert "trickle" in message
