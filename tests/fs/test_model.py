"""FIDs, contents, vnodes, volumes, and the namespace."""

import pytest

from repro.fs import (
    ByteContent,
    Content,
    Fid,
    ObjectType,
    SyntheticContent,
    Vnode,
    Volume,
    VolumeRegistry,
    split_path,
)


# ---------------------------------------------------------------- fids

def test_fid_identity_and_ordering():
    a = Fid(1, 2, 3)
    assert a == Fid(1, 2, 3)
    assert a != Fid(1, 2, 4)
    assert Fid(1, 1, 1) < Fid(1, 2, 0)
    assert len({Fid(1, 2, 3), Fid(1, 2, 3)}) == 1


def test_fid_str():
    assert str(Fid(255, 16, 1)) == "ff.10.1"


# ------------------------------------------------------------- content

def test_byte_content_roundtrip():
    content = Content.of(b"hello")
    assert isinstance(content, ByteContent)
    assert content.size == 5
    assert content == Content.of(b"hello")
    assert content != Content.of(b"world")


def test_str_coerces_to_bytes():
    assert Content.of("abc").size == 3


def test_int_coerces_to_synthetic():
    content = Content.of(1_000_000)
    assert isinstance(content, SyntheticContent)
    assert content.size == 1_000_000


def test_synthetic_contents_distinct_by_default():
    assert SyntheticContent(10) != SyntheticContent(10)


def test_synthetic_contents_equal_with_same_tag():
    assert SyntheticContent(10, tag="x") == SyntheticContent(10, tag="x")
    assert SyntheticContent(10, tag="x") != SyntheticContent(11, tag="x")


def test_content_of_rejects_other_types():
    with pytest.raises(TypeError):
        Content.of(3.14)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        SyntheticContent(-1)


# -------------------------------------------------------------- vnodes

def test_file_vnode_length_tracks_content():
    vnode = Vnode(Fid(1, 1, 1), ObjectType.FILE,
                  content=Content.of(b"12345"))
    assert vnode.length == 5
    assert vnode.is_file() and not vnode.is_dir()


def test_directory_lookup():
    directory = Vnode(Fid(1, 1, 1), ObjectType.DIRECTORY)
    child = Fid(1, 2, 2)
    directory.children["kid"] = child
    assert directory.lookup("kid") == child
    assert directory.lookup("ghost") is None


def test_lookup_on_file_raises():
    vnode = Vnode(Fid(1, 1, 1), ObjectType.FILE)
    with pytest.raises(NotADirectoryError):
        vnode.lookup("x")


def test_status_block():
    vnode = Vnode(Fid(1, 1, 1), ObjectType.FILE, content=Content.of(b"xy"))
    status = vnode.status()
    assert status.fid == vnode.fid
    assert status.length == 2
    assert status.version == 1
    assert status.wire_size == 100   # "about 100 bytes long"


def test_clone_is_independent():
    directory = Vnode(Fid(1, 1, 1), ObjectType.DIRECTORY)
    directory.children["a"] = Fid(1, 2, 2)
    twin = directory.clone()
    twin.children["b"] = Fid(1, 3, 3)
    assert "b" not in directory.children
    assert twin.version == directory.version


# ------------------------------------------------------------- volumes

def test_volume_has_root_directory():
    volume = Volume(7, "u.alice")
    assert volume.root.is_dir()
    assert volume.get(volume.root_fid) is volume.root
    assert volume.stamp == 1


def test_bump_increments_object_and_volume_stamps():
    volume = Volume(7, "u.alice")
    vnode = Vnode(volume.alloc_fid(), ObjectType.FILE)
    volume.add(vnode)
    before = (vnode.version, volume.stamp)
    volume.bump(vnode, mtime=9.0)
    assert vnode.version == before[0] + 1
    assert volume.stamp == before[1] + 1
    assert vnode.mtime == 9.0


def test_alloc_fid_unique():
    volume = Volume(7, "v")
    fids = {volume.alloc_fid() for _ in range(100)}
    assert len(fids) == 100
    assert all(fid.volume == 7 for fid in fids)


def test_add_foreign_fid_rejected():
    volume = Volume(7, "v")
    with pytest.raises(ValueError):
        volume.add(Vnode(Fid(8, 1, 1), ObjectType.FILE))


def test_require_raises_for_missing():
    volume = Volume(7, "v")
    with pytest.raises(KeyError):
        volume.require(Fid(7, 99, 99))


# ----------------------------------------------------------- namespace

def test_split_path_normalizes():
    assert split_path("/coda//usr/alice/") == ["coda", "usr", "alice"]
    assert split_path("") == []


def test_registry_longest_prefix_wins():
    registry = VolumeRegistry()
    outer = Volume(1, "outer")
    inner = Volume(2, "inner")
    registry.mount("/coda", outer)
    registry.mount("/coda/usr/alice", inner)
    volume, rest = registry.resolve_prefix("/coda/usr/alice/doc.txt")
    assert volume is inner and rest == ["doc.txt"]
    volume, rest = registry.resolve_prefix("/coda/misc/x")
    assert volume is outer and rest == ["misc", "x"]


def test_registry_no_mount_raises():
    registry = VolumeRegistry()
    with pytest.raises(FileNotFoundError):
        registry.resolve_prefix("/elsewhere")


def test_registry_duplicate_mount_rejected():
    registry = VolumeRegistry()
    registry.mount("/coda", Volume(1, "v"))
    with pytest.raises(ValueError):
        registry.mount("/coda", Volume(2, "w"))


def test_registry_by_id_and_mount_of():
    registry = VolumeRegistry()
    volume = Volume(5, "v")
    registry.mount("/coda/v", volume)
    assert registry.by_id(5) is volume
    assert registry.mount_of(volume) == ("coda", "v")
    with pytest.raises(KeyError):
        registry.by_id(6)
