"""End-to-end scenarios across clients, networks, and states."""

import pytest

from repro.bench.common import populate_volume, warm_cache
from repro.fs import Content
from repro.net import ETHERNET, MODEM, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.sim import RandomStreams, Simulator
from repro.venus import Venus, VenusConfig, VenusState

M = "/coda/project/shared"


def two_client_world():
    sim = Simulator()
    streams = RandomStreams(0)
    net = Network(sim, rng=streams.stream("net"))
    server = CodaServer(sim, net, "server", SERVER_1995)
    tree = {
        M + "/src": ("dir", 0),
        M + "/src/main.c": ("file", 5_000),
        M + "/src/util.c": ("file", 8_000),
    }
    volume = populate_volume(server, M, tree)
    clients = {}
    links = {}
    for name in ("desktop", "laptop"):
        links[name] = net.add_link(name, "server", profile=ETHERNET)
        venus = Venus(sim, net, name, "server", LAPTOP_1995,
                      config=VenusConfig())
        warm_cache(venus, server, volume)
        clients[name] = venus
    return sim, server, volume, clients, links


def run(sim, generator):
    return sim.run(sim.process(generator))


def test_update_propagates_between_clients():
    sim, server, volume, clients, links = two_client_world()
    desktop, laptop = clients["desktop"], clients["laptop"]

    def scenario():
        yield from desktop.connect()
        yield from laptop.connect()
        yield from desktop.write_file(M + "/src/main.c", b"desktop v2")
        # The laptop's callback break arrives; its next read refetches.
        yield sim.timeout(5.0)
        content = yield from laptop.read_file(M + "/src/main.c")
        return content

    content = run(sim, scenario())
    assert content == Content.of(b"desktop v2")


def test_volume_callback_break_on_cross_client_update():
    sim, server, volume, clients, links = two_client_world()
    desktop, laptop = clients["desktop"], clients["laptop"]

    def scenario():
        yield from desktop.connect()
        yield from laptop.connect()
        yield from laptop.hoard_walk()      # laptop caches a stamp
        info = laptop.cache.volume_info(volume.volid)
        assert info.callback
        yield from desktop.write_file(M + "/src/new.c", b"x")
        yield sim.timeout(5.0)
        return laptop.cache.volume_info(volume.volid)

    info = run(sim, scenario())
    assert not info.callback
    assert info.stamp is None


def test_disconnected_edits_conflict_with_concurrent_update():
    sim, server, volume, clients, links = two_client_world()
    desktop, laptop = clients["desktop"], clients["laptop"]

    def scenario():
        yield from desktop.connect()
        yield from laptop.connect()
        # The laptop leaves, edits offline; the desktop edits the same
        # file meanwhile.
        links["laptop"].set_up(False)
        laptop.handle_disconnection()
        yield from laptop.write_file(M + "/src/main.c", b"laptop edit")
        yield from desktop.write_file(M + "/src/main.c", b"desktop edit")
        links["laptop"].set_up(True)
        yield from laptop.connect()
        yield sim.timeout(120.0)

    run(sim, scenario())
    assert len(laptop.conflicts) == 1
    # The desktop's edit won; the laptop's conflicting edit is flagged,
    # not silently applied.
    fid = volume.root.lookup("src")
    main = volume.require(volume.require(fid).lookup("main.c"))
    assert main.content == Content.of(b"desktop edit")


def test_disconnected_edits_to_different_files_merge_cleanly():
    sim, server, volume, clients, links = two_client_world()
    desktop, laptop = clients["desktop"], clients["laptop"]

    def scenario():
        yield from desktop.connect()
        yield from laptop.connect()
        links["laptop"].set_up(False)
        laptop.handle_disconnection()
        yield from laptop.write_file(M + "/src/laptop.txt", b"from road")
        yield from desktop.write_file(M + "/src/desktop.txt", b"at desk")
        links["laptop"].set_up(True)
        yield from laptop.connect()
        yield sim.timeout(120.0)

    run(sim, scenario())
    assert len(laptop.conflicts) == 0
    src = volume.require(volume.root.lookup("src"))
    assert src.lookup("laptop.txt") is not None
    assert src.lookup("desktop.txt") is not None


def test_commute_cycle_strong_weak_strong():
    """Office Ethernet -> disconnect -> home modem -> office again."""
    sim = Simulator()
    net = Network(sim)
    server = CodaServer(sim, net, "server", SERVER_1995)
    tree = {M + "/src": ("dir", 0), M + "/src/main.c": ("file", 5_000)}
    volume = populate_volume(server, M, tree)
    link = net.add_link("laptop", "server", profile=ETHERNET)
    venus = Venus(sim, net, "laptop", "server", LAPTOP_1995,
                  config=VenusConfig())
    warm_cache(venus, server, volume)
    states = []
    venus.state.on_transition(lambda old, new: states.append(new.value))

    def scenario():
        yield from venus.connect()
        assert venus.state.state is VenusState.HOARDING
        yield from venus.hoard_walk()
        # Commute: cut the link.
        link.set_up(False)
        venus.handle_disconnection()
        yield from venus.write_file(M + "/src/main.c", b"on the train")
        # Home: a modem connection.
        link.set_bandwidth(MODEM.bandwidth_bps)
        link.forward.latency = link.backward.latency = MODEM.latency
        link.forward.bits_per_byte = link.backward.bits_per_byte = 10
        link.set_up(True)
        yield from venus.connect()
        assert venus.state.state is VenusState.WRITE_DISCONNECTED
        # Updates trickle home overnight.
        yield sim.timeout(700.0)
        assert len(venus.cml) == 0
        # Morning: back on Ethernet.
        link.set_bandwidth(ETHERNET.bandwidth_bps)
        link.forward.latency = link.backward.latency = ETHERNET.latency
        link.forward.bits_per_byte = link.backward.bits_per_byte = 8
        yield sim.timeout(450.0)   # probe daemon reclassifies

    sim.run(sim.process(scenario()))
    assert venus.state.state is VenusState.HOARDING
    # Every connection passes through write disconnected (Figure 2):
    # the initial strong connect drains through WD to hoarding, and so
    # does the morning's return to Ethernet.
    assert states == ["write_disconnected", "hoarding",
                      "emulating", "write_disconnected", "hoarding"]
    main = volume.require(volume.require(
        volume.root.lookup("src")).lookup("main.c"))
    assert main.content == Content.of(b"on the train")


def test_no_keepalive_flood_when_idle():
    """Shared liveness: one idle connected client sends only a trickle
    of keepalive traffic."""
    sim = Simulator()
    net = Network(sim)
    server = CodaServer(sim, net, "server", SERVER_1995)
    volume = populate_volume(server, M, {M + "/d": ("dir", 0)})
    link = net.add_link("laptop", "server", profile=MODEM)
    venus = Venus(sim, net, "laptop", "server", LAPTOP_1995,
                  config=VenusConfig(keepalive_interval=60.0))
    warm_cache(venus, server, volume)

    def scenario():
        yield from venus.connect()

    sim.run(sim.process(scenario()))
    start_packets = venus.endpoint.packets_out
    sim.run(until=sim.now + 3600.0)
    idle_packets = venus.endpoint.packets_out - start_packets
    # One hour idle at one keepalive per minute, plus hoard walks:
    # comfortably under two packets a minute.
    assert idle_packets < 120
    # And the server is still considered alive.
    assert venus.endpoint.liveness.is_reachable("server")


def test_write_disconnected_user_forced_full_reintegration():
    """Section 4.3.2: 'A user can force a full reintegration at any
    time' — e.g. before hanging up a long distance call."""
    sim = Simulator()
    net = Network(sim)
    server = CodaServer(sim, net, "server", SERVER_1995)
    tree = {M + "/d": ("dir", 0)}
    volume = populate_volume(server, M, tree)
    net.add_link("laptop", "server", profile=MODEM)
    venus = Venus(sim, net, "laptop", "server", LAPTOP_1995,
                  config=VenusConfig(aging_window=3600.0))
    warm_cache(venus, server, volume)

    def scenario():
        yield from venus.connect()
        yield from venus.write_file(M + "/d/report.txt", b"r" * 20_000)
        before = sim.now
        drained = yield from venus.sync()
        return drained, sim.now - before

    drained, elapsed = sim.run(sim.process(scenario()))
    assert drained
    assert len(venus.cml) == 0
    # ~20 KB at ~7 Kb/s goodput: tens of seconds, not an hour.
    assert elapsed < 120
