"""End-to-end determinism: the foundation of every benchmark claim."""

from repro.bench.replay import run_replay_cell
from repro.net import MODEM
from repro.trace import segment_by_name


def test_identical_replay_cells_are_bit_identical():
    segment = segment_by_name("purcell")
    a = run_replay_cell(segment, MODEM, 600.0, 1.0)
    b = run_replay_cell(segment, MODEM, 600.0, 1.0)
    assert a.elapsed == b.elapsed
    assert a.begin_cml_kb == b.begin_cml_kb
    assert a.end_cml_kb == b.end_cml_kb
    assert a.shipped_kb == b.shipped_kb
    assert a.optimized_kb == b.optimized_kb


def test_fleet_study_deterministic():
    from repro.bench.fleet import FleetConfig, run_fleet_study
    config = FleetConfig(desktops=2, laptops=2, days=1.0)
    a_desk, a_lap = run_fleet_study(config)
    b_desk, b_lap = run_fleet_study(config)
    assert [(r.name, r.attempts, r.missing_pct, r.success_pct)
            for r in a_desk + a_lap] \
        == [(r.name, r.attempts, r.missing_pct, r.success_pct)
            for r in b_desk + b_lap]
