"""The ``--seed`` flag on ``repro obs`` / ``repro faults``.

The contract has two halves: an explicit seed must route through
``derive_rng`` (so CLI universes can never collide with another
subsystem's streams), and *no* seed must keep the canonical streams
the golden fixtures pin — ``--seed`` may never silently shift the
fixtures.
"""

from repro.cli import main
from repro.faults.scenarios import run_fault_scenario
from repro.obs.scenarios import fingerprint, run_scenario, scenario_seed
from repro.sim.rand import derive_rng


def test_scenario_seed_routes_through_derive_rng():
    assert scenario_seed("obs", "trickle", 7) == \
        derive_rng("obs", "trickle", 7).getrandbits(63)
    assert scenario_seed("faults", "smoke", 7) == \
        derive_rng("faults", "smoke", 7).getrandbits(63)
    # Same seed, different kinds/names: disjoint universes.
    assert len({scenario_seed(kind, name, 7)
                for kind, name in (("obs", "trickle"), ("obs", "outage"),
                                   ("faults", "trickle"))}) == 3


def test_no_seed_keeps_the_canonical_streams():
    assert scenario_seed("obs", "trickle", None) == 0
    default = run_scenario("trickle")
    explicit_none = run_scenario("trickle", seed=None)
    assert fingerprint(default) == fingerprint(explicit_none)
    assert default.streams.seed == 0


def test_explicit_seed_reaches_the_testbed_streams():
    testbed = run_scenario("trickle", seed=11)
    assert testbed.streams.seed == \
        derive_rng("obs", "trickle", 11).getrandbits(63)
    faulted = run_fault_scenario("smoke", seed=11)
    assert faulted.streams.seed == \
        derive_rng("faults", "smoke", 11).getrandbits(63)


def test_seeded_runs_are_reproducible():
    assert fingerprint(run_scenario("outage", seed=5)) == \
        fingerprint(run_scenario("outage", seed=5))


def test_obs_cli_seed(capsys):
    assert main(["obs", "--scenario", "trickle", "--seed", "3"]) == 0
    seeded = capsys.readouterr().out
    assert main(["obs", "--scenario", "trickle", "--seed", "3"]) == 0
    again = capsys.readouterr().out
    assert seeded == again
    assert "timeline" in seeded or "events" in seeded


def test_faults_cli_seed(capsys):
    assert main(["faults", "--scenario", "smoke", "--seed", "3",
                 "--fingerprint"]) == 0
    seeded = capsys.readouterr().out
    assert "fault scenario 'smoke'" in seeded
    assert main(["faults", "--scenario", "smoke", "--seed", "3",
                 "--fingerprint"]) == 0
    assert capsys.readouterr().out == seeded
