"""The spec compiler: ported scenarios stay equivalent, knobs work.

The golden fixtures pin the compiled timelines across checkouts; these
tests pin the *wiring* — legacy entry points and the compiler produce
the same run, seeds fold the way each subsystem always folded them,
and the fault-plan/schedule-log escape hatches still function.
"""

import pytest

from repro.obs import Observatory
from repro.obs.scenarios import fingerprint, run_scenario
from repro.spec.catalog import get
from repro.spec.compile import fleet_config, run_spec, stream_sweep
from repro.spec.seeds import master_seed


def test_legacy_obs_wrapper_equals_compiled_run():
    legacy = fingerprint(run_scenario("trickle"))
    compiled = fingerprint(run_spec(get("trickle")).testbed)
    assert compiled == legacy


def test_legacy_faults_wrapper_equals_compiled_run():
    from repro.faults.scenarios import fault_fingerprint, run_fault_scenario
    legacy = fault_fingerprint(run_fault_scenario("smoke"))
    compiled = fault_fingerprint(run_spec(get("smoke")).testbed)
    assert compiled == legacy


def test_script_summary_shape():
    result = run_spec(get("outage"))
    for key in ("end_time", "cml_reintegrated", "bytes_shipped",
                "operations", "validation_attempts"):
        assert key in result.summary
    assert result.summary["end_time"] > 0


def test_seed_selects_a_different_universe():
    """A scripted testbed is seed-insensitive by design (the workload
    is fully deterministic); the fleet families actually consume the
    derived streams, so their reports must move with the seed."""
    base = run_spec(get("fleet-golden"), days=0.125)
    other = run_spec(get("fleet-golden"), days=0.125, seed=1)
    assert base.seed != other.seed
    base_rows = [(r.name, r.attempts) for rs in base.reports for r in rs]
    other_rows = [(r.name, r.attempts) for rs in other.reports for r in rs]
    assert base_rows != other_rows


def test_run_spec_seed_folds_through_seed_kind():
    result = run_spec(get("trickle"))
    assert result.seed == master_seed("obs", "trickle", None) == 0
    result = run_spec(get("fleet-golden"), days=0.125)
    assert result.seed == master_seed("perf", "fleet-golden", None)


def test_plan_override_replaces_spec_faults():
    from repro.faults.plan import FaultPlan
    result = run_spec(get("smoke"), plan=FaultPlan([]))
    assert result.summary["faults_injected"] == 0
    assert run_spec(get("smoke")).summary["faults_injected"] > 0


def test_schedule_log_probe_captures_dispatch_keys():
    log = []
    run_spec(get("trickle"), schedule_log=log)
    assert log
    assert all(len(entry) == 3 for entry in log)
    times = [entry[0] for entry in log]
    assert times == sorted(times)


def test_check_invariants_attaches_a_checker():
    observatory = Observatory()
    result = run_spec(get("trickle"), observatory=observatory,
                      check_invariants=True)
    assert result.checkers
    for checker in result.checkers:
        assert checker.check_all().violations == []


def test_fleet_config_figure9_is_the_classic_fleetconfig():
    from repro.bench.fleet import FleetConfig
    config = fleet_config(get("fleet-8"), master=42)
    assert isinstance(config, FleetConfig)
    assert (config.desktops, config.laptops) == (5, 3)
    assert config.days == 2.0
    assert config.seed == 42
    assert fleet_config(get("fleet-8"), master=42, days=0.25).days == 0.25


def test_fleet_config_commuter_carries_params():
    from repro.spec.families import CommuterConfig
    config = fleet_config(get("commuter"), master=7, name_prefix="s00-")
    assert isinstance(config, CommuterConfig)
    assert (config.desktops, config.laptops) == (16, 12)
    assert config.work_start == 9.0
    assert config.name_prefix == "s00-"


def test_fleet_run_spec_reports_population():
    result = run_spec(get("fleet-golden"), days=0.125)
    assert result.summary["clients"] == 3
    assert result.reports is not None


def test_invalid_spec_is_rejected_before_running():
    from repro.spec.model import ScenarioSpec, SpecError
    bad = ScenarioSpec(name="bad", kind="testbed", family="script")
    with pytest.raises(SpecError):
        run_spec(bad)


def test_stream_sweep_passes_on_an_instrumented_run():
    observatory = Observatory()
    run_spec(get("trickle"), observatory=observatory)
    assert stream_sweep(observatory) == []


def test_stream_sweep_flags_bad_streams():
    class Event:
        def __init__(self, time, kind):
            self.row = {"time": time, "kind": kind}

        def to_row(self):
            return self.row

    class Fake:
        class trace:
            events = [Event(2.0, "venus_state"), Event(1.0, "not-a-kind")]

    violations = stream_sweep(Fake)
    assert any("monotone-time" in v for v in violations)
    assert any("taxonomy" in v for v in violations)
