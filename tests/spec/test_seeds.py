"""Seed derivation: one sanctioned helper, legacy strings byte-identical.

The three hand-written ``scenario_seed`` helpers (obs/faults/perf)
were deduplicated into :mod:`repro.spec.seeds`.  These tests pin the
seed *strings* — literal values included — so no refactor can silently
move a scenario into a different stream universe (which would flip
every golden digest).
"""

import pytest

from repro.sim.rand import derive_rng
from repro.spec.seeds import SEED_KINDS, master_seed, scenario_seed

#: Literal derivations pinned at the time of the dedup; if these move,
#: every golden digest moves with them.
PINNED = {
    ("obs", "trickle", 0): 1908052322877670071,
    ("perf", "fleet-8", 0): 3144153151,
    ("spec", "doc-archive", 0): 4789410862432404000,
}


def test_kinds_are_closed():
    assert SEED_KINDS == ("obs", "faults", "perf", "spec")


@pytest.mark.parametrize("kind", ["obs", "faults"])
def test_none_seed_is_master_zero(kind):
    """The obs/faults CLIs treat None as 'the canonical streams'."""
    assert scenario_seed(kind, "anything", None) == 0
    assert master_seed(kind, "anything", None) == 0


@pytest.mark.parametrize("kind", SEED_KINDS)
def test_derivation_goes_through_the_sanctioned_path(kind):
    expected = derive_rng(kind, "demo", 7).getrandbits(63)
    assert scenario_seed(kind, "demo", 7) == expected


def test_pinned_literals():
    assert scenario_seed("obs", "trickle", 0) == PINNED[("obs", "trickle", 0)]
    assert scenario_seed("perf", "fleet-8", 0, bits=32) \
        == PINNED[("perf", "fleet-8", 0)]
    assert scenario_seed("spec", "doc-archive", 0) \
        == PINNED[("spec", "doc-archive", 0)]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown seed kind"):
        scenario_seed("bench", "x", 0)
    with pytest.raises(ValueError, match="unknown seed kind"):
        master_seed("bench", "x", 0)


def test_perf_master_always_derives_32_bit():
    """perf historically derived even for the CLI default seed 0."""
    expected = derive_rng("perf", "fleet-8", 0).getrandbits(32)
    assert master_seed("perf", "fleet-8", None) == expected
    assert master_seed("perf", "fleet-8", 0) == expected
    assert master_seed("perf", "fleet-8", 0) < 2 ** 32


def test_spec_master_always_derives_63_bit():
    expected = derive_rng("spec", "commuter", 0).getrandbits(63)
    assert master_seed("spec", "commuter", None) == expected
    assert master_seed("spec", "commuter", 0) == expected


def test_legacy_obs_helper_is_the_shared_one():
    from repro.obs.scenarios import scenario_seed as obs_seed
    assert obs_seed is scenario_seed


def test_legacy_faults_helper_is_the_shared_one():
    from repro.faults.scenarios import scenario_seed as faults_seed
    assert faults_seed is scenario_seed


def test_legacy_perf_helper_matches_the_shared_one():
    from repro.perf.scenarios import scenario_seed as perf_seed
    assert perf_seed("fleet-32", 5) \
        == scenario_seed("perf", "fleet-32", 5, bits=32)
    assert perf_seed("fleet-32") \
        == scenario_seed("perf", "fleet-32", 0, bits=32)


def test_kinds_never_collide():
    """The kind prefix separates universes for the same (name, seed)."""
    seeds = {scenario_seed(kind, "same-name", 3) for kind in SEED_KINDS}
    assert len(seeds) == len(SEED_KINDS)
