"""The scenario model: strict validation and lossless round trips.

Every shipped spec must survive ``spec -> dict -> JSON -> spec`` with
equality, and hypothesis-generated corruptions of valid documents must
all be rejected with a :class:`~repro.spec.model.SpecError` — never
accepted, never crash with an unrelated exception.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.spec.catalog import CATALOG, get, shipped
from repro.spec.model import (
    FAMILY_PARAMS,
    OPS,
    OpStep,
    ScenarioSpec,
    SpecError,
)

NAMES = sorted(CATALOG)


# ---------------------------------------------------------------------------
# Round trips


@pytest.mark.parametrize("name", NAMES)
def test_dict_round_trip(name):
    spec = get(name)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("name", NAMES)
def test_json_round_trip(name):
    spec = get(name)
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert hash(again) == hash(spec)


@pytest.mark.parametrize("name", NAMES)
def test_to_dict_is_plain_json(name):
    """The document form must be pure JSON types, canonically dumpable."""
    text = json.dumps(get(name).to_dict(), sort_keys=True)
    assert json.loads(text) == get(name).to_dict()


@pytest.mark.parametrize("name", NAMES)
def test_shipped_specs_validate_clean(name):
    assert get(name).validate() == []


def test_catalog_is_presentation_ordered_and_closed():
    assert [spec.name for spec in shipped()] == list(CATALOG)
    with pytest.raises(ValueError, match="unknown spec"):
        get("no-such-spec")


def test_with_params_merges():
    spec = get("doc-archive")
    tuned = spec.with_params(reads=5)
    assert tuned.params_dict()["reads"] == 5
    assert spec.params_dict()["reads"] == 60
    assert tuned.params_dict()["containers"] \
        == spec.params_dict()["containers"]


def test_spec_error_carries_every_problem():
    spec = ScenarioSpec(name="Bad Name", kind="testbed", family="script")
    errors = spec.validate()
    assert len(errors) >= 2          # bad name AND empty script
    with pytest.raises(SpecError) as excinfo:
        spec.check()
    assert excinfo.value.errors == tuple(errors)


# ---------------------------------------------------------------------------
# Hypothesis: corrupted documents are rejected, not absorbed


def _corrupt_unknown_top_key(doc, token):
    doc["x_" + token] = 1


def _corrupt_name(doc, token):
    doc["name"] = "Bad Name " + token


def _corrupt_kind(doc, token):
    doc["kind"] = "kind-" + token


def _corrupt_family(doc, token):
    doc["family"] = "family-" + token


def _corrupt_seed_kind(doc, token):
    doc["seed_kind"] = "seeds-" + token


def _corrupt_shards_on_testbed(doc, token):
    doc["kind"] = "testbed"
    doc["shards"] = 4


def _corrupt_shards_too_small(doc, token):
    if doc["kind"] == "fleet":
        doc["shards"] = 1
    else:
        doc["shards"] = 0


def _corrupt_profile(doc, token):
    doc.setdefault("network", {})["profile"] = "Carrier-" + token


def _corrupt_loss_rate(doc, token):
    doc.setdefault("network", {"profile": "Modem"})["loss_rate"] = 1.5


def _corrupt_venus_field(doc, token):
    doc["venus"] = {"no_such_knob_" + token: 1.0}
    doc["kind"] = "testbed"
    if doc.get("family") not in ("script", "conflict-storm",
                                 "doc-archive"):
        doc["family"] = "conflict-storm"
    doc.pop("shards", None)
    doc.pop("duration", None)
    doc.pop("clients", None)
    doc.pop("workload", None)
    doc.pop("params", None)


def _corrupt_script_op(doc, token):
    doc["workload"] = {"script": [{"op": "op-" + token}]}


def _corrupt_op_missing_required(doc, token):
    doc["workload"] = {"script": [{"op": "write", "path": "/coda/x"}]}


def _corrupt_negative_sleep(doc, token):
    doc["workload"] = {"script": [{"op": "sleep", "seconds": -1.0}]}


def _corrupt_param(doc, token):
    doc["params"] = {"param_" + token: 1}


def _corrupt_mix_on_testbed(doc, token):
    doc["kind"] = "testbed"
    doc["workload"] = {"mix": {"reads_per_day": 10.0}}


CORRUPTIONS = [
    _corrupt_unknown_top_key,
    _corrupt_name,
    _corrupt_kind,
    _corrupt_family,
    _corrupt_seed_kind,
    _corrupt_shards_on_testbed,
    _corrupt_shards_too_small,
    _corrupt_profile,
    _corrupt_loss_rate,
    _corrupt_venus_field,
    _corrupt_script_op,
    _corrupt_op_missing_required,
    _corrupt_negative_sleep,
    _corrupt_param,
    _corrupt_mix_on_testbed,
]


@settings(max_examples=120, deadline=None)
@given(name=st.sampled_from(NAMES),
       corrupt=st.sampled_from(CORRUPTIONS),
       token=st.text(alphabet="abcdefghij", min_size=1, max_size=8))
def test_corrupted_documents_are_rejected(name, corrupt, token):
    doc = get(name).to_dict()
    corrupt(doc, token)
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict(doc)


@settings(max_examples=60, deadline=None)
@given(junk=st.one_of(
    st.none(), st.integers(), st.text(max_size=8),
    st.lists(st.integers(), max_size=3)))
def test_non_mapping_documents_are_rejected(junk):
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict(junk)


def test_invalid_json_is_a_spec_error():
    with pytest.raises(SpecError, match="not valid JSON"):
        ScenarioSpec.from_json("{nope")


@settings(max_examples=60, deadline=None)
@given(op=st.sampled_from(sorted(OPS)),
       extra=st.sampled_from(["size", "seconds", "priority", "path"]))
def test_ops_reject_fields_outside_their_signature(op, extra):
    required, optional = OPS[op]
    if extra in required or extra in optional:
        return
    values = {"size": 10, "seconds": 1.0, "priority": 5, "path": "/x"}
    fields = {name: values[name] for name in required}
    fields[extra] = values[extra]
    step = OpStep(op=op, **fields)
    assert any("does not take" in error for error in step.validate("op"))


def test_family_params_cover_every_family():
    from repro.spec.model import FLEET_FAMILIES, TESTBED_FAMILIES
    assert set(FAMILY_PARAMS) == set(TESTBED_FAMILIES) | set(FLEET_FAMILIES)
