"""The three measured workload families: determinism and semantics.

Each family must be byte-identical across two runs (the golden
fixtures additionally pin it across checkouts), pass the invariant
sweep, and actually exhibit the mechanism it was built to measure —
conflicts detected and repaired, patience-gated misses, commutes with
reintegration on reconnect.
"""

import pytest

from repro.analysis.golden import timeline_digest
from repro.obs import Observatory
from repro.spec.catalog import get
from repro.spec.compile import run_spec, stream_sweep
from repro.spec.golden import (
    commuter_golden,
    conflict_storm_golden,
    doc_archive_golden,
)

GOLDEN_SPECS = (
    "mod:repro.spec.golden:commuter_golden",
    "mod:repro.spec.golden:conflict_storm_golden",
    "mod:repro.spec.golden:doc_archive_golden",
)


@pytest.mark.parametrize("spec", GOLDEN_SPECS)
def test_two_runs_are_byte_identical(spec):
    assert timeline_digest(spec) == timeline_digest(spec)


def test_conflict_storm_detects_and_repairs_conflicts():
    summary = conflict_storm_golden()
    assert summary["conflicts_detected"] >= 1
    assert summary["conflicts_pending"] == 0
    assert summary["conflicts_resolved_mine"] \
        + summary["conflicts_resolved_theirs"] \
        == summary["conflicts_detected"]
    assert summary["reintegration_duplicates"] == 0
    assert summary["cml_reintegrated"] > 0


def test_doc_archive_exercises_the_miss_taxonomy():
    """The full shipped spec: both transparent and denied misses."""
    summary = run_spec(get("doc-archive")).summary
    assert summary["misses_transparent"] > 0
    assert summary["misses_denied"] > 0
    assert summary["miss_log_records"] > 0
    assert summary["hoard_walks"] >= 1
    assert summary["fetches"] > 0


def test_doc_archive_golden_reaches_the_weak_phase():
    summary = doc_archive_golden()
    assert summary["misses_transparent"] > 0
    assert summary["cml_reintegrated"] > 0


def test_commuter_laptops_commute_and_reintegrate():
    summary = commuter_golden()
    assert summary["clients"] == 4
    assert summary["commutes"] == 4          # 2 laptops x 2 edges
    assert summary["disconnected_seconds"] > 0
    assert summary["cml_reintegrated"] > 0


@pytest.mark.parametrize("name, params", [
    ("conflict-storm", {"writers": 3, "rounds": 1}),
    ("doc-archive", {"containers": 3, "reads": 12,
                     "hoarded_containers": 1}),
])
def test_testbed_families_pass_the_invariant_sweep(name, params):
    observatory = Observatory()
    result = run_spec(get(name).with_params(**params),
                      observatory=observatory, check_invariants=True)
    assert result.checkers
    for checker in result.checkers:
        assert checker.check_all().violations == []
    assert stream_sweep(observatory) == []


def test_commuter_passes_the_invariant_sweep():
    from dataclasses import replace
    observatory = Observatory()
    spec = get("commuter")
    spec = replace(spec, clients=replace(spec.clients, count=4,
                                         desktops=2, laptops=2))
    result = run_spec(spec, observatory=observatory, days=0.5,
                      check_invariants=True)
    assert result.checkers
    for checker in result.checkers:
        assert checker.check_all().violations == []
    assert stream_sweep(observatory) == []


def test_conflict_storm_survives_the_divergence_detector():
    """One family through the full perturbed-subprocess probe; the
    other two are covered by the cheaper two-run digest test above and
    by CI's check-determinism sweep."""
    from repro.analysis.divergence import check_determinism
    report = check_determinism(
        "mod:repro.spec.golden:conflict_storm_golden")
    assert report.identical, report.format()


def test_fleetd_runs_commuter_shards():
    from repro.fleetd.executor import run_shard
    from repro.fleetd.plan import plan_shards
    shards = plan_shards("commuter", seed=0, days=0.5)
    assert len(shards) == 4
    assert all(shard.family == "commuter" for shard in shards)
    result = run_shard(shards[0])
    assert result.clients == shards[0].clients
    assert result.digest
    assert result.stream_stats["monotone"]
