"""``repro spec``: list/show/validate/run, exit codes, error listings."""

import json

import pytest

from repro.spec import catalog
from repro.spec.cli import _fast_variant, main
from repro.spec.model import ScenarioSpec


def test_list_names_every_shipped_spec(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in catalog.CATALOG:
        assert name in out


def test_show_emits_the_canonical_document(capsys):
    assert main(["show", "trickle"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out) == catalog.get("trickle").to_dict()


def test_show_unknown_name_lists_choices(capsys):
    assert main(["show", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown spec" in err
    assert "trickle" in err and "commuter" in err


def test_validate_all_passes_on_the_shipped_catalogue(capsys):
    assert main(["validate", "--all"]) == 0
    out = capsys.readouterr().out
    assert "%d spec(s) valid" % len(catalog.CATALOG) in out


def test_validate_named_specs(capsys):
    assert main(["validate", "trickle", "commuter"]) == 0
    out = capsys.readouterr().out
    assert "trickle" in out and "commuter" in out


def test_validate_requires_names_or_all(capsys):
    assert main(["validate"]) == 2
    assert "--all" in capsys.readouterr().err


def test_validate_unknown_name_lists_choices(capsys):
    assert main(["validate", "nope"]) == 2
    assert "unknown spec" in capsys.readouterr().err


def test_validate_all_fails_listing_per_spec_errors(capsys, monkeypatch):
    broken = ScenarioSpec(name="Broken Name", kind="testbed",
                          family="script")
    monkeypatch.setitem(catalog.CATALOG, "broken", broken)
    assert main(["validate", "--all"]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out
    assert "name: must match" in out
    assert "workload.script" in out
    assert "1 of %d spec(s) invalid" % len(catalog.CATALOG) in out


def test_run_prints_the_summary(capsys):
    assert main(["run", "outage"]) == 0
    out = capsys.readouterr().out
    assert "cml_reintegrated" in out
    assert "Observability summary" in out


def test_run_unknown_name_lists_choices(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown spec" in capsys.readouterr().err


def test_run_check_invariants_reports_checks(capsys):
    assert main(["run", "trickle", "--check-invariants"]) == 0
    out = capsys.readouterr().out
    assert "invariants:" in out
    assert "0 violation(s)" in out


def test_run_json_writes_the_report(capsys, tmp_path):
    out_path = tmp_path / "spec.json"
    assert main(["run", "trickle", "--json", "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["spec"] == catalog.get("trickle").to_dict()
    assert "cml_reintegrated" in payload["summary"]


def test_run_fleet_spec_with_days_override(capsys):
    assert main(["run", "fleet-golden", "--days", "0.125"]) == 0
    out = capsys.readouterr().out
    assert "clients" in out


def test_fast_variant_scales_fleet_days(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    spec, days = _fast_variant(catalog.get("fleet-golden"), None)
    assert days == catalog.get("fleet-golden").duration / 8.0
    spec, days = _fast_variant(catalog.get("fleet-golden"), 0.5)
    assert days == 0.5           # explicit --days wins


def test_fast_variant_reshapes_the_commuter_fleet(monkeypatch):
    """A days/8 window would miss both commute edges; the commuter's
    fast shape shrinks the fleet and keeps the day long enough to
    cover the morning and evening commutes."""
    monkeypatch.setenv("REPRO_FAST", "1")
    spec, days = _fast_variant(catalog.get("commuter"), None)
    shape = catalog.FAST_FLEET["commuter"]
    assert (spec.clients.desktops, spec.clients.laptops) \
        == (shape["desktops"], shape["laptops"])
    assert days == shape["days"]
    work_end = spec.params_dict()["work_end"]
    assert days * 24.0 > work_end    # the evening commute happens
    spec, days = _fast_variant(catalog.get("commuter"), 0.25)
    assert days == 0.25          # explicit --days wins


def test_fast_variant_applies_family_params(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    spec, days = _fast_variant(catalog.get("conflict-storm"), None)
    assert spec.params_dict()["writers"] \
        == catalog.FAST_PARAMS["conflict-storm"]["writers"]
    assert days is None


def test_fast_variant_is_identity_without_the_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAST", raising=False)
    spec, days = _fast_variant(catalog.get("conflict-storm"), None)
    assert spec == catalog.get("conflict-storm")


def test_repro_cli_delegates_to_spec(capsys):
    from repro.cli import main as repro_main
    with pytest.raises(SystemExit) as excinfo:
        repro_main(["spec", "validate", "--all"])
    assert excinfo.value.code == 0
