"""Golden-schedule regression tests.

Every pinned scenario's obs timeline must hash to exactly the digest
committed in ``timelines.json``.  These tests are the enforcement
point for the repo's optimization contract: performance work is only
admissible when it is schedule-identical, and any schedule change —
intentional or not — fails here first.

After an *intentional* semantic change, regenerate and commit the
fixture::

    python -m repro golden --regen
"""

import os

import pytest

from repro.analysis.golden import (
    GOLDEN_SCENARIOS,
    load_fixture,
    timeline_digest,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "timelines.json")


@pytest.fixture(scope="module")
def fixture():
    return load_fixture(FIXTURE)


def test_fixture_pins_every_golden_scenario(fixture):
    assert sorted(fixture["digests"]) == sorted(GOLDEN_SCENARIOS)


@pytest.mark.parametrize("spec", GOLDEN_SCENARIOS)
def test_timeline_matches_fixture(fixture, spec):
    pinned = fixture["digests"][spec]
    sha, events = timeline_digest(spec)
    assert events == pinned["events"], (
        "%s produced %d events, fixture pins %d — schedule changed; "
        "if intentional: python -m repro golden --regen"
        % (spec, events, pinned["events"]))
    assert sha == pinned["sha256"], (
        "%s timeline digest diverged from the golden fixture — "
        "schedule or payload changed; if intentional: "
        "python -m repro golden --regen" % spec)


def test_digest_is_stable_within_a_run():
    sha_a, events_a = timeline_digest("obs:trickle")
    sha_b, events_b = timeline_digest("obs:trickle")
    assert (sha_a, events_a) == (sha_b, events_b)
