"""Planted-corruption coverage for ``repro ckpt verify``.

Each test clones a known-good checkpoint, damages exactly one thing a
real incident could damage — a truncated timeline, an edited manifest,
a tampered state pickle, a vanished boundary file — and asserts that
verification names the damage.  The good store itself must pass every
structural check *and* a sampled in-process replay.
"""

import json
import os
import shutil

import pytest

from repro.ckpt import CkptOptions, run_checkpointed, verify_checkpoint

OPTIONS = CkptOptions(day_seconds=600.0)


@pytest.fixture(scope="module")
def good_store(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("ckpt-verify") / "good")
    run_checkpointed("fleet-8", days=2, out=root, options=OPTIONS)
    return root


@pytest.fixture
def cloned(good_store, tmp_path):
    clone = str(tmp_path / "clone")
    shutil.copytree(good_store, clone)
    return clone


def failing_names(verdict):
    return [check.name for check in verdict.failures]


def test_good_store_passes_structural_and_replay(good_store):
    verdict = verify_checkpoint(good_store)
    assert verdict.ok, verdict.format()
    names = [check.name for check in verdict.checks]
    assert any(name.startswith("replay") for name in names)
    assert "OK" in verdict.format()


def test_replay_sample_can_be_pinned(good_store):
    verdict = verify_checkpoint(good_store, replay_day=1,
                                replay_shard=1)
    assert verdict.ok, verdict.format()
    assert any("replay s01 day 1" in check.name
               for check in verdict.checks)


def test_missing_manifest_fails_immediately(tmp_path):
    verdict = verify_checkpoint(str(tmp_path / "void"))
    assert not verdict.ok
    assert failing_names(verdict) == ["manifest"]
    assert "CORRUPT" in verdict.format()


def test_truncated_timeline_is_caught(cloned):
    path = os.path.join(cloned, "shards", "s00", "timeline.txt")
    os.truncate(path, os.path.getsize(path) - 40)
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    names = failing_names(verdict)
    assert any(name.startswith("shard 00") for name in names)
    assert any("digest" in name for name in names)


def test_tampered_manifest_digest_is_caught(cloned):
    manifest_path = os.path.join(cloned, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["shards"][0]["digest"] = "0" * 64
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    names = failing_names(verdict)
    assert "shard 00 timeline-digest" in names
    assert "fleet-digest" in names


def test_tampered_state_pickle_is_caught(cloned):
    path = os.path.join(cloned, "shards", "s01", "state-d0002.pkl")
    with open(path, "r+b") as fh:
        fh.seek(100)
        byte = fh.read(1)
        fh.seek(100)
        fh.write(bytes([byte[0] ^ 0xFF]))
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    assert "shard 01 state-files" in failing_names(verdict)


def test_missing_initial_state_is_caught(cloned):
    os.remove(os.path.join(cloned, "shards", "s00", "state-d0000.pkl"))
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    assert "shard 00 state-files" in failing_names(verdict)


def test_missing_boundary_state_is_caught(cloned):
    os.remove(os.path.join(cloned, "shards", "s00", "state-d0001.pkl"))
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    assert "shard 00 state-files" in failing_names(verdict)


def test_dropped_metrics_record_is_caught(cloned):
    path = os.path.join(cloned, "shards", "s00", "metrics.jsonl")
    with open(path) as fh:
        lines = fh.readlines()
    with open(path, "w") as fh:
        fh.writelines(lines[:-1])
    verdict = verify_checkpoint(cloned, replay=False)
    assert not verdict.ok
    assert "shard 00 metrics-records" in failing_names(verdict)


def test_corruption_disables_the_replay_tier(cloned):
    """Replaying against a store that failed structure would report
    phantom mismatches, so verify skips it and says why via the
    structural failures alone."""
    manifest_path = os.path.join(cloned, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["shards"][0]["digest"] = "f" * 64
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    verdict = verify_checkpoint(cloned, replay=True)
    assert not verdict.ok
    assert not any(check.name.startswith("replay")
                   for check in verdict.checks)
