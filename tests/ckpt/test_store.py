"""Unit coverage for the on-disk checkpoint format.

Exercised with synthetic payloads (no simulation): the streamed
timeline digest must equal the row digest the fleetd goldens use, the
per-day slice digests must recover from line counts alone, and the
manifest layer must refuse anything it did not write.
"""

import hashlib

import pytest

from repro.ckpt.store import (
    MANIFEST_SCHEMA,
    CheckpointError,
    CheckpointStore,
    ShardStore,
)


def digest_lines(lines):
    """sha256 over canonical lines — what the runner records per day
    (``digest_rows`` over event rows reduces to exactly this once the
    rows are canonicalized)."""
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


DAY_LINES = [
    ["0.5 op node=a", "1.5 op node=b"],
    ["600.5 op node=a"],
    ["1200.25 op node=b", "1200.5 op node=a", "1201.0 op node=b"],
]


@pytest.fixture
def shard(tmp_path):
    files = ShardStore(str(tmp_path / "s00"))
    files.ensure()
    for day, lines in enumerate(DAY_LINES):
        files.append_day(
            lines,
            {"day": day, "rows": [{"metric": "x", "value": day}]},
            {"day": day, "digest": digest_lines(lines),
             "events": len(lines)})
    return files


def test_streamed_digest_equals_row_digest(shard):
    every_line = [line for lines in DAY_LINES for line in lines]
    assert shard.timeline_digest() == digest_lines(every_line)


def test_day_digests_recover_slices_from_line_counts(shard):
    counts = [len(lines) for lines in DAY_LINES]
    assert shard.day_digests(counts) == \
        [digest_lines(lines) for lines in DAY_LINES]


def test_day_digests_refuse_a_short_timeline(shard):
    with pytest.raises(CheckpointError):
        shard.day_digests([len(lines) + 1 for lines in DAY_LINES])


def test_day_digests_refuse_leftover_lines(shard):
    counts = [len(lines) for lines in DAY_LINES]
    counts[-1] -= 1
    with pytest.raises(CheckpointError):
        shard.day_digests(counts)


def test_day_and_metrics_records_round_trip(shard):
    days = shard.read_days()
    assert [record["day"] for record in days] == [0, 1, 2]
    assert [record["events"] for record in days] == \
        [len(lines) for lines in DAY_LINES]
    metrics = shard.read_metrics()
    assert [record["rows"][0]["value"] for record in metrics] == [0, 1, 2]


def test_timeline_iterates_in_append_order(shard):
    every_line = [line for lines in DAY_LINES for line in lines]
    assert list(shard.iter_timeline()) == every_line


def test_state_blobs_round_trip_with_stable_hashes(tmp_path):
    files = ShardStore(str(tmp_path / "s01"))
    files.ensure()
    blob = b"not really a pickle, but bytes are bytes"
    files.write_state(4, blob)
    assert files.read_state_bytes(4) == blob
    assert files.state_sha256(4) == hashlib.sha256(blob).hexdigest()
    assert files.state_name(4) == "state-d0004.pkl"


def test_manifest_round_trip(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck"))
    assert not store.exists()
    manifest = {"schema": MANIFEST_SCHEMA, "scenario": "fleet-8",
                "days": 1, "shards": []}
    store.write_manifest(manifest)
    assert store.exists()
    assert store.read_manifest() == manifest


def test_missing_manifest_is_a_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        CheckpointStore(str(tmp_path / "void")).read_manifest()


def test_foreign_manifest_schema_is_refused(tmp_path):
    import json
    import os

    root = str(tmp_path / "alien")
    store = CheckpointStore(root)
    os.makedirs(root)
    with open(store.manifest_path, "w") as fh:
        json.dump({"schema": "somebody-else/9"}, fh)
    with pytest.raises(CheckpointError, match="schema"):
        store.read_manifest()
