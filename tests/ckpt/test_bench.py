"""The memory-envelope harness and its perf-scenario plumbing.

The expensive fleet-256 rows live in BENCH_perf.json (pinned by
tests/bench/test_bench_schema.py); here the harness itself is held to
its contract on a tiny fleet: the inline and subprocess paths agree on
the simulation (same fleet digest — a fresh interpreter changes RSS,
never the schedule), and a perf row built from a subprocess scenario
carries the child's RSS reading, not the parent's.
"""

import pytest

from repro.ckpt.bench import measure, measure_subprocess

TINY = dict(scenario="fleet-8", days=1, day_seconds=300.0)


@pytest.fixture(scope="module")
def inline_result(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("ckpt-bench") / "store")
    return measure(stream=True, out=out, **TINY)


def test_measure_reports_the_run_and_its_rss(inline_result):
    assert inline_result["scenario"] == "fleet-8"
    assert inline_result["streamed"] is True
    assert inline_result["clients"] == 8
    assert inline_result["shards"] == 2
    assert inline_result["dispatched"] > 0
    assert inline_result["max_rss_kb"] > 0
    assert len(inline_result["fleet_digest"]) == 64


def test_subprocess_measurement_matches_the_inline_schedule(
        inline_result):
    child = measure_subprocess(stream=False, **TINY)
    assert child["fleet_digest"] == inline_result["fleet_digest"]
    assert child["dispatched"] == inline_result["dispatched"]
    assert child["streamed"] is False
    assert child["max_rss_kb"] > 0


def test_subprocess_failure_surfaces_the_child_stderr():
    with pytest.raises(RuntimeError, match="ckpt bench subprocess"):
        measure_subprocess("no-such-scenario", 1, 300.0, True)


def test_perf_row_carries_the_child_rss(monkeypatch):
    """A ckpt perf scenario's max_rss_kb is the subprocess's reading:
    the stubbed child claims an RSS no parent-side getrusage would
    report, and the row must carry exactly that claim."""
    from repro.ckpt import bench
    from repro.perf.runner import run_perf

    def stub(scenario, days, day_seconds, stream, seed=0):
        return {"scenario": scenario, "days": days,
                "day_seconds": day_seconds, "streamed": bool(stream),
                "clients": 256, "shards": 16, "dispatched": 123456,
                "sim_seconds": float(days) * day_seconds * 16,
                "fleet_digest": "f" * 64, "max_rss_kb": 424242}
    monkeypatch.setattr(bench, "measure_subprocess", stub)
    result = run_perf("ckpt-fleet-256", profile=True)
    assert result.max_rss_kb == 424242
    assert result.workers == 0
    assert result.events == 123456
    assert not result.hot_frames       # profiled rerun must be skipped
    assert result.detail["streamed"] is True


def test_ckpt_scenarios_reject_a_worker_count():
    from repro.perf.scenarios import run_macro_scenario

    with pytest.raises(ValueError, match="--workers"):
        run_macro_scenario("ckpt-fleet-256", workers=4)


def test_entry_point_round_trips_json_over_stdio(monkeypatch, capsys,
                                                 tmp_path):
    """What the child side of measure_subprocess runs: spec JSON on
    stdin, result JSON on stdout."""
    import io
    import json

    from repro.ckpt import bench

    spec = dict(TINY, stream=True, out=str(tmp_path / "store"))
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(spec)))
    assert bench.main() == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "fleet-8"
    assert payload["max_rss_kb"] > 0
