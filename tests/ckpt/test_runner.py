"""The checkpoint subsystem's headline guarantee: byte-identity.

A checkpointed run extended by N days must produce a store that is
byte-for-byte identical to a from-scratch run of the total duration —
every timeline line, every metrics row, every boundary state pickle,
and the manifest.  The same holds across buffering strategies
(streamed vs resident) and across worker counts; only wall-clock and
memory may differ.  Day lengths here are tiny (minutes of sim time)
so four full fleet-8 runs stay inside the tier-1 budget.
"""

import hashlib
import os

import pytest

from repro.ckpt import (
    CheckpointError,
    CkptOptions,
    extend_checkpointed,
    report_from_store,
    run_checkpointed,
)

OPTIONS = CkptOptions(day_seconds=600.0)


def tree_bytes(root):
    """{relative path: sha256} over every file under ``root``."""
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for fname in files:
            path = os.path.join(dirpath, fname)
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            out[os.path.relpath(path, root)] = digest
    return out


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """fleet-8, 3 day units, reached four different ways."""
    base = tmp_path_factory.mktemp("ckpt-runner")
    paths = {name: str(base / name)
             for name in ("scratch", "extended", "resident", "pooled")}
    reports = {
        "scratch": run_checkpointed("fleet-8", days=3,
                                    out=paths["scratch"],
                                    options=OPTIONS),
    }
    run_checkpointed("fleet-8", days=2, out=paths["extended"],
                     options=OPTIONS)
    reports["extended"] = extend_checkpointed(paths["extended"], 1)
    reports["resident"] = run_checkpointed("fleet-8", days=3,
                                           out=paths["resident"],
                                           options=OPTIONS, stream=False)
    reports["pooled"] = run_checkpointed("fleet-8", days=3,
                                         out=paths["pooled"],
                                         options=OPTIONS, workers=2)
    return paths, reports


def test_extend_is_byte_identical_to_scratch(stores):
    paths, _ = stores
    assert tree_bytes(paths["scratch"]) == tree_bytes(paths["extended"])


def test_resident_is_byte_identical_to_streamed(stores):
    paths, _ = stores
    assert tree_bytes(paths["scratch"]) == tree_bytes(paths["resident"])


def test_worker_pool_is_byte_identical_to_in_process(stores):
    paths, _ = stores
    assert tree_bytes(paths["scratch"]) == tree_bytes(paths["pooled"])


def test_every_path_reports_the_same_fleet(stores):
    _, reports = stores
    reference = reports["scratch"].to_dict()
    for name in ("extended", "resident", "pooled"):
        assert reports[name].to_dict() == reference, name


def test_report_totals_are_sane(stores):
    _, reports = stores
    report = reports["scratch"]
    assert report.clients == 8
    assert report.dispatched > 0
    assert report.sim_seconds == pytest.approx(
        3 * OPTIONS.day_seconds * len(report.shards))
    assert report.validation_attempts > 0


def test_report_from_store_is_a_pure_function_of_the_directory(stores):
    paths, reports = stores
    rebuilt = report_from_store(paths["scratch"])
    assert rebuilt.to_dict() == reports["scratch"].to_dict()


def test_run_refuses_an_existing_checkpoint(stores):
    paths, _ = stores
    with pytest.raises(CheckpointError, match="already exists"):
        run_checkpointed("fleet-8", days=1, out=paths["scratch"],
                         options=OPTIONS)


def test_run_refuses_zero_days(tmp_path):
    with pytest.raises(CheckpointError, match="at least one day"):
        run_checkpointed("fleet-8", days=0, out=str(tmp_path / "x"),
                         options=OPTIONS)


def test_extend_refuses_a_missing_checkpoint(tmp_path):
    with pytest.raises(CheckpointError):
        extend_checkpointed(str(tmp_path / "nothing"), 1)


def test_extend_refuses_zero_days(stores):
    paths, _ = stores
    with pytest.raises(CheckpointError, match="at least one day"):
        extend_checkpointed(paths["scratch"], 0)


def test_extend_refuses_a_foreign_state_schema(stores, tmp_path):
    import json
    import shutil

    paths, _ = stores
    copy = str(tmp_path / "foreign")
    shutil.copytree(paths["scratch"], copy)
    manifest_path = os.path.join(copy, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["state_schema"] = 99
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    with pytest.raises(CheckpointError, match="state schema"):
        extend_checkpointed(copy, 1)


def test_extend_refuses_a_shard_identity_mismatch(stores, tmp_path):
    import json
    import shutil

    paths, _ = stores
    copy = str(tmp_path / "mismatch")
    shutil.copytree(paths["scratch"], copy)
    manifest_path = os.path.join(copy, "manifest.json")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    manifest["shards"][0]["seed"] = 12345
    with open(manifest_path, "w") as fh:
        json.dump(manifest, fh)
    with pytest.raises(CheckpointError, match="identity mismatch"):
        extend_checkpointed(copy, 1)


@pytest.mark.parametrize("scenario,day_seconds",
                         [("fleet-32", 450.0), ("commuter", 600.0)])
def test_extend_identity_holds_per_family(tmp_path, scenario,
                                          day_seconds):
    """The acceptance families: figure9 at fleet-32 scale and the
    diurnal commuter family both extend byte-identically."""
    options = CkptOptions(day_seconds=day_seconds)
    scratch = str(tmp_path / "scratch")
    grown = str(tmp_path / "grown")
    run_checkpointed(scenario, days=2, out=scratch, options=options)
    run_checkpointed(scenario, days=1, out=grown, options=options)
    extend_checkpointed(grown, 1)
    assert tree_bytes(scratch) == tree_bytes(grown)
