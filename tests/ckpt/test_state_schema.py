"""Schema stamps on everything that crosses a process boundary.

A checkpoint written by one build must never be silently misread by
another: the Venus RVM snapshot carries an explicit
``schema_version`` (and :func:`restore_venus` refuses any other), and
the ckpt :class:`ShardState` repeats the check one level up — for
itself and for every embedded client snapshot.
"""

import pickle
from dataclasses import replace

import pytest

from repro.faults.persistence import (
    SNAPSHOT_SCHEMA_VERSION,
    restore_venus,
    snapshot_venus,
)
from tests.conftest import build_testbed


def test_snapshots_are_stamped_with_the_current_schema():
    testbed = build_testbed()
    snapshot = snapshot_venus(testbed.venus)
    assert snapshot.schema_version == SNAPSHOT_SCHEMA_VERSION


def test_restore_accepts_only_the_current_snapshot_schema():
    testbed = build_testbed()
    snapshot = snapshot_venus(testbed.venus)
    host = testbed.venus.endpoint.host
    testbed.venus.crash()
    restored = restore_venus(snapshot, testbed.sim, testbed.net, host)
    assert restored.node == testbed.venus.node

    foreign = replace(snapshot, schema_version=99)
    with pytest.raises(ValueError, match="schema version 99"):
        restore_venus(foreign, testbed.sim, testbed.net, host)


class _LegacySnapshot:
    """A stand-in for a pickle from before the stamp existed: same
    payload attributes, but no ``schema_version`` anywhere (the
    dataclass default would otherwise mask the missing field)."""


def test_restore_refuses_an_unstamped_legacy_snapshot():
    testbed = build_testbed()
    snapshot = snapshot_venus(testbed.venus)
    legacy = _LegacySnapshot()
    legacy.__dict__.update(snapshot.__dict__)
    del legacy.__dict__["schema_version"]
    thawed = pickle.loads(pickle.dumps(legacy))
    with pytest.raises(ValueError, match="schema version None"):
        restore_venus(thawed, testbed.sim, testbed.net,
                      testbed.venus.endpoint.host)


@pytest.fixture(scope="module")
def shard_state(tmp_path_factory):
    """A real day-boundary ShardState from a tiny checkpointed run."""
    from repro.ckpt import CkptOptions, run_checkpointed
    from repro.ckpt.store import CheckpointStore

    root = str(tmp_path_factory.mktemp("ckpt-schema") / "store")
    run_checkpointed("fleet-8", days=1, out=root,
                     options=CkptOptions(day_seconds=300.0))
    return pickle.loads(
        CheckpointStore(root).shard(0).read_state_bytes(1))


def test_check_schema_accepts_the_current_state(shard_state):
    from repro.ckpt.state import SCHEMA_VERSION, check_schema

    assert shard_state.schema_version == SCHEMA_VERSION
    assert check_schema(shard_state) is shard_state


def test_check_schema_refuses_a_foreign_shard_state(shard_state):
    from repro.ckpt.state import check_schema

    foreign = replace(shard_state, schema_version=77)
    with pytest.raises(ValueError, match="ckpt schema version 77"):
        check_schema(foreign)


def test_check_schema_refuses_a_foreign_client_snapshot(shard_state):
    from repro.ckpt.state import check_schema

    name = sorted(shard_state.clients)[0]
    client = shard_state.clients[name]
    foreign_clients = dict(shard_state.clients)
    foreign_clients[name] = replace(
        client, snapshot=replace(client.snapshot, schema_version=0))
    foreign = replace(shard_state, clients=foreign_clients)
    with pytest.raises(ValueError, match="snapshot has schema version 0"):
        check_schema(foreign)
