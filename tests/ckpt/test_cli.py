"""``repro ckpt`` end to end: run, extend, verify, info.

Driven through both entry points — the subsystem's own
``repro.ckpt.cli.main`` and the top-level ``repro`` dispatcher — on a
tiny fleet so the whole flow fits in a couple of seconds.
"""

import json
import os

import pytest

from repro.ckpt.cli import _added_days, main


@pytest.fixture(scope="module")
def flow(tmp_path_factory):
    """One checkpoint taken through run -> extend on disk."""
    root = str(tmp_path_factory.mktemp("ckpt-cli") / "store")
    assert main(["run", "--scenario", "fleet-8", "--days", "1",
                 "--out", root, "--day-seconds", "600"]) == 0
    assert main(["extend", "--out", root, "--days", "+1"]) == 0
    return root


def test_run_then_extend_leaves_a_two_day_manifest(flow):
    with open(os.path.join(flow, "manifest.json")) as fh:
        manifest = json.load(fh)
    assert manifest["days"] == 2
    assert manifest["scenario"] == "fleet-8"
    assert len(manifest["shards"]) == 2


def test_run_prints_fleet_report_and_location(flow, capsys, tmp_path):
    out = str(tmp_path / "fresh")
    main(["run", "--scenario", "fleet-8", "--days", "1",
          "--out", out, "--day-seconds", "600", "--resident"])
    stdout = capsys.readouterr().out
    assert "fleetd fleet-8" in stdout
    assert "checkpoint: 1 day(s)" in stdout


def test_verify_passes_on_the_good_store(flow, capsys):
    assert main(["verify", "--out", flow, "--replay-day", "0",
                 "--replay-shard", "0"]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_exits_nonzero_on_corruption(flow, tmp_path, capsys):
    import shutil

    clone = str(tmp_path / "bad")
    shutil.copytree(flow, clone)
    path = os.path.join(clone, "shards", "s00", "timeline.txt")
    os.truncate(path, os.path.getsize(path) - 20)
    with pytest.raises(SystemExit) as err:
        main(["verify", "--out", clone, "--no-replay"])
    assert err.value.code == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_info_summarizes_the_manifest(flow, capsys):
    assert main(["info", "--out", flow]) == 0
    stdout = capsys.readouterr().out
    assert "scenario       fleet-8" in stdout
    assert "shard 00" in stdout and "shard 01" in stdout


def test_info_on_a_missing_store_exits_with_a_message(tmp_path):
    with pytest.raises(SystemExit, match="manifest"):
        main(["info", "--out", str(tmp_path / "void")])


def test_run_refuses_an_existing_store_via_exit(flow):
    with pytest.raises(SystemExit, match="already exists"):
        main(["run", "--scenario", "fleet-8", "--days", "1",
              "--out", flow, "--day-seconds", "600"])


def test_extend_refuses_a_missing_store_via_exit(tmp_path):
    with pytest.raises(SystemExit, match="manifest"):
        main(["extend", "--out", str(tmp_path / "void")])


def test_added_days_parses_plus_notation():
    assert _added_days("+3") == 3
    assert _added_days("2") == 2
    with pytest.raises(SystemExit, match="wants \\+N"):
        _added_days("tomorrow")


def test_top_level_dispatcher_routes_ckpt(tmp_path, capsys):
    from repro.cli import main as repro_main

    out = str(tmp_path / "via-repro")
    with pytest.raises(SystemExit) as err:
        repro_main(["ckpt", "run", "--scenario", "fleet-8",
                    "--days", "1", "--out", out,
                    "--day-seconds", "600"])
    assert err.value.code == 0
    assert os.path.exists(os.path.join(out, "manifest.json"))
    capsys.readouterr()
