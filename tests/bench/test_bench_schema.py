"""Schema regression for the committed BENCH_perf.json artifact.

The benchmark file is machine-read by downstream tooling (and by the
next person diffing two checkouts), so its shape is pinned here: the
envelope, the per-row keys and value types, and that every row names a
catalogued scenario.  The live ``results_to_bench`` envelope is held
to the same contract so the committed file can never drift from what
``repro perf --json`` writes.
"""

import json
import os

import pytest

from repro.perf.runner import BENCH_SCHEMA, results_to_bench, run_perf
from repro.perf.scenarios import SCENARIOS
from repro.sim.pool import POOL_KINDS
from repro.sim.queue import QUEUE_KINDS

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                          "BENCH_perf.json")

ENVELOPE_TYPES = {
    "schema": str,
    "python": str,
    "platform": str,
    "cpus": int,
    "max_rss_kb": int,
    "scenarios": list,
    "results": list,
}

ROW_TYPES = {
    "scenario": str,
    "seed": int,
    "wall_seconds": float,
    "events": int,
    "sim_seconds": float,
    "events_per_sec": float,
    "sim_seconds_per_wall_second": float,
    "simulators": int,
    "queue": str,
    "pooling": str,
    "workers": int,
    "max_rss_kb": int,
    "detail": dict,
}


def check_envelope(bench):
    for key, kind in ENVELOPE_TYPES.items():
        assert key in bench, "envelope missing %r" % key
        assert isinstance(bench[key], kind), key
    assert bench["schema"] == BENCH_SCHEMA
    assert bench["scenarios"] == sorted(SCENARIOS)
    assert bench["cpus"] >= 1
    assert bench["max_rss_kb"] > 0
    for row in bench["results"]:
        check_row(row)


def check_row(row):
    for key, kind in ROW_TYPES.items():
        assert key in row, "row missing %r" % key
        assert isinstance(row[key], kind), (row["scenario"], key)
    assert row["scenario"] in SCENARIOS
    assert row["queue"] in QUEUE_KINDS
    assert row["pooling"] in POOL_KINDS
    assert row["events"] > 0
    assert row["wall_seconds"] > 0
    assert row["workers"] >= 0
    assert row["max_rss_kb"] > 0
    for frame in row.get("hot_frames", []):
        assert {"function", "file", "line"} <= set(frame), frame


@pytest.fixture(scope="module")
def committed():
    with open(BENCH_PATH) as fh:
        return json.load(fh)


def test_committed_bench_envelope(committed):
    check_envelope(committed)


def test_committed_bench_covers_the_fleet_ladder(committed):
    names = {row["scenario"] for row in committed["results"]}
    assert {"fleet-8", "fleet-32", "fleet-64"} <= names
    # The sharded rows exist and carry a worker count.
    sharded = [row for row in committed["results"]
               if row["scenario"] in ("fleetd-64", "fleet-256",
                                      "fleet-1024")]
    assert sharded, "no sharded rows in the committed bench"
    assert all(row["workers"] >= 1 for row in sharded)
    assert all(row["detail"].get("shards", 0) >= 2 for row in sharded)


def test_committed_bench_streamed_rss_beats_resident(committed):
    """The ckpt rows carry the memory-envelope claim of the PR: the
    streamed path's peak RSS sits below the collect-then-write
    baseline on an identical workload (same fleet digest)."""
    rows = {row["scenario"]: row for row in committed["results"]}
    streamed = rows["ckpt-fleet-256"]
    resident = rows["ckpt-fleet-256-resident"]
    assert streamed["detail"]["streamed"] is True
    assert resident["detail"]["streamed"] is False
    assert (streamed["detail"]["fleet_digest"]
            == resident["detail"]["fleet_digest"])
    assert streamed["detail"]["days"] >= 4
    assert streamed["max_rss_kb"] < resident["max_rss_kb"]


def test_committed_bench_calendar_beats_heap_on_fleet_64(committed):
    """The scheduler-swap regression gate: the calendar queue must
    stay within a documented noise floor of the reference heap on the
    headline fleet scenario — measured on the *same* simulation
    (identical event count and detail stats prove the two rows ran
    the same schedule).  Compared at matching pooling so the gate
    isolates the queue swap."""
    rows = [row for row in committed["results"]
            if row["scenario"] == "fleet-64" and row["pooling"] == "on"]
    by_queue = {row["queue"]: row for row in rows}
    assert {"heap", "calendar"} <= set(by_queue), \
        "fleet-64 must be benched under both queue kinds"
    heap, calendar = by_queue["heap"], by_queue["calendar"]
    assert calendar["events"] == heap["events"]
    assert calendar["detail"] == heap["detail"]
    # Floor rather than strict dominance: on the PR-9 runner the
    # calendar ring led the C heap by ~15%; on the current shared
    # 1-CPU box the two are within a few percent of each other, which
    # is smaller than the box's minute-scale throughput swings.  The
    # gate exists to catch a structural regression (the calendar path
    # suddenly costing tens of percent), not to coin-flip on
    # scheduler noise.
    assert calendar["events_per_sec"] >= 0.90 * heap["events_per_sec"]


def test_committed_bench_pooling_beats_allocation_on_fleet_64(committed):
    """The pooling regression gate: for every queue kind benched on
    fleet-64 under both pooling modes, the pooled row must stay
    within a documented noise floor of the per-send-allocation row —
    on the identical schedule (equal event count and detail
    stats)."""
    rows = [row for row in committed["results"]
            if row["scenario"] == "fleet-64"]
    by_config = {(row["queue"], row["pooling"]): row for row in rows}
    pairs = [queue for queue in {q for q, _ in by_config}
             if (queue, "on") in by_config and (queue, "off") in by_config]
    assert pairs, "fleet-64 must be benched under both pooling modes"
    for queue in pairs:
        pooled, unpooled = by_config[(queue, "on")], by_config[(queue, "off")]
        assert pooled["events"] == unpooled["events"]
        assert pooled["detail"] == unpooled["detail"]
        # Floor rather than strict dominance, for the same reason as
        # the queue gate above: paired interleaved runs show pooling
        # consistently ahead on the calendar queue (5/5 pairs, median
        # wall ratio 0.905 on fleet-32), but the single-digit effect
        # is smaller than the shared runner's minute-scale throughput
        # swings, so best-of-N absolute numbers land within ~1% either
        # way.  The gate catches a structural regression (pooling
        # suddenly costing tens of percent), not measurement noise.
        assert (pooled["events_per_sec"]
                >= 0.95 * unpooled["events_per_sec"]), queue


def test_rows_missing_pooling_are_rejected():
    """A schema-5 consumer must be able to rely on ``pooling`` being
    present: a row without it (a schema-4 artifact) fails check_row."""
    result = run_perf("trickle-outage", profile=False)
    row = result.to_dict()
    check_row(row)            # intact row passes
    del row["pooling"]
    with pytest.raises(AssertionError):
        check_row(row)


def test_live_envelope_matches_the_contract():
    result = run_perf("fleet-golden", profile=False)
    bench = results_to_bench([result])
    check_envelope(bench)
    row = bench["results"][0]
    assert row["scenario"] == "fleet-golden"
    assert row["workers"] == 0
    # JSON round-trip preserves the shape (what actually lands on disk).
    check_envelope(json.loads(json.dumps(bench)))
