"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("transport", "aging", "patience", "validation",
                    "fleet", "compressibility", "segments", "replay",
                    "ablations", "trace-export"):
        args = parser.parse_args([command] if command != "trace-export"
                                 else [command, "--out", "x"])
        assert args.command == command
        assert callable(args.fn)


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_patience_command_runs(capsys):
    assert main(["patience"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "priority" in out


def test_segments_command_runs(capsys):
    assert main(["segments"]) == 0
    out = capsys.readouterr().out
    assert "Figure 11" in out
    assert "Purcell" in out


def test_replay_command_single_cell(capsys):
    assert main(["replay", "--segment", "purcell",
                 "--network", "modem"]) == 0
    out = capsys.readouterr().out
    assert "Modem" in out and "elapsed" in out


def test_trace_export_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "seg.trace"
    assert main(["trace-export", "--segment", "purcell",
                 "--out", str(out_file)]) == 0
    from repro.trace.io import read_trace
    segment = read_trace(str(out_file))
    assert segment.name == "purcell"
    assert segment.references > 10_000


def test_trace_export_unknown_segment(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace-export", "--segment", "nosuch",
              "--out", str(tmp_path / "x")])
