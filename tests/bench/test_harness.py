"""Bench harness utilities: population, warming, tables."""

import pytest

from repro.bench import Table, fmt_bytes, make_testbed, populate_volume, \
    warm_cache
from repro.fs import ObjectType
from repro.net import ETHERNET


def test_populate_creates_intermediate_dirs():
    testbed = make_testbed(ETHERNET)
    tree = {"/coda/x/a/b/c/file.txt": ("file", 123)}
    volume = populate_volume(testbed.server, "/coda/x", tree)
    a = volume.require(volume.root.lookup("a"))
    b = volume.require(a.lookup("b"))
    c = volume.require(b.lookup("c"))
    f = volume.require(c.lookup("file.txt"))
    assert f.otype is ObjectType.FILE
    assert f.length == 123
    assert volume.object_count() == 5       # root + a + b + c + file


def test_populate_is_idempotent_per_path():
    testbed = make_testbed(ETHERNET)
    tree = {"/coda/x/d": ("dir", 0),
            "/coda/x/d/f": ("file", 10)}
    volume = populate_volume(testbed.server, "/coda/x", tree)
    assert volume.object_count() == 3


def test_warm_cache_mirrors_volume():
    testbed = make_testbed(ETHERNET)
    tree = {"/coda/x/d": ("dir", 0),
            "/coda/x/d/f": ("file", 10)}
    volume = populate_volume(testbed.server, "/coda/x", tree)
    warm_cache(testbed.venus, testbed.server, volume)
    cache = testbed.venus.cache
    assert len(cache) == volume.object_count()
    for fid, vnode in volume.vnodes.items():
        entry = cache.get(fid)
        assert entry is not None
        assert entry.version == vnode.version
        assert entry.callback
        assert cache.is_valid(entry)
    info = cache.volume_info(volume.volid)
    assert info.stamp == volume.stamp
    assert testbed.server.callbacks.has_volume(testbed.venus.node,
                                               volume.volid)


def test_warm_cache_reconstructs_paths():
    testbed = make_testbed(ETHERNET)
    tree = {"/coda/x/d": ("dir", 0), "/coda/x/d/f": ("file", 10)}
    volume = populate_volume(testbed.server, "/coda/x", tree)
    warm_cache(testbed.venus, testbed.server, volume)
    paths = {e.path for e in testbed.venus.cache.entries()}
    assert "/coda/x/d/f" in paths
    assert "/coda/x/d" in paths
    assert "/coda/x" in paths


def test_table_rendering_and_arity_check():
    table = Table("T", ["a", "bb"])
    table.add(1, "long-cell")
    rendered = table.render()
    assert "T" in rendered and "long-cell" in rendered
    assert rendered.splitlines()[1].startswith("a")
    with pytest.raises(ValueError):
        table.add(1)


def test_fmt_bytes():
    assert fmt_bytes(100) == "100 B"
    assert fmt_bytes(4 * 1024) == "4 KB"
    assert fmt_bytes(3 * 1024 * 1024) == "3.0 MB"
