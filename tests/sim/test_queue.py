"""Unit tests for the pluggable scheduler layer (repro.sim.queue)."""

import os

import pytest

from repro.sim import Simulator
from repro.sim.queue import (
    MIN_WIDTH,
    OVERFLOW_SPAN,
    RESIZE_AT,
    CalendarQueue,
    HeapQueue,
    default_kind,
    make_queue,
    register_kind,
    set_default_kind,
    use_kind,
)


def entry(when, prio=1, seq=0):
    return (when, prio, seq, None)


# ---------------------------------------------------------------------------
# Registry and default kind


def test_make_queue_builds_registered_kinds():
    assert isinstance(make_queue("heap"), HeapQueue)
    assert isinstance(make_queue("calendar"), CalendarQueue)


def test_make_queue_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown queue kind"):
        make_queue("fibonacci")
    with pytest.raises(ValueError, match="unknown queue kind"):
        set_default_kind("fibonacci")


def test_make_queue_passes_instances_through():
    queue = HeapQueue()
    assert make_queue(queue) is queue


def test_use_kind_restores_default_and_mirrors_env():
    before = default_kind()
    other = "heap" if before != "heap" else "calendar"
    with use_kind(other):
        assert default_kind() == other
        assert os.environ["REPRO_QUEUE"] == other
        assert isinstance(make_queue(), make_queue(other).__class__)
    assert default_kind() == before
    assert os.environ["REPRO_QUEUE"] == before


def test_register_kind_makes_new_kinds_buildable():
    class Custom(HeapQueue):
        kind = "custom-unit-test"

    register_kind(Custom.kind, Custom)
    assert isinstance(make_queue("custom-unit-test"), Custom)


# ---------------------------------------------------------------------------
# HeapQueue specifics


def test_heap_queue_cancel_and_repr():
    queue = HeapQueue()
    first, second = entry(1.0, seq=0), entry(2.0, seq=1)
    queue.push(first)
    queue.push(second)
    assert "pending=2" in repr(queue)
    assert queue.cancel(second) is True
    assert queue.cancel(second) is False
    assert queue.pop() == first
    assert len(queue) == 0
    assert queue.peek_entry() is None
    assert queue.peek_when() is None


# ---------------------------------------------------------------------------
# CalendarQueue specifics


def test_calendar_repr_names_the_geometry():
    queue = CalendarQueue()
    queue.push(entry(3.5))
    text = repr(queue)
    assert "CalendarQueue" in text
    assert "pending=1" in text


def test_calendar_pop_empty_raises_index_error():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


def test_calendar_cancel_every_tier():
    queue = CalendarQueue()
    at_now = entry(0.0, prio=0, seq=0)          # urgent lane
    at_now_normal = entry(0.0, prio=1, seq=1)   # normal lane
    near = entry(2.0, seq=2)                    # bucket
    near_twin = entry(2.0, seq=3)               # same bucket (kept)
    far = entry(10_000.0, seq=4)                # overflow tier
    for item in (at_now, at_now_normal, near, near_twin, far):
        queue.push(item)
    assert len(queue) == 5
    assert queue.cancel(at_now) is True
    assert queue.cancel(at_now_normal) is True
    assert queue.cancel(near) is True           # heapified remainder
    assert queue.cancel(far) is True
    assert queue.cancel(entry(99.0, seq=77)) is False
    assert [queue.pop()] == [near_twin]
    # Cancelling the last bucket occupant leaves a stale active index
    # that peek/advance must skip over.
    lone = entry(3.0, seq=8)
    queue.push(lone)
    assert queue.cancel(lone) is True
    assert queue.peek_entry() is None
    assert len(queue) == 0


def test_calendar_overflow_and_bucket_merge_equal_times():
    queue = CalendarQueue()
    # Pushed while 9000 is beyond the overflow horizon (4096 widths):
    over = entry(9_000.0, prio=1, seq=0)
    queue.push(over)
    stepper = entry(4_000.0, seq=1)
    queue.push(stepper)
    assert queue.pop() == stepper               # instant -> 4000
    # Now 9000 is within the horizon: lands in a bucket, equal-time
    # with the overflow resident — and with the smaller priority must
    # still pop *after* nothing, i.e. strict tuple order holds.
    bucketed = entry(9_000.0, prio=0, seq=2)
    queue.push(bucketed)
    assert queue.pop() == bucketed
    assert queue.pop() == over
    assert len(queue) == 0


def test_calendar_infinity_lives_in_overflow():
    queue = CalendarQueue()
    never = entry(float("inf"), seq=0)
    queue.push(never)
    soon = entry(1.0, seq=1)
    queue.push(soon)
    assert queue.peek_when() == 1.0
    assert queue.pop() == soon
    assert queue.pop() == never
    # Once the instant is infinite, further "never" pushes are ties.
    later = entry(float("inf"), seq=2)
    queue.push(later)
    assert queue.pop() == later


def test_calendar_resize_clamps_denormal_spans():
    queue = CalendarQueue()
    entries = [entry(1.0 + i * 1e-13, seq=i) for i in range(RESIZE_AT + 6)]
    for item in entries:
        queue.push(item)
    assert queue._width == MIN_WIDTH
    assert [queue.pop() for _ in entries] == sorted(entries)


def test_calendar_resize_with_identical_times_keeps_width():
    queue = CalendarQueue()
    entries = [entry(7.0, prio=i % 2, seq=i)
               for i in range(RESIZE_AT + 6)]
    for item in entries:
        queue.push(item)
    assert queue._width == 1.0      # zero span: width untouched
    assert [queue.pop() for _ in entries] == sorted(entries)


def test_overflow_horizon_is_relative_to_the_instant():
    queue = CalendarQueue()
    inside = entry(OVERFLOW_SPAN - 1.0, seq=0)
    outside = entry(OVERFLOW_SPAN + 10.0, seq=1)
    queue.push(inside)
    queue.push(outside)
    assert len(queue._overflow) == 1
    assert queue.pop() == inside
    assert queue.pop() == outside


# ---------------------------------------------------------------------------
# Kernel integration


@pytest.mark.parametrize("kind", ("heap", "calendar"))
def test_simulator_accepts_queue_kind(kind):
    sim = Simulator(queue=kind)
    fired = []

    def waiter():
        value = yield sim.timeout(2.5, value="tick")
        fired.append(value)

    sim.process(waiter())
    sim.run()
    assert fired == ["tick"]
    assert sim.peek() is None
    assert sim.peek_entry() is None
    assert "queued=0" in repr(sim)


def test_simulator_accepts_queue_instance():
    queue = CalendarQueue(start_time=10.0)
    sim = Simulator(start_time=10.0, queue=queue)
    sim.timeout(1.0)
    assert sim._queue is queue
    assert sim.peek() == 11.0
    assert sim.peek_entry()[3] is not None


@pytest.mark.parametrize("kind", ("heap", "calendar"))
def test_stale_same_instant_remnant_respects_earlier_deadline(kind):
    """A same-instant event left queued by run(until=Event) must not
    run under a later call with an earlier deadline — on any kind."""
    sim = Simulator(queue=kind)
    first = sim.timeout(5.0)
    sim.timeout(5.0)
    sim.run(until=first)
    assert sim.dispatched == 1
    sim.run(until=2.0)          # deadline before the remnant's time
    assert sim.dispatched == 1
    sim.run(until=5.0)
    assert sim.dispatched == 2
