"""The differential harness: clean equivalence, and planted-bug teeth.

Mirrors the planted-corruption style of ``tests/ckpt/test_verify.py``:
first show the harness blesses the honest calendar queue, then damage
the scheduler in two distinct ways (``broken_queues.py``) and assert
the harness names the divergence — at event index zero, with context
from both runs.
"""

from tests.sim.broken_pools import register_broken_pools
from tests.sim.broken_queues import register_broken_kinds
from tests.sim.differential import DEFAULT_POOLINGS, diff_scenario, main

register_broken_kinds()
register_broken_pools()


# ---------------------------------------------------------------------------
# Synthetic scenarios sized so a dispatch-order bug surfaces immediately.


def staircase(observatory=None):
    """Independent timeouts straddling adjacent calendar slices."""
    from repro.sim import Simulator
    sim = Simulator()
    for delay in (0.6, 1.2, 2.7, 3.1, 0.2, 1.9):
        sim.timeout(delay)
    sim.run()


def twins(observatory=None):
    """Two processes born at the same instant — a pure FIFO-tie test."""
    from repro.sim import Simulator
    sim = Simulator()

    def worker():
        yield sim.timeout(0.0)

    sim.process(worker(), name="a")
    sim.process(worker(), name="b")
    sim.run()


def burst(observatory=None):
    """Three packets in flight on one link direction at once.

    1000-byte packets at 8000 bps serialize in a second each, so the
    whole burst is airborne before the first arrival: a 3-deep
    delivery-lane queue, the smallest scenario where both planted lane
    bugs (``broken_pools.py``) must change the dispatch stream.
    """
    from repro.net.link import Link
    from repro.net.packet import Datagram
    from repro.sim import Simulator
    sim = Simulator()
    link = Link(sim, "a", "b", bandwidth_bps=8000, latency=0.05)

    def sender():
        for index in range(3):
            link.send(Datagram(src="a", src_port=1, dst="b", dst_port=2,
                               payload={"index": index}, size=1000))
        yield sim.sleep(0.0)

    sim.process(sender(), name="sender")
    sim.run()


# ---------------------------------------------------------------------------
# Clean equivalence


def test_heap_and_calendar_agree_on_trickle():
    reports = diff_scenario("obs:trickle")
    assert [r.tier for r in reports] == ["dispatch", "timeline"]
    for report in reports:
        assert report.identical, report.format()
        assert report.events_a > 0
        assert report.events_a == report.events_b
        assert "byte-identical" in report.format()


def test_heap_and_calendar_agree_on_faults_smoke():
    for report in diff_scenario("faults:smoke"):
        assert report.identical, report.format()


def test_digest_mode_agrees_without_keeping_lines():
    (report,) = diff_scenario("obs:trickle", tiers=("dispatch",),
                              digest=True)
    assert report.identical, report.format()
    assert report.events_a > 0


def test_callable_scenarios_run_under_both_kinds():
    for report in diff_scenario(staircase, tiers=("dispatch",)):
        assert report.identical, report.format()
    for report in diff_scenario(twins, tiers=("dispatch",)):
        assert report.identical, report.format()


def test_pooling_grid_agrees_on_trickle():
    """The full kind × pooling grid, both tiers, full-line compares —
    pooling must be schedule-identical down to every sequence number."""
    reports = diff_scenario("obs:trickle", poolings=DEFAULT_POOLINGS)
    # 2 kinds × 2 poolings = 4 cells → 3 comparisons per tier.
    assert len(reports) == 6
    for report in reports:
        assert report.identical, report.format()
        assert report.events_a > 0
    labels = {kind for report in reports for kind in report.kinds}
    assert labels == {"heap/off", "heap/on", "calendar/off", "calendar/on"}


def test_pooling_grid_agrees_on_burst_traffic():
    for report in diff_scenario(burst, poolings=DEFAULT_POOLINGS,
                                tiers=("dispatch",)):
        assert report.identical, report.format()


# ---------------------------------------------------------------------------
# Planted bugs: the harness must catch both, at the exact first event.


def test_off_by_one_bucket_queue_is_caught():
    (report,) = diff_scenario(staircase, kinds=("heap", "broken-bucket"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 0
    assert report.context_a and report.context_b
    assert "DIVERGENCE at event 0" in report.format()
    # Same scenario, honest calendar: blessed.  The bug, not the
    # scenario, is what the harness is reacting to.
    (clean,) = diff_scenario(staircase, kinds=("heap", "calendar"),
                             tiers=("dispatch",))
    assert clean.identical


def test_tie_order_violating_queue_is_caught():
    (report,) = diff_scenario(twins, kinds=("heap", "broken-ties"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 0
    (clean,) = diff_scenario(twins, kinds=("heap", "calendar"),
                             tiers=("dispatch",))
    assert clean.identical


def test_broken_kind_divergence_is_caught_in_digest_mode():
    (report,) = diff_scenario(staircase, kinds=("heap", "broken-bucket"),
                              tiers=("dispatch",), digest=True)
    assert not report.identical


def test_stale_wakeup_pool_is_caught():
    """Bug A: the lane re-pushes its recycled wakeup, whose _fire
    callback died in the recycle reset.  Deliveries silently stop, so
    the broken dispatch stream ends exactly where the third arrival's
    wakeup should have been — event 5."""
    (report,) = diff_scenario(burst, kinds=("calendar",),
                              poolings=("off", "broken-stale"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 5
    assert report.events_a == 6 and report.events_b == 5
    assert report.kinds == ("calendar/off", "calendar/broken-stale")
    assert "DIVERGENCE at event 5" in report.format()
    # Same scenario, honest pool: blessed.  The bug, not the scenario,
    # is what the harness is reacting to.
    (clean,) = diff_scenario(burst, kinds=("calendar",),
                             poolings=("off", "on"), tiers=("dispatch",))
    assert clean.identical


def test_reordering_batch_pool_is_caught():
    """Bug B: LIFO lane pops deliver the burst tail at the head's
    instant and re-push the head's already-used (when, seq) — the
    second delivery wakeup (event 4) is the first diverging line."""
    (report,) = diff_scenario(burst, kinds=("calendar",),
                              poolings=("off", "broken-batch"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 4
    assert report.events_a == report.events_b == 6
    assert report.context_a and report.context_b
    assert "DIVERGENCE at event 4" in report.format()


def test_broken_pool_divergence_is_caught_in_digest_mode():
    (report,) = diff_scenario(burst, kinds=("calendar",),
                              poolings=("off", "broken-batch"),
                              tiers=("dispatch",), digest=True)
    assert not report.identical


# ---------------------------------------------------------------------------
# Script entry point (what the CI smoke job runs)


def test_main_reports_clean_run(capsys):
    assert main(["--scenario", "obs:trickle", "--tier", "dispatch"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out


def test_main_flags_broken_kind(capsys):
    code = main(["--scenario", "obs:trickle", "--tier", "dispatch",
                 "--queue", "heap", "--queue", "broken-ties", "--json"])
    assert code == 1
    out = capsys.readouterr().out
    assert '"identical": false' in out


def test_main_sweeps_the_pooling_grid(capsys):
    """The CLI shape the CI pool-differential smoke job invokes."""
    code = main(["--scenario", "obs:trickle", "--tier", "dispatch",
                 "--queue", "calendar", "--pooling", "off",
                 "--pooling", "on"])
    assert code == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out
    assert "calendar/off vs calendar/on" in out
