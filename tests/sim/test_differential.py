"""The differential harness: clean equivalence, and planted-bug teeth.

Mirrors the planted-corruption style of ``tests/ckpt/test_verify.py``:
first show the harness blesses the honest calendar queue, then damage
the scheduler in two distinct ways (``broken_queues.py``) and assert
the harness names the divergence — at event index zero, with context
from both runs.
"""

from tests.sim.broken_queues import register_broken_kinds
from tests.sim.differential import diff_scenario, main

register_broken_kinds()


# ---------------------------------------------------------------------------
# Synthetic scenarios sized so a dispatch-order bug surfaces immediately.


def staircase(observatory=None):
    """Independent timeouts straddling adjacent calendar slices."""
    from repro.sim import Simulator
    sim = Simulator()
    for delay in (0.6, 1.2, 2.7, 3.1, 0.2, 1.9):
        sim.timeout(delay)
    sim.run()


def twins(observatory=None):
    """Two processes born at the same instant — a pure FIFO-tie test."""
    from repro.sim import Simulator
    sim = Simulator()

    def worker():
        yield sim.timeout(0.0)

    sim.process(worker(), name="a")
    sim.process(worker(), name="b")
    sim.run()


# ---------------------------------------------------------------------------
# Clean equivalence


def test_heap_and_calendar_agree_on_trickle():
    reports = diff_scenario("obs:trickle")
    assert [r.tier for r in reports] == ["dispatch", "timeline"]
    for report in reports:
        assert report.identical, report.format()
        assert report.events_a > 0
        assert report.events_a == report.events_b
        assert "byte-identical" in report.format()


def test_heap_and_calendar_agree_on_faults_smoke():
    for report in diff_scenario("faults:smoke"):
        assert report.identical, report.format()


def test_digest_mode_agrees_without_keeping_lines():
    (report,) = diff_scenario("obs:trickle", tiers=("dispatch",),
                              digest=True)
    assert report.identical, report.format()
    assert report.events_a > 0


def test_callable_scenarios_run_under_both_kinds():
    for report in diff_scenario(staircase, tiers=("dispatch",)):
        assert report.identical, report.format()
    for report in diff_scenario(twins, tiers=("dispatch",)):
        assert report.identical, report.format()


# ---------------------------------------------------------------------------
# Planted bugs: the harness must catch both, at the exact first event.


def test_off_by_one_bucket_queue_is_caught():
    (report,) = diff_scenario(staircase, kinds=("heap", "broken-bucket"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 0
    assert report.context_a and report.context_b
    assert "DIVERGENCE at event 0" in report.format()
    # Same scenario, honest calendar: blessed.  The bug, not the
    # scenario, is what the harness is reacting to.
    (clean,) = diff_scenario(staircase, kinds=("heap", "calendar"),
                             tiers=("dispatch",))
    assert clean.identical


def test_tie_order_violating_queue_is_caught():
    (report,) = diff_scenario(twins, kinds=("heap", "broken-ties"),
                              tiers=("dispatch",))
    assert not report.identical
    assert report.first_divergence == 0
    (clean,) = diff_scenario(twins, kinds=("heap", "calendar"),
                             tiers=("dispatch",))
    assert clean.identical


def test_broken_kind_divergence_is_caught_in_digest_mode():
    (report,) = diff_scenario(staircase, kinds=("heap", "broken-bucket"),
                              tiers=("dispatch",), digest=True)
    assert not report.identical


# ---------------------------------------------------------------------------
# Script entry point (what the CI smoke job runs)


def test_main_reports_clean_run(capsys):
    assert main(["--scenario", "obs:trickle", "--tier", "dispatch"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out


def test_main_flags_broken_kind(capsys):
    code = main(["--scenario", "obs:trickle", "--tier", "dispatch",
                 "--queue", "heap", "--queue", "broken-ties", "--json"])
    assert code == 1
    out = capsys.readouterr().out
    assert '"identical": false' in out
