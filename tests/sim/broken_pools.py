"""Deliberately broken object pools: proof the pooling axis bites.

The queue-kind twin of ``broken_queues.py``: a verification harness is
only trustworthy if it demonstrably fails on defective inputs.  These
pooling kinds each violate the pool contract in one realistic way;
``test_differential.py`` asserts the differential harness pinpoints
both at the exact first diverging dispatch.

* :class:`StaleWakeupPool` plants the classic use-after-recycle bug —
  a stale-callback leak through a recycled event.  Its lane caches its
  first wakeup object and re-pushes *the same object* on every re-arm,
  "saving" the per-arm allocation.  But the kernel recycled that
  wakeup the moment it dispatched, and the recycle reset took the
  registered ``_fire`` callback with it: every re-armed wakeup
  dispatches as a blank event, no packet after the burst head is ever
  delivered, and the lane never arms for the next arrival.  The
  honest pool is immune by construction (every arm takes a fresh
  free-list object and re-registers its callback); the differential
  harness catches the defect as a dispatch stream that simply ends
  early — at the exact index of the first missing delivery wakeup.

* :class:`ReorderingBatchPool` plants a batched-delivery ordering bug
  — the lane pops its burst LIFO instead of FIFO.  The armed wakeup's
  ``(when, seq)`` belongs to the burst head, but the packet handed to
  the receiver is the tail; the re-arm then re-pushes the *head's*
  already-used entry where the next arrival's should be.  The
  dispatch stream itself diverges (a duplicated ``(when, seq)``
  replacing the next arrival's entry), so the harness catches it even
  before any receiver acts on the misordered payload.
"""

from repro.sim.events import NORMAL
from repro.sim.pool import DeliveryLane, EventPool, register_pooling


class StaleLane(DeliveryLane):
    """Delivery lane that re-pushes its recycled first wakeup."""

    __slots__ = ("_wakeup",)

    def __init__(self, pool, deliver):
        super().__init__(pool, deliver)
        self._wakeup = None

    def _arm(self):
        due, seq, _item = self._pending[0]
        self._armed = True
        wakeup = self._wakeup
        if wakeup is None:
            wakeup = self._wakeup = self.pool.timeout_at(due, seq)
            wakeup.callbacks.append(self._fire)
            return
        # The planted bug: the cached wakeup was recycled after its
        # dispatch, so its _fire registration is gone — this entry
        # will dispatch as a blank event and deliver nothing.
        sim = self.sim
        sim._push((due, NORMAL, seq, wakeup))


class StaleWakeupPool(EventPool):
    """Pool whose lanes hold a stale reference to a recycled wakeup."""

    kind = "broken-stale"

    __slots__ = ()

    def delivery_lane(self, deliver):
        return StaleLane(self, deliver)


class LifoLane(DeliveryLane):
    """Delivery lane that pops its burst from the wrong end."""

    __slots__ = ()

    def _fire(self, _event):
        _due, _seq, item = self._pending.pop()      # the planted bug
        self._armed = False
        self.deliver(item)
        if self._pending and not self._armed:
            self._arm()


class ReorderingBatchPool(EventPool):
    """Pool whose lanes deliver bursts LIFO."""

    kind = "broken-batch"

    __slots__ = ()

    def delivery_lane(self, deliver):
        return LifoLane(self, deliver)


def register_broken_pools():
    """Make the planted-bug kinds buildable by name via make_pool."""
    register_pooling(StaleWakeupPool.kind, StaleWakeupPool)
    register_pooling(ReorderingBatchPool.kind, ReorderingBatchPool)
