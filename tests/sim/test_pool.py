"""Unit coverage for the object pool: lifecycle, registry, hard errors.

The differential harness and golden digests prove pooling is
schedule-identical; these tests pin the pool's *own* contract — full
reset on recycle, generation counters, the ``StaleObjectError`` wall
around recycled objects, free-list caps, registry/env mirroring, and
the obs gauge publication.
"""

import os

import pytest

from repro.net.packet import Datagram
from repro.sim import Simulator, StaleObjectError
from repro.sim.events import Event, Timeout, _RECYCLED
from repro.sim.pool import (
    FREE_LIST_CAP,
    EventPool,
    default_pooling,
    make_pool,
    register_pooling,
    set_default_pooling,
    use_pooling,
    POOL_KINDS,
)
from repro.sim.resources import Lock


def pooled_sim():
    sim = Simulator(pooling="on")
    assert sim._pool is not None
    return sim


# ---------------------------------------------------------------------------
# Lifecycle: recycle-on-dispatch, full reset, generation counters


def test_sleep_timeout_is_recycled_after_dispatch():
    sim = pooled_sim()
    pool = sim._pool

    def sleeper():
        yield sim.sleep(1.0)
        yield sim.sleep(1.0)
        yield sim.sleep(1.0)

    sim.process(sleeper(), name="sleeper")
    sim.run()
    stats = pool.stats()
    # The second sleep is allocated while the first is mid-dispatch
    # (its recycle happens after the callback runs), so two fresh
    # allocs; the third sleep draws the first one back off the free
    # list.
    assert stats["timeout_allocs"] == 2
    assert stats["timeout_reuses"] >= 1
    assert stats["free_timeouts"] == 2


def test_recycled_object_is_fully_reset():
    sim = pooled_sim()
    pool = sim._pool
    timeout = pool.sleep(0.5)
    generation = timeout._gen
    sim.run()
    assert timeout._value is _RECYCLED
    assert timeout.callbacks == []
    assert timeout._ok is None
    assert not timeout._processed
    assert not timeout._recycle
    assert timeout._gen == generation + 1


def test_stub_reuse_draws_from_the_free_list():
    sim = pooled_sim()
    seen = []
    sim._call_soon(seen.append, "a")
    sim.run()
    first_free = len(sim._pool._free_events)
    sim._call_soon(seen.append, "b")
    sim.run()
    assert seen == ["a", "b"]
    stats = sim._pool.stats()
    assert first_free == 1
    assert stats["event_reuses"] >= 1


def test_live_objects_are_never_on_the_free_list():
    sim = pooled_sim()
    pool = sim._pool
    pending = [pool.sleep(float(i)) for i in range(5)]
    assert pool.stats()["free_timeouts"] == 0
    assert all(t._value is not _RECYCLED for t in pending)


# ---------------------------------------------------------------------------
# Stale references are hard errors


def test_succeed_on_recycled_event_raises():
    sim = pooled_sim()
    timeout = sim._pool.sleep(0.0)
    sim.run()
    with pytest.raises(StaleObjectError):
        timeout.succeed()


def test_fail_subscribe_value_on_recycled_event_raise():
    sim = pooled_sim()
    timeout = sim._pool.sleep(0.0)
    sim.run()
    with pytest.raises(StaleObjectError):
        timeout.fail(RuntimeError("late"))
    with pytest.raises(StaleObjectError):
        timeout.subscribe(lambda event: None)
    with pytest.raises(StaleObjectError):
        timeout.value


def test_process_yielding_a_recycled_event_fails_loudly():
    sim = pooled_sim()
    stale = sim._pool.sleep(0.0)
    sim.run()                      # dispatches and recycles it

    def holder():
        yield stale                # use-after-recycle

    proc = sim.process(holder(), name="holder")
    proc.defuse()
    sim.run()
    assert not proc.ok
    assert isinstance(proc._value, StaleObjectError)


def test_repr_of_recycled_event_says_so():
    sim = pooled_sim()
    timeout = sim._pool.sleep(0.0)
    sim.run()
    assert "recycled" in repr(timeout)


# ---------------------------------------------------------------------------
# Pooled lock acquire events


def test_pooled_lock_recycles_acquire_events():
    sim = pooled_sim()
    lock = Lock(sim, pooled=True)
    order = []

    def worker(name):
        yield lock.acquire()
        order.append(name)
        yield sim.sleep(1.0)
        lock.release()

    for name in ("a", "b", "c"):
        sim.process(worker(name), name=name)
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim._pool.stats()["event_reuses"] >= 1


def test_default_lock_events_stay_unpooled():
    sim = pooled_sim()
    lock = Lock(sim)
    event = lock.acquire()
    sim.run()
    # Un-pooled acquire events survive dispatch: still inspectable.
    assert event.triggered


# ---------------------------------------------------------------------------
# Datagram pooling


def test_direct_datagrams_are_never_recycled():
    sim = pooled_sim()
    dgram = Datagram(src="a", src_port=1, dst="b", dst_port=2,
                     payload={"n": 1}, size=100)
    sim._pool.recycle_datagram(dgram)
    assert dgram.payload == {"n": 1}        # untouched
    assert sim._pool.stats()["free_datagrams"] == 0


def test_pooled_datagram_reuse_bumps_gen_and_ident():
    sim = pooled_sim()
    pool = sim._pool
    first = pool.datagram("a", 1, "b", 2, {"n": 1}, 100)
    assert first.pooled
    ident, generation = first.ident, first.gen
    pool.recycle_datagram(first)
    assert first.payload is None
    second = pool.datagram("c", 3, "d", 4, {"n": 2}, 200)
    assert second is first                  # free-list reuse
    assert second.gen == generation + 1
    assert second.ident > ident             # fresh ident every life


def test_datagram_size_must_be_positive():
    sim = pooled_sim()
    with pytest.raises(ValueError):
        sim._pool.datagram("a", 1, "b", 2, {}, 0)


def test_negative_sleep_raises():
    sim = pooled_sim()
    with pytest.raises(ValueError):
        sim.sleep(-1.0)


# ---------------------------------------------------------------------------
# Free-list cap


def test_free_list_cap_drops_overflow_to_gc():
    sim = pooled_sim()
    pool = sim._pool
    # More live timeouts than the cap: the recycle wave fills the free
    # list to the brim and GCs the rest.
    for _ in range(FREE_LIST_CAP + 200):
        pool.sleep(0.0)
    sim.run()
    stats = pool.stats()
    assert stats["free_timeouts"] == FREE_LIST_CAP
    assert stats["dropped"] >= 200


def test_foreign_event_classes_are_dropped_not_mixed():
    sim = pooled_sim()
    pool = sim._pool

    def worker():
        yield sim.sleep(0.0)

    proc = sim.process(worker(), name="w")
    sim.run()
    before = pool.stats()
    proc._recycle = True        # a Process must never enter a free list
    pool.recycle(proc)
    after = pool.stats()
    assert after["free_events"] == before["free_events"]
    assert after["dropped"] == before["dropped"] + 1


# ---------------------------------------------------------------------------
# run(until=event) interaction


def test_run_until_event_is_not_recycled():
    sim = pooled_sim()

    def worker():
        yield sim.sleep(2.0)
        return "done"

    proc = sim.process(worker(), name="w")
    stop = sim._pool.sleep(1.0)
    sim.run(until=stop)
    assert sim.now == 1.0
    assert stop._value is not _RECYCLED
    sim.run()
    assert proc.value == "done"


# ---------------------------------------------------------------------------
# Registry, defaults, env mirroring


def test_default_pooling_round_trip():
    previous = set_default_pooling("off")
    try:
        assert default_pooling() == "off"
        assert os.environ["REPRO_POOL"] == "off"
        sim = Simulator()
        assert sim._pool is None
    finally:
        set_default_pooling(previous)
    assert default_pooling() == previous
    assert os.environ["REPRO_POOL"] == previous


def test_use_pooling_restores_on_exit():
    before = default_pooling()
    with use_pooling("off"):
        assert default_pooling() == "off"
    assert default_pooling() == before


def test_set_default_pooling_rejects_unknown_kind():
    with pytest.raises(ValueError):
        set_default_pooling("turbo")


def test_make_pool_resolves_kinds_and_factories():
    sim = Simulator(pooling="off")
    assert make_pool("off", sim) is None
    assert isinstance(make_pool("on", sim), EventPool)
    assert isinstance(make_pool(EventPool, sim), EventPool)
    with pytest.raises(ValueError):
        make_pool("turbo", sim)


def test_register_pooling_adds_a_kind():
    class TinyPool(EventPool):
        kind = "tiny-test"

    register_pooling("tiny-test", TinyPool)
    try:
        sim = Simulator(pooling="tiny-test")
        assert isinstance(sim._pool, TinyPool)
    finally:
        del POOL_KINDS["tiny-test"]


def test_simulator_pooling_kwarg_overrides_default():
    with use_pooling("on"):
        assert Simulator(pooling="off")._pool is None
    with use_pooling("off"):
        assert isinstance(Simulator(pooling="on")._pool, EventPool)


# ---------------------------------------------------------------------------
# Stats and obs gauges


def test_stats_keys_are_stable():
    sim = pooled_sim()
    assert set(sim._pool.stats()) == {
        "event_allocs", "event_reuses", "timeout_allocs",
        "timeout_reuses", "datagram_allocs", "datagram_reuses",
        "recycled", "dropped", "free_events", "free_timeouts",
        "free_datagrams",
    }


def test_pool_gauges_published_to_obs():
    from repro.obs import Observatory
    sim = Simulator(pooling="on")
    observatory = Observatory(sim=sim)

    def sleeper():
        yield sim.sleep(1.0)

    sim.process(sleeper(), name="s")
    sim.run()
    gauges = {inst.name: inst.value
              for inst in observatory.metrics.instruments()
              if inst.name.startswith("pool.")}
    assert gauges.get("pool.timeout_allocs", 0) >= 1
    assert "pool.recycled" in gauges


def test_delivery_lane_len_tracks_the_pending_burst():
    sim = pooled_sim()
    delivered = []
    lane = sim._pool.delivery_lane(delivered.append)
    for n in range(3):
        lane.schedule(float(n + 1), "pkt-%d" % n)
    assert len(lane) == 3
    sim.run()
    assert len(lane) == 0
    assert delivered == ["pkt-0", "pkt-1", "pkt-2"]


def test_take_event_and_timeout_classes_stay_separate():
    sim = pooled_sim()
    pool = sim._pool
    event = pool._take_event()
    timeout = pool._take_timeout()
    assert type(event) is Event
    assert type(timeout) is Timeout
