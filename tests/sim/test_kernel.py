"""Kernel semantics: ordering, time, run-until."""

import pytest

from repro.sim import Simulator
from repro.sim.events import UnhandledFailure


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_time(sim):
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield sim.timeout(2.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]


def test_events_fire_in_time_order(sim):
    order = []
    for delay in (3.0, 1.0, 2.0):
        def proc(d=delay):
            yield sim.timeout(d)
            order.append(d)
        sim.process(proc())
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_fifo_among_simultaneous_events(sim):
    order = []
    for tag in range(5):
        def proc(t=tag):
            yield sim.timeout(1.0)
            order.append(t)
        sim.process(proc())
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_early(sim):
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(proc())
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_event_returns_value(sim):
    def proc():
        yield sim.timeout(2.0)
        return "done"

    result = sim.run(sim.process(proc()))
    assert result == "done"
    assert sim.now == 2.0


def test_run_until_event_raises_failure(sim):
    def proc():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        sim.run(sim.process(proc()))


def test_run_dry_before_event_raises(sim):
    never = sim.event()
    with pytest.raises(RuntimeError, match="ran dry"):
        sim.run(never)


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_peek_shows_next_event_time(sim):
    assert sim.peek() is None
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_unhandled_process_failure_surfaces(sim):
    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("unseen")

    sim.process(proc())
    with pytest.raises(UnhandledFailure):
        sim.run()


def test_nested_processes_return_values(sim):
    def inner():
        yield sim.timeout(1.0)
        return 42

    def outer():
        value = yield sim.process(inner())
        return value + 1

    assert sim.run(sim.process(outer())) == 43


def test_yield_from_chains_through_generators(sim):
    def helper():
        yield sim.timeout(2.0)
        return "deep"

    def outer():
        value = yield from helper()
        return value

    assert sim.run(sim.process(outer())) == "deep"
    assert sim.now == 2.0


def test_process_yielding_non_event_fails(sim):
    def proc():
        yield 42

    with pytest.raises(RuntimeError, match="not an Event"):
        sim.run(sim.process(proc()))
