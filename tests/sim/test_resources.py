"""Locks and stores."""

import pytest

from repro.sim import Lock, Store


def test_lock_mutual_exclusion(sim):
    lock = Lock(sim)
    trace = []

    def worker(tag, hold):
        yield lock.acquire()
        trace.append(("in", tag, sim.now))
        yield sim.timeout(hold)
        trace.append(("out", tag, sim.now))
        lock.release()

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.run()
    assert trace == [("in", "a", 0.0), ("out", "a", 2.0),
                     ("in", "b", 2.0), ("out", "b", 3.0)]


def test_lock_fifo_order(sim):
    lock = Lock(sim)
    order = []

    def worker(tag):
        yield lock.acquire()
        order.append(tag)
        yield sim.timeout(1.0)
        lock.release()

    for tag in range(4):
        sim.process(worker(tag))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_release_unlocked_raises(sim):
    with pytest.raises(RuntimeError):
        Lock(sim).release()


def test_store_put_then_get(sim):
    store = Store(sim)
    store.put("x")

    def getter():
        value = yield store.get()
        return value

    assert sim.run(sim.process(getter())) == "x"


def test_store_get_blocks_until_put(sim):
    store = Store(sim)

    def getter():
        value = yield store.get()
        return (value, sim.now)

    def putter():
        yield sim.timeout(3.0)
        store.put("late")

    proc = sim.process(getter())
    sim.process(putter())
    assert sim.run(proc) == ("late", 3.0)


def test_store_fifo_items_and_getters(sim):
    store = Store(sim)
    results = []

    def getter(tag):
        value = yield store.get()
        results.append((tag, value))

    sim.process(getter("g1"))
    sim.process(getter("g2"))

    def putter():
        yield sim.timeout(1.0)
        store.put("first")
        store.put("second")

    sim.process(putter())
    sim.run()
    assert results == [("g1", "first"), ("g2", "second")]


def test_store_len_and_clear(sim):
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    store.clear()
    assert len(store) == 0
