"""Differential scheduler harness: prove two queue kinds dispatch alike.

The golden digests pin the obs timeline of eleven scenarios; this
harness is the finer instrument behind them.  It runs the *same*
scenario once per scheduler kind (:mod:`repro.sim.queue`) and
byte-compares two witnesses:

* **dispatch tier** — every single dispatch, as the canonical line
  ``(when, priority, seq, event-class)`` read through
  ``Simulator.peek_entry()`` immediately before the event runs.  Any
  ordering disagreement between queue kinds — a swapped tie, an
  out-of-order bucket, a mis-sliced timeout — shows up at the exact
  event index where it happens.  The instance-level ``step`` override
  routes the run through the kernel's generic loop, so this tier also
  exercises the plain queue interface of whatever kind is under test
  (including deliberately broken ones; see ``broken_queues.py``).
* **timeline tier** — the obs event timeline, captured *without* any
  probe, so the kernel takes its per-kind inlined fast loop.  This is
  the tier that proves the fast paths themselves — not just the
  ``pop()`` interface — are schedule-identical.

Scenario specs are the ``repro.analysis.divergence`` syntax
(``obs:<name>``, ``faults:<name>``, ``mod:<module>:<function>``) plus
``perf:<name>`` for the catalogued macro-scenarios, or a bare callable
taking ``observatory=``.  Usable as a script for the CI
``queue-differential`` and ``pool-differential`` smoke jobs::

    PYTHONPATH=src python tests/sim/differential.py \
        --scenario obs:trickle --scenario perf:fleet-32 \
        --queue heap --queue calendar --digest

    PYTHONPATH=src python tests/sim/differential.py \
        --scenario obs:trickle --queue calendar \
        --pooling off --pooling on

``--digest`` streams each dispatch line into a sha256 instead of
keeping it (fleet-scale runs dispatch millions of events); divergence
is still detected, just without the surrounding context lines.

``--pooling`` (repeatable) extends the comparison to the object-pool
axis (:mod:`repro.sim.pool`): the grid becomes every ``kind/mode``
cell, compared pairwise against the first cell.  Pooling is
schedule-identical *by construction* — pooled primitives draw their
sequence numbers at the same program points as the unpooled
allocations, and the batched link lane pins each wakeup to the exact
absolute due time the unpooled per-packet timeout would use — so both
tiers compare full lines with no canonicalisation, ties included.
"""

import hashlib
import json
import sys
from dataclasses import dataclass, field

from repro.analysis.divergence import (
    _canonical,
    compare_timelines,
    resolve_scenario,
)
from repro.sim import kernel
from repro.sim.pool import use_pooling
from repro.sim.queue import use_kind

DEFAULT_KINDS = ("heap", "calendar")
DEFAULT_TIERS = ("dispatch", "timeline")
#: The pooling grid the CI pool-differential job sweeps; ``None`` in
#: diff_scenario means "session default only" (the pre-pooling axis
#: behaviour, plain kind labels).
DEFAULT_POOLINGS = ("off", "on")


class _keep_pooling:
    """No-op stand-in for ``use_pooling`` when no mode is forced."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


def _pooling_ctx(pooling):
    return _keep_pooling() if pooling is None else use_pooling(pooling)


def resolve(spec):
    """Like divergence's resolver, plus ``perf:<name>`` and callables."""
    if callable(spec):
        return spec
    if isinstance(spec, str) and spec.startswith("perf:"):
        from repro.perf.scenarios import run_macro_scenario
        name = spec[len("perf:"):]
        return lambda observatory: run_macro_scenario(
            name, observatory=observatory)
    return resolve_scenario(spec)


class DispatchProbe:
    """Record every dispatch of every Simulator built inside ``with``.

    Patches ``Simulator.__init__`` (KernelTally-style) to install an
    instance-level ``step`` wrapper that logs the scheduler's next
    entry — via the queue-neutral ``peek_entry()`` — before stepping.
    With ``digest=True`` the lines fold into a sha256 as they stream;
    otherwise they are kept for context reporting.
    """

    def __init__(self, digest=False):
        self.lines = [] if not digest else None
        self._hash = hashlib.sha256()
        self.count = 0
        self._original = None

    def __enter__(self):
        self._original = kernel.Simulator.__init__
        probe = self
        original = self._original

        def probed_init(sim, *args, **kwargs):
            original(sim, *args, **kwargs)
            original_step = sim.step

            def probed_step():
                entry = sim.peek_entry()
                line = "%r %r %r %s" % (entry[0], entry[1], entry[2],
                                        type(entry[3]).__name__)
                probe.count += 1
                if probe.lines is not None:
                    probe.lines.append(line)
                else:
                    probe._hash.update(line.encode("utf-8"))
                    probe._hash.update(b"\n")
                original_step()

            sim.step = probed_step

        kernel.Simulator.__init__ = probed_init
        return self

    def __exit__(self, *exc_info):
        kernel.Simulator.__init__ = self._original
        return False

    def witness(self):
        """``(comparable, count)``: lines, or the streamed digest."""
        if self.lines is not None:
            return list(self.lines), self.count
        return [self._hash.hexdigest()], self.count


def capture_dispatches(spec, kind, digest=False, pooling=None):
    """Dispatch-tier witness of ``spec`` under ``kind`` × ``pooling``.

    ``pooling`` None leaves the session default in place; otherwise it
    names a registered pooling kind (including the planted-bug pools
    of ``broken_pools.py``).
    """
    run = resolve(spec)
    with use_kind(kind), _pooling_ctx(pooling), \
            DispatchProbe(digest=digest) as probe:
        run(observatory=None)
    return probe.witness()


def capture_obs_timeline(spec, kind, pooling=None):
    """Timeline-tier witness (fast-path run) under ``kind`` × ``pooling``."""
    from repro.obs import Observatory
    run = resolve(spec)
    with use_kind(kind), _pooling_ctx(pooling):
        observatory = Observatory()
        run(observatory=observatory)
        events = [dict(event.to_row())
                  for event in observatory.trace.events]
    lines = [_canonical(event) for event in events]
    return lines, len(lines)


@dataclass
class DifferentialReport:
    """Outcome of one scenario × tier comparison across queue kinds."""

    scenario: str
    kinds: tuple
    tier: str
    identical: bool
    events_a: int
    events_b: int
    first_divergence: int = None
    context_a: list = field(default_factory=list)
    context_b: list = field(default_factory=list)

    def format(self):
        label = "%s [%s]" % (self.scenario, self.tier)
        versus = " vs ".join(self.kinds)
        if self.identical:
            return ("queue-differential %s: %d events byte-identical "
                    "(%s)" % (label, self.events_a, versus))
        lines = [
            "queue-differential %s: DIVERGENCE at event %s (%s)"
            % (label, self.first_divergence, versus),
            "  %s: %d events; %s: %d events"
            % (self.kinds[0], self.events_a, self.kinds[1],
               self.events_b),
            "  --- %s context ---" % self.kinds[0],
        ]
        lines += ["  " + line for line in self.context_a]
        lines.append("  --- %s context ---" % self.kinds[1])
        lines += ["  " + line for line in self.context_b]
        return "\n".join(lines)


def _compare(scenario, kinds, tier, a, b, context):
    (lines_a, count_a), (lines_b, count_b) = a, b
    index, ctx_a, ctx_b = compare_timelines(lines_a, lines_b,
                                            context=context)
    # In digest mode the "lines" are one hexdigest each, so a
    # divergence index is meaningless; keep the honest event counts.
    identical = index is None and count_a == count_b
    return DifferentialReport(
        scenario=scenario if isinstance(scenario, str)
        else getattr(scenario, "__name__", repr(scenario)),
        kinds=kinds, tier=tier, identical=identical,
        events_a=count_a, events_b=count_b,
        first_divergence=None if identical else index,
        context_a=[] if identical else ctx_a,
        context_b=[] if identical else ctx_b)


def diff_scenario(spec, kinds=DEFAULT_KINDS, tiers=DEFAULT_TIERS,
                  context=3, digest=False, poolings=None):
    """Run ``spec`` under each kind × pooling cell; compare per tier.

    Returns a list of :class:`DifferentialReport`, one per tier, each
    comparing the first cell (the reference) against every other cell
    pairwise — stopping a tier at its first diverging cell.

    ``poolings`` None compares queue kinds under the session-default
    pooling, with plain kind labels (the original behaviour).  A tuple
    of pooling kinds widens the comparison to the full grid, with
    cells labelled ``kind/mode`` (e.g. ``calendar/on``).
    """
    if poolings is None:
        cells = [(kind, None, kind) for kind in kinds]
    else:
        cells = [(kind, pooling, "%s/%s" % (kind, pooling))
                 for kind in kinds for pooling in poolings]
    reports = []
    for tier in tiers:
        if tier == "dispatch":
            capture = lambda kind, pooling: capture_dispatches(  # noqa: E731
                spec, kind, digest=digest, pooling=pooling)
        elif tier == "timeline":
            capture = lambda kind, pooling: capture_obs_timeline(  # noqa: E731
                spec, kind, pooling=pooling)
        else:
            raise ValueError("unknown tier %r" % (tier,))
        ref_kind, ref_pooling, ref_label = cells[0]
        reference = capture(ref_kind, ref_pooling)
        for kind, pooling, label in cells[1:]:
            report = _compare(spec, (ref_label, label), tier, reference,
                              capture(kind, pooling), context)
            reports.append(report)
            if not report.identical:
                break
    return reports


def main(argv=None):
    """Script entry point for the CI smoke job.  Exit 0 iff identical."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="differential",
        description="Byte-compare dispatch schedules across queue kinds")
    parser.add_argument("--scenario", action="append", default=None,
                        help="obs:<n> | faults:<n> | mod:<m>:<f> | "
                             "perf:<n>; repeatable "
                             "(default: obs:trickle)")
    parser.add_argument("--queue", action="append", default=None,
                        help="queue kinds to compare, first is the "
                             "reference (default: heap calendar)")
    parser.add_argument("--pooling", action="append", default=None,
                        help="pooling kinds (repro.sim.pool) to sweep; "
                             "repeatable, widening the comparison to "
                             "the kind x pooling grid (default: the "
                             "session default mode only)")
    parser.add_argument("--tier", action="append", default=None,
                        choices=("dispatch", "timeline"),
                        help="witness tiers to run (default: both)")
    parser.add_argument("--digest", action="store_true",
                        help="stream dispatch lines into a sha256 "
                             "(for fleet-scale scenarios)")
    parser.add_argument("--context", type=int, default=3)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    scenarios = args.scenario or ["obs:trickle"]
    kinds = tuple(args.queue or DEFAULT_KINDS)
    tiers = tuple(args.tier or DEFAULT_TIERS)
    poolings = tuple(args.pooling) if args.pooling else None
    failed = False
    for spec in scenarios:
        for report in diff_scenario(spec, kinds=kinds, tiers=tiers,
                                    context=args.context,
                                    digest=args.digest,
                                    poolings=poolings):
            if args.json:
                print(json.dumps({
                    "scenario": report.scenario,
                    "tier": report.tier,
                    "kinds": list(report.kinds),
                    "identical": report.identical,
                    "events": [report.events_a, report.events_b],
                    "first_divergence": report.first_divergence,
                }, sort_keys=True))
            else:
                print(report.format())
            failed = failed or not report.identical
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
