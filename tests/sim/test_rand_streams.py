"""Golden-value regression for the named random streams.

``derive_rng`` seeds ``random.Random`` with a joined string, and every
benchmark table, fleet population, and ``--seed`` universe in the repo
is downstream of those sequences.  CPython guarantees the Mersenne
Twister sequence for a given seed across versions, so these pins only
move if someone changes the seed-string derivation itself — which is
exactly the change they exist to catch.
"""

from hypothesis import given, strategies as st

from repro.sim import RandomStreams
from repro.sim.rand import derive_rng

DRAWS = 8


def draws(rng, n=DRAWS):
    return [rng.getrandbits(32) for _ in range(n)]


#: First 8 ``getrandbits(32)`` draws of streams real subsystems use.
#: Regenerate (only after an intentional derivation change) with:
#:   python -c "from repro.sim.rand import derive_rng;
#:              print([derive_rng(*parts).getrandbits(32) ...])"
GOLDEN_DERIVED = {
    ("fleetd", "fleet-8", 0, 0): [
        1832018607, 2516695690, 2307025686, 90072747,
        1314169706, 4237425191, 2453656975, 3113730993],
    ("fleetd", "fleet-8", 0, 1): [
        3886598806, 630532516, 1095761789, 383701309,
        3267658468, 1241483664, 1639471131, 3585001498],
    ("obs", "trickle", 1): [
        2585114896, 674925973, 1977366730, 3526794235,
        2716865569, 1675775403, 182580537, 623468470],
    ("faults", "smoke", 1): [
        383930861, 2359374621, 3801511970, 2304489320,
        3190757155, 1214478007, 3658714206, 3636595678],
}

GOLDEN_STREAMS = {
    (0, "loss"): [
        2989383808, 1149800863, 161334456, 3522576135,
        4159769334, 3164095892, 2581956590, 2611369315],
    (0, "think"): [
        3259410591, 1090541337, 2828039553, 558942002,
        2878050796, 1809186478, 452580718, 179903057],
}


def test_derive_rng_sequences_are_pinned():
    for parts, expected in GOLDEN_DERIVED.items():
        assert draws(derive_rng(*parts)) == expected, parts


def test_random_streams_sequences_are_pinned():
    for (seed, name), expected in GOLDEN_STREAMS.items():
        assert draws(RandomStreams(seed).stream(name)) == expected, name


def test_derive_rng_equals_joined_string_seed():
    # The documented contract: parts join with "::"; historical string
    # seeders must keep byte-identical sequences.
    import random
    assert draws(derive_rng("hoard", "user1", 3)) == \
        draws(random.Random("hoard::user1::3"))


names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters=":"),
    min_size=1, max_size=12)


@given(st.lists(names, min_size=2, max_size=6, unique=True),
       st.integers(min_value=0, max_value=2**16))
def test_distinct_stream_names_give_distinct_prefixes(stream_names, seed):
    streams = RandomStreams(seed)
    prefixes = [tuple(draws(streams.stream(name)))
                for name in stream_names]
    assert len(set(prefixes)) == len(prefixes)


@given(st.lists(names, min_size=2, max_size=6, unique=True),
       st.integers(min_value=0, max_value=2**16))
def test_distinct_derivations_give_distinct_prefixes(parts, seed):
    prefixes = [tuple(draws(derive_rng("t", part, seed)))
                for part in parts]
    assert len(set(prefixes)) == len(prefixes)


@given(names, st.integers(min_value=0, max_value=2**16))
def test_streams_do_not_interleave(name, seed):
    # Consuming one stream never perturbs a sibling.
    lone = draws(RandomStreams(seed).stream(name))
    shared = RandomStreams(seed)
    shared.stream(name + "!").random()
    assert draws(shared.stream(name)) == lone
