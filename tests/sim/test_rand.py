"""Deterministic named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(7).stream("loss")
    b = RandomStreams(7).stream("loss")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent():
    streams = RandomStreams(7)
    loss = streams.stream("loss")
    first_without_interleaving = RandomStreams(7).stream("think").random()
    loss.random()  # consuming one stream...
    assert streams.stream("think").random() == first_without_interleaving


def test_different_names_differ():
    streams = RandomStreams(0)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_getitem_alias():
    streams = RandomStreams(3)
    assert streams["x"] is streams.stream("x")
