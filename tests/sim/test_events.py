"""Event lifecycle, conditions, and interrupts."""

import pytest

from repro.sim import Interrupt, Simulator


def test_event_succeed_delivers_value(sim):
    event = sim.event()

    def trigger():
        yield sim.timeout(1.0)
        event.succeed("payload")

    def waiter():
        value = yield event
        return value

    sim.process(trigger())
    assert sim.run(sim.process(waiter())) == "payload"


def test_event_fail_throws_into_waiter(sim):
    event = sim.event()

    def trigger():
        yield sim.timeout(1.0)
        event.fail(KeyError("nope"))

    def waiter():
        try:
            yield event
        except KeyError:
            return "caught"

    sim.process(trigger())
    assert sim.run(sim.process(waiter())) == "caught"


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_fail_requires_exception(sim):
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_late_subscriber_still_notified(sim):
    event = sim.event()
    event.succeed("early")
    sim.run()
    assert event.processed
    seen = []
    event.subscribe(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["early"]


def test_any_of_fires_on_first(sim):
    def waiter():
        first = sim.timeout(1.0, value="fast")
        second = sim.timeout(5.0, value="slow")
        results = yield sim.any_of([first, second])
        return list(results.values())

    assert sim.run(sim.process(waiter())) == ["fast"]
    assert sim.now == 1.0


def test_all_of_waits_for_every_event(sim):
    def waiter():
        events = [sim.timeout(d) for d in (1.0, 3.0, 2.0)]
        yield sim.all_of(events)
        return sim.now

    assert sim.run(sim.process(waiter())) == 3.0


def test_empty_conditions_fire_immediately(sim):
    def waiter():
        yield sim.all_of([])
        yield sim.any_of([])
        return sim.now

    assert sim.run(sim.process(waiter())) == 0.0


def test_interrupt_wakes_sleeping_process(sim):
    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "overslept"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt("wake up")

    sim.process(interrupter())
    assert sim.run(proc) == ("interrupted", "wake up", 2.0)


def test_interrupt_finished_process_is_noop(sim):
    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("too late")
    sim.run()
    assert proc.ok


def test_interrupted_event_keeps_running(sim):
    """The event a process was waiting on is unaffected by interrupt."""
    shared = sim.timeout(5.0, value="fired")

    def victim():
        try:
            yield shared
        except Interrupt:
            return "out"

    def bystander():
        value = yield shared
        return value

    proc = sim.process(victim())

    def interrupter():
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(interrupter())
    other = sim.process(bystander())
    assert sim.run(other) == "fired"
    assert proc.value == "out"


def test_process_is_alive_tracking(sim):
    def proc():
        yield sim.timeout(3.0)

    process = sim.process(proc())
    assert process.is_alive
    sim.run()
    assert not process.is_alive
