"""Deliberately broken schedulers: proof the differential harness bites.

A verification harness is only trustworthy if it demonstrably fails on
defective inputs (the planted-corruption style of
``tests/ckpt/test_verify.py``).  These queue kinds each violate the
scheduler contract in one realistic way; ``test_differential.py``
asserts the harness pinpoints both.

Why the bucket bug is an index *parity swap* rather than a literal
``+1``: in the calendar design, any *monotone* slice map preserves
order across slices (a uniform off-by-one relabels every slice but
reorders nothing — the per-slice heaps still restore total order).
The bug that actually bites is a **non-monotone** map, where
neighbouring slices trade places and an entry in the higher time slice
can pop before a lower one.  That is exactly what a real calendar
queue suffers when its index math breaks at a bucket boundary
(e.g. a floor-vs-round mismatch at negative offsets or a width-resize
applied to only half the table).
"""

from bisect import insort
from heapq import heappush

from repro.sim.queue import (
    OVERFLOW_SPAN,
    CalendarQueue,
    register_kind,
)


class OffByOneBucketQueue(CalendarQueue):
    """Calendar queue whose slice index has its lowest bit flipped.

    Adjacent time slices swap positions in the ``_active`` order, so
    entries roughly one bucket-width apart can dispatch out of time
    order.  Within a slice (and for at-instant and overflow entries)
    everything still behaves, which is what makes this the sort of bug
    only a differential run catches.
    """

    kind = "broken-bucket"

    __slots__ = ()

    def push(self, entry):
        # The production push inlines its future-tier logic for speed;
        # route through the overridable _push_future so the planted
        # bug below actually governs bucket placement.
        if entry[0] == self._instant:
            if entry[1]:
                self._normal.append(entry)
            else:
                self._urgent.append(entry)
        else:
            self._push_future(entry)

    def _push_future(self, entry):
        when = entry[0]
        width = self._width
        if not (when - self._instant <= OVERFLOW_SPAN * width):
            heappush(self._overflow, entry)
            return
        index = int(when / width) ^ 1       # the planted bug
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heappush(self._active, index)
        else:
            heappush(bucket, entry)
        self._future += 1
        # No auto-resize: keep the width (and the bug) stable.


class TieOrderViolatingQueue(CalendarQueue):
    """Calendar queue that runs same-instant urgent ties LIFO.

    ``(when, priority)`` order is intact; only the ``seq`` tie-break
    among urgent events at the current instant is reversed.  Two
    processes started at the same instant bootstrap in reverse
    creation order — precisely the class of bug FIFO tie-breaking
    exists to exclude, and invisible to any check that only looks at
    dispatch *times*.
    """

    kind = "broken-ties"

    __slots__ = ()

    def push(self, entry):
        if entry[0] == self._instant:
            if entry[1]:
                self._normal.append(entry)
            else:
                self._urgent.appendleft(entry)      # the planted bug
        elif entry[0] < self._limit:
            # Mirror the production rung branch so tie order stays the
            # *only* defect this fixture plants.
            insort(self._ready, entry, self._ready_pos)
        else:
            self._push_future(entry)


def register_broken_kinds():
    """Make the planted-bug kinds buildable by name via make_queue."""
    register_kind(OffByOneBucketQueue.kind, OffByOneBucketQueue)
    register_kind(TieOrderViolatingQueue.kind, TieOrderViolatingQueue)
