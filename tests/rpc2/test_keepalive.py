"""The shared liveness registry."""

from repro.rpc2 import LivenessRegistry
from repro.sim import Simulator


def test_unknown_peer_is_silent_forever(sim):
    registry = LivenessRegistry(sim)
    assert registry.silent_for("nowhere") == float("inf")
    assert not registry.is_reachable("nowhere")


def test_heard_from_marks_reachable(sim):
    registry = LivenessRegistry(sim)
    registry.heard_from("server")
    assert registry.is_reachable("server")
    assert registry.silent_for("server") == 0.0


def test_silence_accumulates_with_time(sim):
    registry = LivenessRegistry(sim)
    registry.heard_from("server")

    def later():
        yield sim.timeout(42.0)
        return registry.silent_for("server")

    assert sim.run(sim.process(later())) == 42.0


def test_mark_unreachable_overrides(sim):
    registry = LivenessRegistry(sim)
    registry.heard_from("server")
    registry.mark_unreachable("server")
    assert not registry.is_reachable("server")
    # But hearing from it again restores reachability.
    registry.heard_from("server")
    assert registry.is_reachable("server")


def test_peers_are_independent(sim):
    registry = LivenessRegistry(sim)
    registry.heard_from("a")
    registry.mark_unreachable("b")
    assert registry.is_reachable("a")
    assert not registry.is_reachable("b")
