"""RPC2 endpoint behaviour: calls, retransmission, bulk, liveness."""

import pytest

from repro.net import ETHERNET, MODEM, Network
from repro.net.host import IDEAL, LAPTOP_1995, SERVER_1995
from repro.rpc2 import ConnectionDead, RemoteError, Rpc2Endpoint
from repro.sim import RandomStreams, Simulator


def build(profile=ETHERNET, loss=0.0, seed=0,
          client_host=LAPTOP_1995, server_host=SERVER_1995):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    link = net.add_link("c", "s", profile=profile, loss_rate=loss)
    client = Rpc2Endpoint(sim, net, "c", 2432, client_host)
    server = Rpc2Endpoint(sim, net, "s", 2432, server_host)
    return sim, link, client, server


def call(sim, conn, *args, **kwargs):
    return sim.run(conn.call(*args, **kwargs))


def test_simple_call_roundtrip():
    sim, _link, client, server = build()
    server.register("Echo", lambda ctx, args: {"echo": args})
    conn = client.connect("s")
    result = call(sim, conn, "Echo", {"x": 1})
    assert result.result == {"echo": {"x": 1}}


def test_generator_handler_can_wait():
    sim, _link, client, server = build()

    def handler(ctx, args):
        yield ctx.sim.timeout(0.5)
        return "slow-ok"

    server.register("Slow", handler)
    conn = client.connect("s")
    result = call(sim, conn, "Slow")
    assert result.result == "slow-ok"
    assert sim.now >= 0.5


def test_unknown_procedure_raises_remote_error():
    sim, _link, client, server = build()
    conn = client.connect("s")
    with pytest.raises(RemoteError):
        call(sim, conn, "NoSuch")


def test_bulk_fetch_transfers_bytes():
    sim, _link, client, server = build()
    server.register("Fetch", lambda ctx, args: ("meta", args["n"]))
    conn = client.connect("s")
    result = call(sim, conn, "Fetch", {"n": 50_000})
    assert result.result == "meta"
    assert result.bulk_bytes == 50_000


def test_bulk_store_delivers_bytes_to_handler():
    sim, _link, client, server = build()
    server.register("Store", lambda ctx, args: {"got": ctx.received_bytes})
    conn = client.connect("s")
    result = call(sim, conn, "Store", {}, send_size=30_000)
    assert result.result["got"] == 30_000


def test_dead_server_raises_connection_dead():
    sim, link, client, server = build()
    link.set_up(False)
    conn = client.connect("s")
    with pytest.raises(ConnectionDead):
        sim.run(conn.call("Echo", max_retries=2))
    assert not client.liveness.is_reachable("s")


def test_lossy_link_still_completes_calls():
    sim, _link, client, server = build(loss=0.05, seed=3)
    server.register("Echo", lambda ctx, args: args)
    conn = client.connect("s")
    for i in range(20):
        assert call(sim, conn, "Echo", i).result == i


def test_duplicate_requests_not_reexecuted():
    sim, _link, client, server = build(loss=0.15, seed=5)
    counter = {"runs": 0}

    def handler(ctx, args):
        counter["runs"] += 1
        yield ctx.sim.timeout(0.2)
        return counter["runs"]

    server.register("Once", handler)
    conn = client.connect("s")
    for expected in (1, 2, 3, 4, 5):
        result = call(sim, conn, "Once")
        assert result.result == expected
    assert counter["runs"] == 5


def test_calls_on_one_connection_serialize():
    sim, _link, client, server = build()

    def handler(ctx, args):
        yield ctx.sim.timeout(1.0)
        return ctx.sim.now

    server.register("Slow", handler)
    conn = client.connect("s")

    def two_calls():
        first = conn.call("Slow")
        second = conn.call("Slow")
        a = yield first
        b = yield second
        return a.result, b.result

    a, b = sim.run(sim.process(two_calls()))
    assert b - a >= 1.0


def test_separate_connections_run_concurrently():
    sim, _link, client, server = build(client_host=IDEAL,
                                       server_host=IDEAL)

    def handler(ctx, args):
        yield ctx.sim.timeout(1.0)
        return ctx.sim.now

    server.register("Slow", handler)
    conn_a = client.connect("s")
    conn_b = client.connect("s")

    def two_calls():
        first = conn_a.call("Slow")
        second = conn_b.call("Slow")
        a = yield first
        b = yield second
        return a.result, b.result

    a, b = sim.run(sim.process(two_calls()))
    assert abs(b - a) < 0.5


def test_ping_measures_rtt_and_liveness():
    sim, _link, client, server = build()
    rtt = sim.run(client.ping("s"))
    assert 0 < rtt < 0.1
    assert client.liveness.is_reachable("s")


def test_padded_ping_seeds_bandwidth_estimate():
    sim, _link, client, server = build(profile=MODEM)
    sim.run(client.ping("s"))
    sim.run(client.ping("s", pad=4096))
    bw = client.estimator("s").bandwidth.bits_per_sec
    assert bw is not None
    assert 4_000 < bw < 12_000


def test_ping_to_dead_peer_raises():
    sim, link, client, server = build()
    link.set_up(False)
    with pytest.raises(ConnectionDead):
        sim.run(client.ping("s", timeout=1.0))


def test_every_packet_refreshes_shared_liveness():
    """Bulk traffic keeps the peer alive without extra keepalives."""
    sim, _link, client, server = build()
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn = client.connect("s")
    call(sim, conn, "Fetch", {"n": 100_000})
    assert client.liveness.silent_for("s") < 1.0
    assert server.liveness.silent_for("c") < 1.0


def test_modem_transfer_time_is_wire_limited():
    sim, _link, client, server = build(profile=MODEM)
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn = client.connect("s")
    start = sim.now
    call(sim, conn, "Fetch", {"n": 96_000})
    elapsed = sim.now - start
    # 96 KB at ~7 Kb/s goodput is roughly 110 s; allow generous slack.
    assert 90 < elapsed < 200
