"""Transport edge cases: outages mid-call, busy quenching, recovery."""

import pytest

from repro.net import ETHERNET, MODEM, Network
from repro.net.host import IDEAL, LAPTOP_1995, SERVER_1995
from repro.rpc2 import ConnectionDead, Rpc2Endpoint
from repro.sim import RandomStreams, Simulator


def build(profile=ETHERNET, loss=0.0, seed=0):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    link = net.add_link("c", "s", profile=profile, loss_rate=loss)
    client = Rpc2Endpoint(sim, net, "c", 2432, LAPTOP_1995)
    server = Rpc2Endpoint(sim, net, "s", 2432, SERVER_1995)
    return sim, link, client, server


def test_call_survives_brief_outage():
    sim, link, client, server = build()
    server.register("Echo", lambda ctx, args: args)
    conn = client.connect("s")
    link.outage(after=0.0, duration=1.0)

    def scenario():
        yield sim.timeout(0.5)      # request would be lost
        result = yield conn.call("Echo", "still there?")
        return (result.result, sim.now)

    value, when = sim.run(sim.process(scenario()))
    assert value == "still there?"
    assert when > 1.0               # retransmission after the outage


def test_busy_prevents_duplicate_execution_of_slow_call():
    sim, link, client, server = build(loss=0.10, seed=7)
    runs = {"count": 0}

    def slow(ctx, args):
        runs["count"] += 1
        yield ctx.sim.timeout(10.0)
        return "done"

    server.register("Slow", slow)
    conn = client.connect("s")
    result = sim.run(conn.call("Slow"))
    assert result.result == "done"
    assert runs["count"] == 1


def test_reply_loss_recovered_from_cache():
    """A deterministic lost reply: the server resends its cached one."""
    sim, link, client, server = build()
    runs = {"count": 0}

    def handler(ctx, args):
        runs["count"] += 1
        return "once"

    server.register("Once", handler)
    conn = client.connect("s")

    # Cut the server->client direction exactly while the reply flies.
    def chop():
        yield sim.timeout(0.001)
        link.backward.up = False
        yield sim.timeout(1.0)
        link.backward.up = True

    sim.process(chop())
    result = sim.run(conn.call("Once"))
    assert result.result == "once"
    assert runs["count"] == 1


def test_bulk_fetch_through_interrupted_link():
    sim, link, client, server = build(profile=MODEM)
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn = client.connect("s")
    # 40 KB at ~7 Kb/s ~ 46 s; a 10 s outage in the middle.
    link.outage(after=15.0, duration=10.0)
    result = sim.run(conn.call("Fetch", {"n": 40_000}))
    assert result.bulk_bytes == 40_000


def test_concurrent_transfers_share_the_wire_fairly():
    sim = Simulator()
    net = Network(sim)
    net.add_link("c", "s", profile=MODEM)
    client = Rpc2Endpoint(sim, net, "c", 2432, IDEAL,
                          default_bps=9600)
    server = Rpc2Endpoint(sim, net, "s", 2432, IDEAL,
                          default_bps=9600)
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn_a = client.connect("s")
    conn_b = client.connect("s")

    def both():
        first = conn_a.call("Fetch", {"n": 20_000})
        second = conn_b.call("Fetch", {"n": 20_000})
        yield sim.all_of([first, second])
        return sim.now

    elapsed = sim.run(sim.process(both()))
    # Two 20 KB transfers over one ~7 Kb/s wire: roughly the time of a
    # 40 KB transfer (shared), not of a single 20 KB one.
    solo = 20_000 * 10 / 9600
    assert elapsed > 1.6 * solo


def test_estimator_reset_clears_state():
    sim, link, client, server = build()
    estimator = client.estimator("s")
    estimator.observe_rtt(0.5)
    estimator.observe_transfer(10_000, 1.0)
    estimator.reset()
    assert estimator.rtt.srtt is None
    assert estimator.bandwidth.bytes_per_sec is None
