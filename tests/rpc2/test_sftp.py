"""SFTP engine details: fragmentation arithmetic, loss recovery, aborts."""

import pytest

from repro.net import ETHERNET, Network
from repro.net.host import IDEAL
from repro.rpc2 import Rpc2Endpoint, TransferAborted
from repro.rpc2.sftp import SftpSender, packet_count
from repro.sim import RandomStreams, Simulator


def test_packet_count_arithmetic():
    assert packet_count(0) == 1
    assert packet_count(1) == 1
    assert packet_count(1024) == 1
    assert packet_count(1025) == 2
    assert packet_count(10 * 1024) == 10


def build(loss=0.0, seed=0):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    link = net.add_link("c", "s", profile=ETHERNET, loss_rate=loss)
    client = Rpc2Endpoint(sim, net, "c", 2432, IDEAL)
    server = Rpc2Endpoint(sim, net, "s", 2432, IDEAL)
    return sim, link, client, server


def test_last_packet_size_is_remainder():
    sim, _l, client, _s = build()
    sender = SftpSender(sim, client, "s", ("t",), size=2500)
    assert sender.total == 3
    assert sender._packet_size(0) == 1024
    assert sender._packet_size(2) == 452


@pytest.mark.parametrize("loss", [0.0, 0.02, 0.10])
def test_transfer_completes_under_loss(loss):
    sim, _link, client, server = build(loss=loss, seed=11)
    server.register("Store", lambda ctx, args: {"got": ctx.received_bytes})
    conn = client.connect("s")
    result = sim.run(conn.call("Store", {}, send_size=200_000))
    assert result.result["got"] == 200_000


def test_transfer_aborts_when_link_dies_midway():
    sim, link, client, server = build()
    server.register("Store", lambda ctx, args: {"got": ctx.received_bytes})
    conn = client.connect("s")

    def chop():
        yield sim.timeout(0.05)
        link.set_up(False)

    sim.process(chop())
    from repro.rpc2 import ConnectionDead
    with pytest.raises(ConnectionDead):
        sim.run(conn.call("Store", {}, send_size=5_000_000,
                          max_retries=2))


def test_large_transfer_bandwidth_estimate_reasonable():
    sim, _link, client, server = build()
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn = client.connect("s")
    sim.run(conn.call("Fetch", {"n": 1_000_000}))
    bw = server.estimator("c").bandwidth.bits_per_sec
    # Wire-limited (IDEAL hosts): should be within 2x of 10 Mb/s.
    assert bw is not None and bw > 4e6


def test_tiny_transfer_single_packet():
    sim, _link, client, server = build()
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    conn = client.connect("s")
    result = sim.run(conn.call("Fetch", {"n": 1}))
    assert result.bulk_bytes == 1
