"""RTT and bandwidth estimation."""

import pytest

from repro.rpc2 import BandwidthEstimator, NetworkEstimator, RttEstimator


def test_initial_rto_before_samples():
    estimator = RttEstimator(initial_rto=2.0)
    assert estimator.rto == 2.0


def test_first_sample_sets_srtt():
    estimator = RttEstimator()
    estimator.observe(0.1)
    assert estimator.srtt == pytest.approx(0.1)
    assert estimator.rttvar == pytest.approx(0.05)


def test_rto_tracks_srtt_plus_variance():
    estimator = RttEstimator(min_rto=0.0)
    for _ in range(50):
        estimator.observe(0.2)
    assert estimator.srtt == pytest.approx(0.2, rel=1e-3)
    # Variance decays toward zero on constant samples.
    assert estimator.rto == pytest.approx(0.2, abs=0.05)


def test_rto_bounds():
    estimator = RttEstimator(min_rto=0.3, max_rto=60.0)
    estimator.observe(0.001)
    assert estimator.rto == 0.3
    estimator2 = RttEstimator(min_rto=0.3, max_rto=60.0)
    estimator2.observe(500.0)
    assert estimator2.rto == 60.0


def test_negative_samples_ignored():
    estimator = RttEstimator()
    estimator.observe(-1.0)
    assert estimator.samples == 0


def test_variance_rises_on_jitter():
    steady = RttEstimator()
    jittery = RttEstimator()
    for i in range(50):
        steady.observe(0.2)
        jittery.observe(0.05 if i % 2 else 0.35)
    assert jittery.rto > steady.rto


def test_bandwidth_ewma_converges():
    estimator = BandwidthEstimator()
    assert estimator.bytes_per_sec is None
    for _ in range(30):
        estimator.observe(10_000, 1.0)
    assert estimator.bytes_per_sec == pytest.approx(10_000, rel=0.01)
    assert estimator.bits_per_sec == pytest.approx(80_000, rel=0.01)


def test_bandwidth_adapts_to_change():
    estimator = BandwidthEstimator()
    for _ in range(10):
        estimator.observe(10_000, 1.0)
    for _ in range(10):
        estimator.observe(1_000, 1.0)
    assert estimator.bytes_per_sec < 2_000


def test_bandwidth_rejects_degenerate_samples():
    estimator = BandwidthEstimator()
    estimator.observe(0, 1.0)
    estimator.observe(100, 0.0)
    assert estimator.samples == 0


def test_expected_transfer_time_uses_default_until_estimated():
    estimator = NetworkEstimator()
    # 9600 bits at the 9600 b/s default = 1 second.
    assert estimator.expected_transfer_time(1200) == pytest.approx(1.0)
    estimator.observe_transfer(120_000, 1.0)   # ~1 Mb/s
    assert estimator.expected_transfer_time(120_000) == pytest.approx(
        1.0, rel=0.05)


def test_expected_transfer_time_includes_latency():
    estimator = NetworkEstimator()
    estimator.observe_rtt(0.5)
    estimator.observe_transfer(1200, 1.0)
    assert estimator.expected_transfer_time(1200) == pytest.approx(1.5)
