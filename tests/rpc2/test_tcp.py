"""The TCP baseline."""

import pytest

from repro.net import ETHERNET, MODEM, Network
from repro.net.host import IDEAL, LAPTOP_1995, SERVER_1995
from repro.rpc2 import tcp_transfer
from repro.sim import RandomStreams, Simulator


def run_tcp(nbytes, profile=ETHERNET, loss=0.0, seed=0,
            src_host=IDEAL, dst_host=IDEAL):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    net.add_link("a", "b", profile=profile, loss_rate=loss)
    process = tcp_transfer(sim, net, "a", "b", nbytes, src_host, dst_host)
    return sim.run(process)


def test_transfer_completes():
    elapsed = run_tcp(100_000)
    assert elapsed > 0


def test_wire_limit_respected():
    elapsed = run_tcp(1_000_000)
    # Cannot beat the 10 Mb/s wire even with free hosts.
    assert elapsed >= 1_000_000 * 8 / 10e6 * 0.95


def test_slow_start_visible_on_small_transfers():
    """Early round trips are window-limited, so small transfers get
    much worse goodput than large ones."""
    small = 10_000 / run_tcp(10_000)
    large = 1_000_000 / run_tcp(1_000_000)
    assert large > 1.5 * small


def test_loss_degrades_throughput():
    clean = 500_000 / run_tcp(500_000, seed=2)
    lossy = 500_000 / run_tcp(500_000, loss=0.03, seed=2)
    assert lossy < 0.7 * clean


def test_modem_transfer_near_nominal():
    elapsed = run_tcp(96_000, profile=MODEM)
    goodput = 96_000 * 8 / elapsed
    assert 5_000 < goodput < 8_600


def test_host_costs_bound_fast_networks():
    free = 1_000_000 / run_tcp(1_000_000)
    costly = 1_000_000 / run_tcp(1_000_000, src_host=LAPTOP_1995,
                                 dst_host=SERVER_1995)
    assert costly < 0.6 * free


def test_deterministic_given_seed():
    a = run_tcp(200_000, loss=0.02, seed=9)
    b = run_tcp(200_000, loss=0.02, seed=9)
    assert a == b
