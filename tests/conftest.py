"""Shared test fixtures: simulators, testbeds, convenience runners."""

import pytest

from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.net import ETHERNET, MODEM
from repro.sim import Simulator
from repro.venus import VenusConfig

# Deadline-safe defaults for every property suite.  Simulated time is
# free but host time is not: a pinned worst-case example (say, a
# quarter-megabyte SFTP store over a lossy 9.6 Kb/s link) can take
# hundreds of wall milliseconds on a loaded CI box, which flakes
# Hypothesis's per-example deadline and its too_slow health check even
# though the test is fully deterministic.  Individual tests still set
# max_examples; they inherit these safety rails from the profile.
hypothesis_settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile("repro")


@pytest.fixture
def sim():
    return Simulator()


def build_testbed(profile=ETHERNET, tree=None, mount="/coda/usr/u",
                  venus_config=None, warm=True, user=None, seed=0):
    """A one-client testbed with an optional populated, warmed volume."""
    testbed = make_testbed(profile, venus_config=venus_config, user=user,
                           seed=seed)
    if tree is None:
        tree = {
            mount + "/dir": ("dir", 0),
            mount + "/dir/a.txt": ("file", 4_000),
            mount + "/dir/b.txt": ("file", 12_000),
            mount + "/dir/big.bin": ("file", 400_000),
        }
    volume = populate_volume(testbed.server, mount, tree)
    if warm:
        warm_cache(testbed.venus, testbed.server, volume)
    else:
        testbed.venus.learn_mounts(testbed.server.registry)
    testbed.volume = volume
    testbed.mount = mount
    return testbed


@pytest.fixture
def testbed():
    return build_testbed()


@pytest.fixture
def modem_testbed():
    return build_testbed(profile=MODEM)


def run_op(testbed, generator):
    """Run one Venus operation generator to completion."""
    return testbed.run(generator)


def connected(testbed):
    """Connect the testbed's client; returns the resulting state."""
    def go():
        ok = yield from testbed.venus.connect()
        assert ok
        return testbed.venus.state.state
    return testbed.run(go())
