"""Shared test fixtures: simulators, testbeds, convenience runners."""

import pytest

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.net import ETHERNET, MODEM
from repro.sim import Simulator
from repro.venus import VenusConfig


@pytest.fixture
def sim():
    return Simulator()


def build_testbed(profile=ETHERNET, tree=None, mount="/coda/usr/u",
                  venus_config=None, warm=True, user=None, seed=0):
    """A one-client testbed with an optional populated, warmed volume."""
    testbed = make_testbed(profile, venus_config=venus_config, user=user,
                           seed=seed)
    if tree is None:
        tree = {
            mount + "/dir": ("dir", 0),
            mount + "/dir/a.txt": ("file", 4_000),
            mount + "/dir/b.txt": ("file", 12_000),
            mount + "/dir/big.bin": ("file", 400_000),
        }
    volume = populate_volume(testbed.server, mount, tree)
    if warm:
        warm_cache(testbed.venus, testbed.server, volume)
    else:
        testbed.venus.learn_mounts(testbed.server.registry)
    testbed.volume = volume
    testbed.mount = mount
    return testbed


@pytest.fixture
def testbed():
    return build_testbed()


@pytest.fixture
def modem_testbed():
    return build_testbed(profile=MODEM)


def run_op(testbed, generator):
    """Run one Venus operation generator to completion."""
    return testbed.run(generator)


def connected(testbed):
    """Connect the testbed's client; returns the resulting state."""
    def go():
        ok = yield from testbed.venus.connect()
        assert ok
        return testbed.venus.state.state
    return testbed.run(go())
