"""The paper's future-work extensions: cost-aware adaptation
(section 8) and selective subtree reintegration (section 4.3.5)."""

import pytest

from repro.core.cost import (
    CELLULAR,
    FREE,
    LONG_DISTANCE,
    CostAwarePolicy,
    CostLedger,
    NetworkTariff,
)
from repro.fs import SyntheticContent
from repro.net import MODEM
from repro.venus import CacheMissError, VenusConfig, VenusState

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"
MB = 1024 * 1024


# -------------------------------------------------------------- tariffs

def test_tariff_arithmetic():
    tariff = NetworkTariff("t", per_mb=2.0, per_minute=0.6)
    assert tariff.cost_of(nbytes=MB) == pytest.approx(2.0)
    assert tariff.cost_of(connected_seconds=60) == pytest.approx(0.6)
    assert tariff.cost_of(MB, 30) == pytest.approx(2.3)
    assert FREE.is_free and not CELLULAR.is_free


def test_spend_threshold_grows_with_priority():
    policy = CostAwarePolicy(CELLULAR)
    assert policy.spend_threshold(900) > 100 * policy.spend_threshold(0)


def test_cost_approval():
    policy = CostAwarePolicy(CELLULAR)
    # A 4 MB fetch costs ~$10: unaffordable at priority 0, fine at 900.
    assert not policy.approves_fetch(0, 4 * MB)
    assert policy.approves_fetch(900, 4 * MB)
    # Everything is affordable on a free network.
    assert CostAwarePolicy(FREE).approves_fetch(0, 100 * MB)


def test_aging_stretch_on_per_byte_tariffs():
    free = CostAwarePolicy(FREE)
    paid = CostAwarePolicy(CELLULAR)
    assert free.effective_aging_window(600) == 600
    assert paid.effective_aging_window(600) > 600
    capped = CostAwarePolicy(NetworkTariff("x", per_mb=1000.0))
    assert capped.effective_aging_window(600) <= 600 * 8.0


def test_per_minute_tariff_prefers_fast_drain():
    assert CostAwarePolicy(LONG_DISTANCE).prefers_fast_drain
    assert not CostAwarePolicy(CELLULAR).prefers_fast_drain
    assert not CostAwarePolicy(FREE).prefers_fast_drain


def test_ledger_accounting():
    ledger = CostLedger(NetworkTariff("t", per_mb=1.0, per_minute=0.6))
    ledger.add_bytes(2 * MB)
    ledger.add_connected_time(120.0)
    assert ledger.total_cost == pytest.approx(2.0 + 1.2)


# ------------------------------------------------ cost-aware Venus

def test_expensive_network_refuses_affordable_in_time_fetch():
    config = VenusConfig(start_daemons=False, tariff=CELLULAR)
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    entry = testbed.run(venus.stat(M + "/dir/b.txt"))
    venus.cache.remove(entry.fid)
    # 12 KB at priority 900: seconds of wait (fine), ~3 cents (fine).
    venus.hoard(M + "/dir/b.txt", 900)
    testbed.run(venus.read_file(M + "/dir/b.txt"))
    # But at priority 0 a 400 KB file costs ~$1 — refused for cost,
    # even though a very patient free-network user might wait.
    entry = testbed.run(venus.stat(M + "/dir/big.bin"))
    venus.cache.remove(entry.fid)
    venus.patience.alpha = 10_000.0     # infinitely patient in *time*
    with pytest.raises(CacheMissError):
        testbed.run(venus.read_file(M + "/dir/big.bin"))
    assert venus.misses.peek()[-1].reason == "cost"


def test_per_minute_tariff_drains_promptly():
    config = VenusConfig(tariff=LONG_DISTANCE, aging_window=3600.0,
                         daemon_period=5.0)
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/letter.txt", b"x" * 4_000))
    # Despite the one-hour configured window, the per-minute tariff
    # drives A to zero: the update ships within a daemon period or two.
    testbed.sim.run(until=testbed.sim.now + 60.0)
    assert len(venus.cml) == 0


def test_network_cost_tracks_connection_and_bytes():
    config = VenusConfig(tariff=LONG_DISTANCE, start_daemons=False)
    testbed = build_testbed(profile=MODEM, venus_config=config)
    connected(testbed)
    venus = testbed.venus
    testbed.sim.run(until=testbed.sim.now + 600.0)
    cost = venus.network_cost()
    # Ten minutes of long distance at $0.12/min.
    assert cost == pytest.approx(1.2, rel=0.15)


# ---------------------------------------------- subtree reintegration

def subtree_testbed():
    tree = {
        M + "/projA": ("dir", 0),
        M + "/projA/doc.txt": ("file", 1_000),
        M + "/projB": ("dir", 0),
        M + "/projB/data.bin": ("file", 1_000),
    }
    config = VenusConfig(aging_window=3600.0, daemon_period=5.0)
    testbed = build_testbed(profile=MODEM, tree=tree,
                            venus_config=config)
    connected(testbed)
    assert testbed.venus.state.state is VenusState.WRITE_DISCONNECTED
    return testbed


def on_server(testbed, dirname, name):
    d = testbed.volume.require(testbed.volume.root.lookup(dirname))
    return d.lookup(name) is not None


def test_sync_subtree_ships_only_that_subtree():
    testbed = subtree_testbed()
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/projA/doc.txt", b"a" * 3_000))
    testbed.run(venus.write_file(M + "/projB/data.bin", b"b" * 3_000))
    assert len(venus.cml) == 2
    ok = testbed.run(venus.sync_subtree(M + "/projA"))
    assert ok
    # projA's update reached the server; projB's still waits its turn.
    docs = testbed.volume.require(testbed.volume.require(
        testbed.volume.root.lookup("projA")).lookup("doc.txt"))
    assert docs.content.size == 3_000
    assert len(venus.cml) == 1
    assert venus.cml.records[0].fid.volume == testbed.volume.volid


def test_sync_subtree_includes_antecedent_creates():
    testbed = subtree_testbed()
    venus = testbed.venus
    testbed.run(venus.mkdir(M + "/projA/sub"))
    testbed.run(venus.write_file(M + "/projA/sub/new.txt", b"n" * 2_000))
    testbed.run(venus.write_file(M + "/projB/data.bin", b"b" * 500))
    ok = testbed.run(venus.sync_subtree(M + "/projA/sub"))
    assert ok
    assert on_server(testbed, "projA", "sub")
    # The store for new.txt needed its create and the mkdir first;
    # the closure shipped all three together.
    sub = testbed.volume.require(testbed.volume.require(
        testbed.volume.root.lookup("projA")).lookup("sub"))
    assert sub.lookup("new.txt") is not None
    # projB untouched.
    assert len(venus.cml) == 1


def test_sync_subtree_with_nothing_logged_is_noop():
    testbed = subtree_testbed()
    assert testbed.run(testbed.venus.sync_subtree(M + "/projA"))


def test_freeze_records_rejects_unclosed_set():
    from repro.fs import Fid
    from repro.venus.cml import ClientModifyLog, CmlOp, CmlRecord
    cml = ClientModifyLog()
    fid = Fid(1, 5, 5)
    first = CmlRecord(op=CmlOp.CREATE, fid=fid, parent=Fid(1, 1, 1),
                      name="f")
    second = CmlRecord(op=CmlOp.STORE, fid=fid,
                       content=SyntheticContent(10))
    cml.append(first, 0.0)
    cml.append(second, 1.0)
    with pytest.raises(ValueError, match="dependency"):
        cml.freeze_records([second])   # store without its create
    cml.freeze_records([first, second])
