"""Rapid cache validation through the live stack."""

import pytest

from repro.fs import Content
from repro.core.validation import ValidationStats
from repro.venus import VenusConfig, VenusState

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def warm_connected_testbed(**config_kwargs):
    config = VenusConfig(start_daemons=False, **config_kwargs)
    testbed = build_testbed(venus_config=config)
    connected(testbed)
    return testbed


def acquire_stamps(testbed):
    report = testbed.run(testbed.venus.hoard_walk())
    assert report.stamps_acquired == 1
    return report


def reset_stats(venus):
    """Discard counts from connect()'s own validation pass."""
    venus.validator.stats = ValidationStats()
    return venus.validator.stats


def test_valid_stamp_validates_whole_volume():
    testbed = warm_connected_testbed()
    venus = testbed.venus
    acquire_stamps(testbed)
    reset_stats(venus)
    venus.handle_disconnection()
    checked = testbed.run(venus.validator.validate_all())
    stats = venus.validator.stats
    assert checked == 0                      # nothing validated singly
    assert stats.successes == stats.attempts == 1
    assert stats.objects_saved == len(venus.cache)
    info = venus.cache.volume_info(testbed.volume.volid)
    assert info.callback                     # reacquired as a side effect


def test_stale_stamp_falls_back_to_object_validation():
    testbed = warm_connected_testbed()
    venus = testbed.venus
    acquire_stamps(testbed)
    reset_stats(venus)
    venus.handle_disconnection()
    # Another client updates one object while we are away.
    dir_fid = testbed.volume.root.lookup("dir")
    a_fid = testbed.volume.require(dir_fid).lookup("a.txt")
    vnode = testbed.volume.require(a_fid)
    vnode.content = Content.of(b"changed behind our back")
    testbed.volume.bump(vnode, 1.0)
    checked = testbed.run(venus.validator.validate_all())
    stats = venus.validator.stats
    assert stats.successes == 0 and stats.attempts == 1
    assert checked == len(venus.cache)
    # The stale object lost its data but kept fresh status.
    entry = venus.cache.get(a_fid)
    assert entry.content is None
    assert entry.version == vnode.version
    # Everything else revalidated with object callbacks.
    others = [e for e in venus.cache.entries() if e.fid != a_fid]
    assert all(e.callback for e in others)


def test_missing_stamp_counts_and_validates_objects():
    testbed = warm_connected_testbed()
    venus = testbed.venus
    # Forget the stamp entirely (as for a volume never walked).
    venus.cache.volume_info(testbed.volume.volid).drop()
    reset_stats(venus)
    venus.handle_disconnection()
    checked = testbed.run(venus.validator.validate_all())
    stats = venus.validator.stats
    assert stats.missing_stamp == 1
    assert stats.attempts == 0
    assert checked == len(venus.cache)


def test_deleted_object_dropped_during_validation():
    testbed = warm_connected_testbed()
    venus = testbed.venus
    acquire_stamps(testbed)
    venus.handle_disconnection()
    dir_fid = testbed.volume.root.lookup("dir")
    dir_vnode = testbed.volume.require(dir_fid)
    a_fid = dir_vnode.lookup("a.txt")
    del dir_vnode.children["a.txt"]
    testbed.volume.remove(a_fid)
    testbed.volume.bump(dir_vnode, 1.0)
    testbed.run(venus.validator.validate_all())
    assert venus.cache.get(a_fid) is None


def test_object_mode_never_uses_stamps():
    testbed = warm_connected_testbed(use_volume_callbacks=False)
    venus = testbed.venus
    testbed.run(venus.hoard_walk())          # no stamps acquired
    reset_stats(venus)
    venus.handle_disconnection()
    checked = testbed.run(venus.validator.validate_all())
    assert checked == len(venus.cache)
    assert venus.validator.stats.attempts == 0


def test_batching_bounds_rpc_count():
    config = VenusConfig(start_daemons=False)
    tree = {M + "/dir": ("dir", 0)}
    for i in range(120):
        tree["%s/dir/f%03d" % (M, i)] = ("file", 1_000)
    testbed = build_testbed(venus_config=config, tree=tree)
    connected(testbed)
    venus = testbed.venus
    venus.handle_disconnection()
    packets_before = venus.endpoint.packets_out
    testbed.run(venus.validator.validate_all())
    # 122 objects in batches of 50 -> 3 RPCs (plus retransmit slack).
    rpc_packets = venus.endpoint.packets_out - packets_before
    assert rpc_packets <= 6


def test_validation_after_reconnect_is_automatic():
    """The full loop: disconnect, update elsewhere, reconnect."""
    testbed = build_testbed()
    connected(testbed)
    venus = testbed.venus
    testbed.run(venus.hoard_walk())
    testbed.link.set_up(False)
    venus.handle_disconnection()
    assert venus.state.state is VenusState.EMULATING
    testbed.link.set_up(True)
    assert connected(testbed) is VenusState.HOARDING
    stats = venus.validator.stats
    assert stats.successes >= 1
    assert stats.objects_saved >= len(venus.cache) - 1
