"""Trickle reintegration: aging, chunking, fragments, conflicts."""

import pytest

from repro.fs import Content, SyntheticContent
from repro.net import ISDN, MODEM
from repro.venus import VenusConfig, VenusState

from tests.conftest import build_testbed, connected

M = "/coda/usr/u"


def weak_testbed(aging_window=600.0, chunk_seconds=30.0,
                 daemon_period=5.0, profile=MODEM, **extra):
    config = VenusConfig(aging_window=aging_window,
                         chunk_seconds=chunk_seconds,
                         daemon_period=daemon_period, **extra)
    testbed = build_testbed(profile=profile, venus_config=config)
    connected(testbed)
    assert testbed.venus.state.state is VenusState.WRITE_DISCONNECTED
    return testbed


def server_file(testbed, name):
    dir_fid = testbed.volume.root.lookup("dir")
    dir_vnode = testbed.volume.require(dir_fid)
    fid = dir_vnode.lookup(name)
    return testbed.volume.get(fid) if fid is not None else None


def test_records_wait_for_aging_window():
    testbed = weak_testbed(aging_window=600.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/slow.txt", b"z" * 2_000))
    testbed.sim.run(until=testbed.sim.now + 300.0)
    # Younger than A: still local only.
    assert len(venus.cml) > 0
    assert server_file(testbed, "slow.txt") is None
    testbed.sim.run(until=testbed.sim.now + 400.0)
    # Old enough: propagated in the background.
    assert len(venus.cml) == 0
    assert server_file(testbed, "slow.txt") is not None


def test_aging_window_enables_overwrite_cancellation():
    testbed = weak_testbed(aging_window=600.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"1" * 50_000))

    def overwrite_later():
        yield testbed.sim.timeout(120.0)
        yield from venus.write_file(M + "/dir/a.txt", b"2" * 1_000)

    testbed.run(overwrite_later())
    testbed.sim.run(until=2_000.0)
    # Only the second store was shipped; the first was optimized away.
    assert venus.trickle.stats.records_shipped == 1
    vnode = server_file(testbed, "a.txt")
    assert vnode.content == Content.of(b"2" * 1_000)
    assert venus.cml.stats.optimized_records == 1


def test_chunk_size_tracks_bandwidth():
    testbed = weak_testbed()
    venus = testbed.venus
    # ~9.6 Kb/s estimated -> C around 30s * ~900 B/s; allow wide band.
    chunk = venus.trickle.chunk_bytes()
    assert 10_000 < chunk < 80_000

    testbed_isdn = weak_testbed(profile=ISDN)
    chunk_isdn = testbed_isdn.venus.trickle.chunk_bytes()
    assert chunk_isdn > 2.5 * chunk


def test_backlog_ships_in_multiple_chunks():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus

    def burst():
        for i in range(6):
            yield from venus.write_file(M + "/dir/f%d" % i,
                                        SyntheticContent(30_000))

    testbed.run(burst())
    testbed.sim.run(until=testbed.sim.now + 2_500.0)
    assert len(venus.cml) == 0
    stats = venus.trickle.stats
    assert stats.chunks_committed >= 3       # ~180 KB at ~36 KB per chunk
    assert stats.records_shipped == 12       # 6 creates + 6 stores


def test_large_store_ships_as_fragments():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/huge", SyntheticContent(150_000)))
    testbed.sim.run(until=testbed.sim.now + 2_000.0)
    assert len(venus.cml) == 0
    assert venus.trickle.stats.fragments_shipped >= 3
    assert server_file(testbed, "huge").content.size == 150_000


def test_fragment_shipping_resumes_after_outage():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/huge", SyntheticContent(200_000)))

    def outage():
        # Let a few fragments through, then cut the link for a while.
        yield testbed.sim.timeout(120.0)
        testbed.link.set_up(False)
        yield testbed.sim.timeout(300.0)
        testbed.link.set_up(True)

    testbed.sim.process(outage())
    testbed.sim.run(until=4_000.0)
    assert len(venus.cml) == 0
    assert server_file(testbed, "huge").content.size == 200_000
    stats = venus.trickle.stats
    # Progress survived: far fewer fragments than two full transfers.
    full = 200_000 / venus.trickle.chunk_bytes()
    assert stats.fragments_shipped <= full + 4
    assert stats.aborts >= 1


def test_conflict_detected_and_confined():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus
    # Client updates a.txt while weakly connected...
    testbed.run(venus.write_file(M + "/dir/a.txt", b"mine" * 100))
    # ...but another client already changed it at the server.
    vnode = server_file(testbed, "a.txt")
    vnode.content = Content.of(b"theirs")
    testbed.volume.bump(vnode, 1.0)
    testbed.sim.run(until=testbed.sim.now + 400.0)
    assert len(venus.conflicts) == 1
    conflict = venus.list_conflicts()[0]
    assert conflict.reason == "update/update conflict"
    assert len(venus.cml) == 0
    # The server keeps the other client's data (no blind overwrite).
    assert server_file(testbed, "a.txt").content == Content.of(b"theirs")


def test_conflict_does_not_block_other_records():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/a.txt", b"conflicting"))
    testbed.run(venus.write_file(M + "/dir/clean.txt", b"fine"))
    vnode = server_file(testbed, "a.txt")
    testbed.volume.bump(vnode, 1.0)
    testbed.sim.run(until=testbed.sim.now + 600.0)
    assert len(venus.conflicts) == 1
    assert server_file(testbed, "clean.txt") is not None


def test_forced_sync_ignores_aging():
    testbed = weak_testbed(aging_window=3_600.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/urgent", b"now!"))
    assert server_file(testbed, "urgent") is None
    drained = testbed.run(venus.sync())
    assert drained
    assert len(venus.cml) == 0
    assert server_file(testbed, "urgent") is not None


def test_trickle_defers_to_foreground_between_chunks():
    testbed = weak_testbed(aging_window=0.0, daemon_period=2.0)
    venus = testbed.venus

    def burst():
        for i in range(4):
            yield from venus.write_file(M + "/dir/bg%d" % i,
                                        SyntheticContent(35_000))

    testbed.run(burst())

    # Hold the foreground "busy" and watch the daemon stall.
    class Probe:
        def run(self):
            yield testbed.sim.timeout(5.0)
            venus.foreground_ops += 1
            shipped_before = venus.trickle.stats.chunks_committed
            yield testbed.sim.timeout(300.0)
            self.during = (venus.trickle.stats.chunks_committed
                           - shipped_before)
            venus.foreground_ops -= 1

    probe = Probe()
    testbed.sim.run(testbed.sim.process(probe.run()))
    # At most the chunk already in flight completed; no new chunks
    # started while foreground activity was pending.
    assert probe.during <= 1
    testbed.sim.run(until=testbed.sim.now + 2_000.0)
    assert len(venus.cml) == 0


def test_disconnection_mid_chunk_aborts_cleanly():
    testbed = weak_testbed(aging_window=0.0)
    venus = testbed.venus
    testbed.run(venus.write_file(M + "/dir/x", SyntheticContent(30_000)))

    def chop():
        yield testbed.sim.timeout(12.0)   # mid-transfer at 9.6 Kb/s
        testbed.link.set_up(False)

    testbed.sim.process(chop())
    testbed.sim.run(until=testbed.sim.now + 600.0)
    assert venus.state.state is VenusState.EMULATING
    assert venus.cml.frozen_count == 0
    # The unpropagated update survives in the log (the create may have
    # shipped in its own chunk before the link died).
    from repro.venus import CmlOp
    assert any(r.op is CmlOp.STORE for r in venus.cml)
    # Reconnect: the update finally lands.
    testbed.link.set_up(True)
    testbed.sim.run(until=testbed.sim.now + 900.0)
    assert server_file(testbed, "x") is not None
