"""The user patience model."""

import math

import pytest

from repro.core import PatienceModel


def test_paper_parameters_are_default():
    model = PatienceModel()
    assert model.alpha == 2.0
    assert model.beta == 1.0
    assert model.gamma == 0.01


def test_alpha_is_the_floor():
    """Even an unimportant object earns a short wait."""
    model = PatienceModel()
    assert model.threshold(0) == pytest.approx(3.0)   # alpha + beta
    assert model.approves(0, 2.5)
    assert not model.approves(0, 3.5)


def test_threshold_grows_exponentially():
    model = PatienceModel()
    assert model.threshold(100) == pytest.approx(2 + math.e)
    assert model.threshold(900) == pytest.approx(2 + math.exp(9))
    # Monotone in priority.
    values = [model.threshold(p) for p in range(0, 1000, 50)]
    assert values == sorted(values)


def test_figure7_size_conversion():
    """60 s at 64 Kb/s = 480 KB (the paper's worked example)."""
    model = PatienceModel(alpha=0.0, beta=60.0, gamma=0.0)
    assert model.max_file_bytes(0, 64_000) == pytest.approx(480_000)


def test_curve_shape():
    model = PatienceModel()
    curve = model.curve([0, 500, 1000], 9_600)
    assert [p for p, _s in curve] == [0, 500, 1000]
    sizes = [s for _p, s in curve]
    assert sizes == sorted(sizes)


def test_priority_needed_inverts_threshold():
    model = PatienceModel()
    for wait in (1.0, 10.0, 100.0, 1000.0):
        priority = model.priority_needed(wait)
        assert model.approves(priority, wait)
        if priority > 0:
            assert not model.approves(priority - 1, wait)


def test_higher_bandwidth_admits_larger_files():
    model = PatienceModel()
    assert model.max_file_bytes(500, 2_000_000) \
        > model.max_file_bytes(500, 9_600)
