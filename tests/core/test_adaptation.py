"""Connectivity classification and hysteresis."""

from repro.core import ConnectionStrength, ConnectivityMonitor


def test_unreachable_is_none():
    monitor = ConnectivityMonitor()
    assert monitor.classify(False, 10e6) is ConnectionStrength.NONE


def test_basic_thresholding():
    monitor = ConnectivityMonitor(strong_threshold_bps=500_000)
    assert monitor.classify(True, 2e6) is ConnectionStrength.STRONG
    monitor2 = ConnectivityMonitor(strong_threshold_bps=500_000)
    assert monitor2.classify(True, 64_000) is ConnectionStrength.WEAK


def test_unknown_bandwidth_is_conservatively_weak():
    monitor = ConnectivityMonitor()
    assert monitor.classify(True, None) is ConnectionStrength.WEAK


def test_unknown_bandwidth_keeps_existing_class():
    monitor = ConnectivityMonitor(strong_threshold_bps=500_000)
    monitor.classify(True, 2e6)
    assert monitor.classify(True, None) is ConnectionStrength.STRONG


def test_hysteresis_prevents_flapping():
    monitor = ConnectivityMonitor(strong_threshold_bps=500_000,
                                  hysteresis=0.2)
    monitor.classify(True, 2e6)
    # A dip to just below the threshold does not demote...
    assert monitor.classify(True, 450_000) is ConnectionStrength.STRONG
    # ...but a real collapse does.
    assert monitor.classify(True, 100_000) is ConnectionStrength.WEAK
    # And recovery needs to clear the threshold plus margin.
    assert monitor.classify(True, 550_000) is ConnectionStrength.WEAK
    assert monitor.classify(True, 700_000) is ConnectionStrength.STRONG


def test_reconnect_resets_cleanly():
    monitor = ConnectivityMonitor(strong_threshold_bps=500_000)
    monitor.classify(True, 2e6)
    monitor.classify(False, None)
    assert monitor.current is ConnectionStrength.NONE
    assert monitor.classify(True, 2e6) is ConnectionStrength.STRONG
