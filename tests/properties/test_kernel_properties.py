"""Property-based tests on the simulation kernel's scheduling contract.

Three invariants the fast-path optimizations must never bend:

* same-timestamp events dispatch in priority-then-FIFO order — the
  total order that makes identical inputs produce identical schedules;
* ``kill_owned`` leaves no trace of the owner: no live processes, no
  owner table entry, and the simulation still drains cleanly;
* ``peek`` always names the exact time the next ``step`` advances to.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.events import NORMAL, URGENT


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([0.0, 1.0, 2.5]),
                          st.sampled_from([URGENT, NORMAL])),
                min_size=1, max_size=30))
def test_same_timestamp_events_run_priority_then_fifo(schedule):
    """At one timestamp, URGENT beats NORMAL; ties keep insert order."""
    sim = Simulator()
    dispatched = []
    for index, (delay, priority) in enumerate(schedule):
        event = sim.event()
        event.callbacks.append(
            lambda _evt, rec=(delay, priority, index):
                dispatched.append(rec))
        sim._schedule_event(event, priority, delay)
    sim.run()
    # The kernel's contract: (time, priority, insertion order).
    expected = sorted(
        ((delay, priority, index)
         for index, (delay, priority) in enumerate(schedule)),
        key=lambda rec: (rec[0], rec[1], rec[2]))
    assert dispatched == expected


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=11),
       st.floats(min_value=0.5, max_value=100.0))
def test_kill_owned_never_leaks_callbacks(procs, kill_at, horizon):
    """After kill_owned, the owner's processes never run again."""
    sim = Simulator()
    ran_after_kill = []
    killed_flag = []

    def worker(ident):
        while True:
            yield sim.timeout(1.0)
            if killed_flag:
                ran_after_kill.append(ident)

    for ident in range(procs):
        sim.process(worker(ident), owner="victim")
    kill_time = min(kill_at, procs) + 0.5

    def killer():
        yield sim.timeout(kill_time)
        sim.kill_owned("victim")
        killed_flag.append(True)

    sim.process(killer())
    sim.run(until=kill_time + horizon)
    # No owned process survived the kill...
    assert ran_after_kill == []
    assert "victim" not in sim._owned
    # ...and nothing of theirs is still scheduled: the queue drains.
    sim.run()
    assert sim.peek() is None


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=40))
def test_peek_and_step_agree(delays):
    """peek() names exactly the time step() will advance to."""
    sim = Simulator()
    for delay in delays:
        sim.timeout(delay)
    seen = []
    while True:
        upcoming = sim.peek()
        if upcoming is None:
            break
        sim.step()
        assert sim.now == upcoming
        seen.append(upcoming)
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert sim.dispatched == len(delays)
