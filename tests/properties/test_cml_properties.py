"""Property-based tests: CML optimization preserves replay semantics.

The central invariant of section 4.3.3: replaying an optimized CML
against a server must leave *exactly* the same file system state as
replaying the unoptimized log.  Hypothesis generates random operation
sequences; both logs are replayed against identical shadow worlds and
the results compared structurally.
"""

from hypothesis import given, settings, strategies as st

from repro.fs import (
    Fid,
    ObjectType,
    SyntheticContent,
    Vnode,
    Volume,
    VolumeRegistry,
)
from repro.server.reintegration import Reintegrator
from repro.venus.cml import ClientModifyLog, CmlOp, CmlRecord

VOL = 7
N_PREEXISTING = 3
N_NAMES = 6


def fresh_world():
    registry = VolumeRegistry()
    volume = Volume(VOL, "prop")
    registry.mount("/coda/prop", volume)
    for i in range(N_PREEXISTING):
        vnode = Vnode(Fid(VOL, 1000 + i, 1000 + i), ObjectType.FILE,
                      content=SyntheticContent(100, tag=("pre", i)))
        volume.add(vnode)
        volume.root.children["pre%d" % i] = vnode.fid
    return registry, volume


# One abstract operation: (kind, name index, size).  Names index a
# small space so that create/unlink/overwrite collisions are common.
operations = st.lists(
    st.tuples(
        st.sampled_from(["write", "unlink", "mkdir", "rmdir", "setattr"]),
        st.integers(min_value=0, max_value=N_NAMES - 1),
        st.integers(min_value=1, max_value=50_000)),
    min_size=1, max_size=40)


class _Workload:
    """Applies abstract ops through a CML like Venus would."""

    def __init__(self, cml, optimize):
        self.cml = cml
        self.optimize = optimize
        registry, volume = fresh_world()
        self.registry = registry
        self.volume = volume
        self.names = {}        # name -> (fid, kind, base_version)
        for i in range(N_PREEXISTING):
            fid = self.volume.root.children["pre%d" % i]
            self.names["pre%d" % i] = (fid, "file", 1)
        self._fid_counter = 5000
        self.clock = 0.0

    def _new_fid(self):
        self._fid_counter += 1
        return Fid(VOL, self._fid_counter, self._fid_counter)

    def _log(self, record):
        self.clock += 1.0
        if self.optimize:
            self.cml.append(record, self.clock)
        else:
            record.time = self.clock
            record.seqno = next(self.cml._seq)
            self.cml._records.append(record)

    def apply(self, kind, index, size):
        name = "n%d" % index
        root = self.volume.root_fid
        if kind == "write":
            known = self.names.get(name)
            if known and known[1] == "dir":
                return
            tag = ("w", name, size, self.clock)
            if known is None:
                fid = self._new_fid()
                self.names[name] = (fid, "file", None)
                self._log(CmlRecord(op=CmlOp.CREATE, fid=fid, parent=root,
                                    name=name))
                self._log(CmlRecord(op=CmlOp.STORE, fid=fid,
                                    content=SyntheticContent(size, tag)))
            else:
                fid, _kind, base = known
                self._log(CmlRecord(op=CmlOp.STORE, fid=fid,
                                    content=SyntheticContent(size, tag),
                                    base_version=base))
        elif kind == "unlink":
            known = self.names.get(name)
            if not known or known[1] != "file":
                return
            fid, _kind, base = known
            del self.names[name]
            self._log(CmlRecord(op=CmlOp.UNLINK, fid=fid, parent=root,
                                name=name, base_version=base))
        elif kind == "mkdir":
            if name in self.names:
                return
            fid = self._new_fid()
            self.names[name] = (fid, "dir", None)
            self._log(CmlRecord(op=CmlOp.MKDIR, fid=fid, parent=root,
                                name=name))
        elif kind == "rmdir":
            known = self.names.get(name)
            if not known or known[1] != "dir":
                return
            fid, _kind, _base = known
            del self.names[name]
            self._log(CmlRecord(op=CmlOp.RMDIR, fid=fid, parent=root,
                                name=name))
        elif kind == "setattr":
            known = self.names.get(name)
            if not known:
                return
            fid, _kind, base = known
            self._log(CmlRecord(op=CmlOp.SETATTR, fid=fid, attrs={},
                                base_version=base))


def world_snapshot(volume):
    """Structural fingerprint: name -> (type, content identity)."""
    snapshot = {}
    for name, fid in volume.root.children.items():
        vnode = volume.get(fid)
        content = vnode.content.fingerprint if vnode.is_file() else None
        snapshot[name] = (vnode.otype.value, content)
    return snapshot


@settings(max_examples=120, deadline=None)
@given(operations)
def test_optimized_replay_equals_unoptimized_replay(ops):
    outcomes = []
    for optimize in (True, False):
        workload = _Workload(ClientModifyLog(), optimize)
        for kind, index, size in ops:
            workload.apply(kind, index, size)
        reintegrator = Reintegrator(workload.registry)
        records = workload.cml.records
        conflicts = reintegrator.validate(records)
        assert conflicts == [], (optimize, conflicts)
        reintegrator.apply(records, mtime=1.0)
        outcomes.append(world_snapshot(workload.volume))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=120, deadline=None)
@given(operations)
def test_optimization_never_grows_the_log(ops):
    optimized = _Workload(ClientModifyLog(), True)
    plain = _Workload(ClientModifyLog(), False)
    for kind, index, size in ops:
        optimized.apply(kind, index, size)
        plain.apply(kind, index, size)
    assert optimized.cml.size_bytes <= plain.cml.size_bytes
    assert len(optimized.cml) <= len(plain.cml)
    stats = optimized.cml.stats
    assert stats.appended_bytes - stats.optimized_bytes \
        == optimized.cml.size_bytes


@settings(max_examples=60, deadline=None)
@given(operations, st.integers(min_value=0, max_value=20))
def test_barrier_freeze_commit_preserves_order(ops, freeze_at):
    workload = _Workload(ClientModifyLog(), True)
    for kind, index, size in ops:
        workload.apply(kind, index, size)
    cml = workload.cml
    n = min(freeze_at, len(cml))
    seqnos_before = [r.seqno for r in cml.records]
    cml.freeze(n)
    committed = cml.commit_frozen()
    assert [r.seqno for r in committed] == seqnos_before[:n]
    assert [r.seqno for r in cml.records] == seqnos_before[n:]
    # Temporal order is intact.
    times = [r.time for r in cml.records]
    assert times == sorted(times)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_abort_frozen_is_equivalent_to_never_freezing(ops):
    """Freezing a prefix and aborting yields the same log as having
    appended everything without a barrier."""
    direct = _Workload(ClientModifyLog(), True)
    for kind, index, size in ops:
        direct.apply(kind, index, size)

    frozen = _Workload(ClientModifyLog(), True)
    half = ops[:len(ops) // 2]
    rest = ops[len(ops) // 2:]
    for kind, index, size in half:
        frozen.apply(kind, index, size)
    frozen.cml.freeze(len(frozen.cml))
    for kind, index, size in rest:
        frozen.apply(kind, index, size)
    frozen.cml.abort_frozen()

    def shape(cml):
        return [(r.op, r.fid, r.name,
                 r.content.fingerprint if r.content else None)
                for r in cml.records]

    assert shape(direct.cml) == shape(frozen.cml)
