"""Property: a checkpoint boundary is invisible in the output.

For a total horizon of D day units, stopping at *any* day k in
[1, D-1] and extending by the remainder must leave a store
byte-identical to the from-scratch D-day run — every timeline byte,
every metrics record, every boundary state pickle, and the manifest.
The from-scratch reference is built once per session; Hypothesis
drives the split point.
"""

import hashlib
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.ckpt import CkptOptions, extend_checkpointed, run_checkpointed

SCENARIO = "fleet-8"
TOTAL_DAYS = 3
OPTIONS = CkptOptions(day_seconds=600.0)

_reference = {}


def tree_bytes(root):
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for fname in files:
            path = os.path.join(dirpath, fname)
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            out[os.path.relpath(path, root)] = digest
    return out


def reference_tree():
    """The from-scratch D-day store's content hashes (built once)."""
    if "tree" not in _reference:
        with tempfile.TemporaryDirectory(prefix="ckpt-prop-") as base:
            out = os.path.join(base, "scratch")
            run_checkpointed(SCENARIO, days=TOTAL_DAYS, out=out,
                             options=OPTIONS)
            _reference["tree"] = tree_bytes(out)
    return _reference["tree"]


@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=1, max_value=TOTAL_DAYS - 1))
def test_any_split_day_extends_to_identical_bytes(split):
    reference = reference_tree()
    with tempfile.TemporaryDirectory(prefix="ckpt-prop-") as base:
        out = os.path.join(base, "split-%d" % split)
        run_checkpointed(SCENARIO, days=split, out=out, options=OPTIONS)
        extend_checkpointed(out, TOTAL_DAYS - split)
        assert tree_bytes(out) == reference
