"""Property-based equivalence: the pooled kernel vs the no-pooling oracle.

The differential harness replays fixed scenarios; these properties
search the space instead.  Every test runs the same randomly generated
program twice — ``Simulator(pooling="on")`` and ``pooling="off"`` —
and demands identical observable behaviour: the unpooled kernel is the
oracle, so pooling can only ever be a transparent optimization.  On
top of the oracle comparison, the pool's own invariants are checked on
random allocation scripts: a recycled object is fully reset, a live
object is never on a free list, and a stale touch is a hard
generation-counter error, never a silent schedule change.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.net import Datagram, Link
from repro.sim import Interrupt, Simulator, StaleObjectError
from repro.sim.events import _RECYCLED
from repro.sim.resources import Lock

# ---------------------------------------------------------------------------
# Random kernel programs vs the no-pooling oracle

# Delays drawn as multiples of 1/64 s: exact binary floats, so the
# interesting case — many events tied at one instant, where only the
# sequence number breaks the tie — comes up constantly instead of
# almost never.
ticks = st.integers(min_value=0, max_value=64).map(lambda n: n / 64.0)

ops = st.lists(
    st.tuples(st.sampled_from(["sleep", "lock", "spawn", "interrupt"]),
              ticks),
    min_size=1, max_size=12)


def run_program(script, pooling):
    """Run one generated program; return its observable log."""
    sim = Simulator(pooling=pooling)
    log = []
    # pooled=True is the production configuration; on an unpooled
    # simulator it transparently falls back to plain events.
    lock = Lock(sim, pooled=True)

    def napper(idx):
        try:
            yield sim.sleep(1000.0)
            log.append((sim.now, "overslept", idx))
        except Interrupt as exc:
            log.append((sim.now, "interrupted", idx, exc.cause))

    def worker(idx, kind, delay):
        if kind == "sleep":
            yield sim.sleep(delay)
            log.append((sim.now, "slept", idx))
        elif kind == "lock":
            yield sim.sleep(delay)
            yield lock.acquire()
            log.append((sim.now, "locked", idx))
            yield sim.sleep(0.25)
            log.append((sim.now, "unlocking", idx))
            lock.release()
        elif kind == "spawn":
            yield sim.sleep(delay)
            child = sim.process(worker(idx + 1000, "sleep", delay / 2),
                                name="child-%d" % idx)
            value = yield child
            log.append((sim.now, "joined", idx, value))
        elif kind == "interrupt":
            victim = sim.process(napper(idx + 2000), name="napper-%d" % idx)
            yield sim.sleep(delay)
            victim.interrupt(cause=idx)
            log.append((sim.now, "kicked", idx))

    for idx, (kind, delay) in enumerate(script):
        sim.process(worker(idx, kind, delay), name="w%d" % idx)
    sim.run()
    log.append((sim.now, "end"))
    return log


@settings(max_examples=60)
@given(ops)
def test_random_programs_match_the_unpooled_oracle(script):
    """Sleep/lock/spawn/interrupt programs log identically either way.

    This walks every pooled primitive through its production call
    sites: sleep (pool.sleep), process bootstrap (pool.stub), process
    interrupt (pool.kick), and pooled lock acquisition
    (pool.acquire_event) — against the allocating oracle.
    """
    assert run_program(script, "on") == run_program(script, "off")


# ---------------------------------------------------------------------------
# Pool invariants on random allocation scripts

delays = st.lists(ticks, min_size=1, max_size=30)


@settings(max_examples=100)
@given(delays, ticks)
def test_recycled_objects_reset_and_live_objects_distinct(script, cutoff):
    """Run a random batch of sleeps up to a random horizon.

    Every dispatched timeout must be fully reset with its generation
    bumped; every still-pending one must be untouched, absent from the
    free lists, and a distinct object (live objects are never reused).
    """
    sim = Simulator(pooling="on")
    pool = sim._pool
    batch = [(pool.sleep(delay), delay, ) for delay in script]
    gens = [timeout._gen for timeout, _ in batch]
    # All allocated while live, so no aliasing is possible.
    assert len({id(timeout) for timeout, _ in batch}) == len(batch)
    horizon = sim.timeout(cutoff)   # public timeout: survives dispatch
    sim.run(until=horizon)
    free_ids = {id(timeout) for timeout in pool._free_timeouts}
    for (timeout, delay), generation in zip(batch, gens):
        if delay <= cutoff:
            # Dispatched (pool sleeps beat the later-allocated horizon
            # on ties) and therefore recycled.
            assert timeout._value is _RECYCLED
            assert timeout.callbacks == []
            assert not timeout._recycle
            assert timeout._gen == generation + 1
        else:
            # Still live: untouched, and never on a free list.
            assert timeout._value is not _RECYCLED
            assert timeout._gen == generation
            assert id(timeout) not in free_ids


@settings(max_examples=100)
@given(delays)
def test_generation_counters_catch_every_stale_touch(script):
    """After a full run, every retained reference is a hard error."""
    sim = Simulator(pooling="on")
    pool = sim._pool
    batch = [pool.sleep(delay) for delay in script]
    gens = [timeout._gen for timeout in batch]
    sim.run()
    for timeout, generation in zip(batch, gens):
        assert timeout._gen == generation + 1
        for touch in (lambda: timeout.succeed(),
                      lambda: timeout.fail(RuntimeError("late")),
                      lambda: timeout.subscribe(lambda event: None),
                      lambda: timeout.value):
            try:
                touch()
            except StaleObjectError:
                continue
            raise AssertionError("stale touch went unnoticed: %r" % timeout)


# ---------------------------------------------------------------------------
# Batched delivery vs per-packet timeouts

packet_plans = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5_000),   # size
              ticks),                                      # gap before send
    min_size=1, max_size=25)

outages = st.one_of(
    st.none(),
    st.tuples(ticks,                                       # after
              st.floats(min_value=0.05, max_value=3.0)))   # duration


@settings(max_examples=60)
@given(packet_plans,
       st.floats(min_value=4_800.0, max_value=1e6),
       st.floats(min_value=0.0, max_value=0.2),
       st.floats(min_value=0.0, max_value=0.5),
       st.integers(min_value=0, max_value=2**31),
       outages)
def test_batched_delivery_matches_per_packet_timeouts(
        plan, bandwidth, latency, loss, seed, outage):
    """A lossy, outage-prone link delivers identically under batching.

    The lane must preserve per-direction FIFO order and every arrival
    instant, and the byte accounting must balance — under random
    packet mixes, random loss, and a mid-run outage that drops
    in-flight packets.
    """
    def run(pooling):
        sim = Simulator(pooling=pooling)
        arrived = []
        link = Link(sim, "a", "b", bandwidth_bps=bandwidth,
                    latency=latency, loss_rate=loss,
                    rng=random.Random(seed),
                    deliver=lambda d: arrived.append((sim.now, d.payload,
                                                      d.size)))
        if outage is not None:
            link.outage(after=outage[0], duration=outage[1])

        def sender():
            for index, (size, gap) in enumerate(plan):
                if gap:
                    yield sim.sleep(gap)
                link.send(Datagram(src="a", src_port=1, dst="b",
                                   dst_port=2, payload=index, size=size))

        sim.process(sender(), name="sender")
        sim.run()
        stats = link.forward.stats
        return arrived, {
            "packets": (stats.packets_sent, stats.packets_delivered,
                        stats.packets_lost, stats.packets_dropped_down),
            "bytes": (stats.bytes_sent, stats.bytes_delivered,
                      stats.bytes_lost, stats.bytes_dropped_down),
            "in_flight": link.forward.bytes_in_flight,
        }

    pooled_log, pooled_stats = run("on")
    oracle_log, oracle_stats = run("off")
    assert pooled_log == oracle_log
    assert pooled_stats == oracle_stats

    # FIFO: delivered packet indices are a strictly increasing
    # subsequence of the send order.
    indices = [payload for _, payload, _ in pooled_log]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)

    # Byte conservation at quiescence: everything sent was delivered,
    # lost, or dropped — nothing lingers in a lane deque.
    sent, delivered, lost, dropped = pooled_stats["bytes"]
    assert delivered + lost + dropped == sent
    assert pooled_stats["in_flight"] == 0
    assert delivered == sum(size for _, _, size in pooled_log)
