"""Crash-anywhere recovery: the RVM snapshot loses nothing that matters.

For an arbitrary offline session and an arbitrary crash point inside
it, a client that crashes, restarts from its persisted snapshot,
finishes the session, and reintegrates must leave the server in
exactly the state an uninterrupted client would have — and the log it
replays must be the *optimized* log, not a raw journal.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.faults import namespace_digest, restore_venus, snapshot_venus
from repro.fs.content import SyntheticContent
from repro.net import MODEM
from repro.obs.scenarios import MOUNT
from repro.venus import VenusConfig

NAMES = ["a", "b", "c", "d"]

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "mkdir", "unlink", "rename"]),
        st.integers(min_value=0, max_value=len(NAMES) - 1),
        st.integers(min_value=0, max_value=len(NAMES) - 1),
        st.integers(min_value=100, max_value=4_000),
    ),
    min_size=1, max_size=8)


def _fresh_testbed():
    config = VenusConfig(start_daemons=False)
    testbed = make_testbed(MODEM, venus_config=config, seed=11)
    tree = {MOUNT + "/work": ("dir", 0),
            MOUNT + "/work/base.txt": ("file", 1_500)}
    volume = populate_volume(testbed.server, MOUNT, tree)
    warm_cache(testbed.venus, testbed.server, volume)
    return testbed


def _apply_ops(testbed, venus, ops, start, model):
    """Interpret ``ops[start:]`` against ``model`` (name -> kind).

    The guards make every op applicable, so the *effective* session is
    a pure function of ``ops`` — identical whichever incarnation of
    Venus executes which half.
    """
    for index, (kind, i, j, size) in enumerate(ops[start:], start):
        name, other = NAMES[i], NAMES[j]
        path = MOUNT + "/work/" + name
        other_path = MOUNT + "/work/" + other
        content = SyntheticContent(size, tag=("prop", index))

        def step(kind=kind, name=name, other=other, path=path,
                 other_path=other_path, content=content):
            if kind == "write":
                if model.get(name, "file") != "file":
                    return
                yield from venus.write_file(path, content)
                model[name] = "file"
            elif kind == "mkdir":
                if name in model:
                    return
                yield from venus.mkdir(path)
                model[name] = "dir"
            elif kind == "unlink":
                if model.get(name) != "file":
                    return
                yield from venus.unlink(path)
                del model[name]
            elif kind == "rename":
                if (model.get(name) != "file" or other in model
                        or name == other):
                    return
                yield from venus.rename(path, other_path)
                del model[name]
                model[other] = "file"

        testbed.run(step())


def _cml_summary(venus):
    return [(r.seqno, r.op.value, r.fid, r.name, r.to_name,
             r.content.fingerprint if r.content is not None else None)
            for r in venus.cml]


def _connect_and_drain(testbed, venus):
    def go():
        reached = yield from venus.connect()
        assert reached
        drained = yield from venus.trickle.drain()
        assert drained

    testbed.run(go())


@settings(max_examples=15, deadline=None)
@given(ops_strategy, st.integers(min_value=0, max_value=100))
def test_crash_at_any_point_recovers_the_uninterrupted_state(ops, point):
    crash_at = point % (len(ops) + 1)

    # Uninterrupted reference run.
    straight = _fresh_testbed()
    _apply_ops(straight, straight.venus, ops, 0, {"base.txt": "file"})
    straight_log = _cml_summary(straight.venus)
    _connect_and_drain(straight, straight.venus)

    # Same session with a crash/restart after ``crash_at`` operations.
    faulted = _fresh_testbed()
    model = {"base.txt": "file"}
    _apply_ops(faulted, faulted.venus, ops[:crash_at], 0, model)
    snapshot = snapshot_venus(faulted.venus)
    faulted.venus.crash()
    revived = restore_venus(snapshot, faulted.sim, faulted.net,
                            faulted.venus.endpoint.host)
    faulted.venus = revived
    _apply_ops(faulted, revived, ops, crash_at, model)

    # The replayed log is the optimized log, byte for byte: same
    # records, same sequence numbers, same fids, same payloads.
    assert _cml_summary(revived) == straight_log

    _connect_and_drain(faulted, revived)
    assert namespace_digest(faulted.server) \
        == namespace_digest(straight.server)
    assert len(revived.cml) == 0


@settings(max_examples=10, deadline=None)
@given(ops_strategy)
def test_snapshot_preserves_log_optimizations(ops):
    """The persisted log is the optimized one — overwritten stores and
    create/unlink pairs do not resurrect across a crash."""
    testbed = _fresh_testbed()
    _apply_ops(testbed, testbed.venus, ops, 0, {"base.txt": "file"})
    before = _cml_summary(testbed.venus)
    stats_before = testbed.venus.cml.stats.snapshot()

    snapshot = snapshot_venus(testbed.venus)
    testbed.venus.crash()
    revived = restore_venus(snapshot, testbed.sim, testbed.net,
                            testbed.venus.endpoint.host)

    assert _cml_summary(revived) == before
    assert revived.cml.stats.optimized_records \
        == stats_before.optimized_records
    assert revived.cml.stats.appended_records \
        == stats_before.appended_records
