"""Property-based tests on the network and transport substrate."""

from hypothesis import example, given, settings, strategies as st

from repro.net import Datagram, Link
from repro.sim import Simulator


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10_000),
                min_size=1, max_size=20),
       st.floats(min_value=1_000.0, max_value=1e7),
       st.floats(min_value=0.0, max_value=0.5))
def test_fifo_links_never_reorder(sizes, bandwidth, latency):
    """A FIFO link delivers packets in send order, whatever the mix."""
    sim = Simulator()
    arrived = []
    import random
    link = Link(sim, "a", "b", bandwidth_bps=bandwidth, latency=latency,
                rng=random.Random(0),
                deliver=lambda d: arrived.append(d.ident))
    sent = []
    for size in sizes:
        datagram = Datagram(src="a", src_port=1, dst="b", dst_port=2,
                            payload=None, size=size)
        sent.append(datagram.ident)
        link.send(datagram)
    sim.run()
    assert arrived == sent


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10_000),
                min_size=1, max_size=20),
       st.floats(min_value=1_000.0, max_value=1e7))
def test_link_throughput_never_exceeds_bandwidth(sizes, bandwidth):
    sim = Simulator()
    done = {}
    import random
    link = Link(sim, "a", "b", bandwidth_bps=bandwidth, latency=0.0,
                rng=random.Random(0),
                deliver=lambda d: done.setdefault("t", sim.now))
    total = sum(sizes)
    for size in sizes:
        link.send(Datagram(src="a", src_port=1, dst="b", dst_port=2,
                           payload=None, size=size))
    sim.run()
    minimum = total * 8.0 / bandwidth
    assert sim.now >= minimum * 0.999


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31),
       st.floats(min_value=0.0, max_value=0.9))
def test_loss_statistics_conserve_packets(seed, loss):
    sim = Simulator()
    delivered = []
    import random
    link = Link(sim, "a", "b", bandwidth_bps=1e6, loss_rate=loss,
                rng=random.Random(seed),
                deliver=lambda d: delivered.append(d))
    n = 200
    for _ in range(n):
        link.send(Datagram(src="a", src_port=1, dst="b", dst_port=2,
                           payload=None, size=100))
    sim.run()
    stats = link.forward.stats
    assert stats.packets_sent == n
    assert stats.packets_lost + stats.packets_delivered == n
    assert stats.packets_delivered == len(delivered)


# max_examples only: the deadline-safe "repro" profile registered in
# tests/conftest.py supplies deadline=None and suppresses the too_slow
# health check, which the pinned worst-case example below used to flake
# on loaded CI runners.
@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=500_000),
       st.sampled_from([9_600.0, 64_000.0, 2e6, 10e6]),
       st.floats(min_value=0.0, max_value=0.05))
# A quarter-megabyte store over a 9.6 Kb/s link at ~4.7% loss can
# exhaust SFTP's retransmit budget and legally abort — the paper's
# weak-connectivity give-up behaviour, not a byte-accounting bug.
@example(nbytes=262143, bandwidth=9600.0, loss=0.046875)
def test_sftp_delivers_exact_byte_counts(nbytes, bandwidth, loss):
    """Whatever the link, a completed Store delivers exactly its bytes.

    A Store that the transport *declares dead* (retry budget exhausted
    under sustained loss on a slow link) is outside the property: the
    call fails loudly with ConnectionDead rather than completing, so
    there is no delivery to check bytes against.
    """
    from repro.net import Network
    from repro.net.host import IDEAL
    from repro.rpc2 import Rpc2Endpoint
    from repro.rpc2.errors import ConnectionDead
    from repro.sim import RandomStreams
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(nbytes).stream("net"))
    net.add_link("c", "s", bandwidth_bps=bandwidth, loss_rate=loss)
    client = Rpc2Endpoint(sim, net, "c", 2432, IDEAL,
                          default_bps=bandwidth)
    server = Rpc2Endpoint(sim, net, "s", 2432, IDEAL,
                          default_bps=bandwidth)
    server.register("Store", lambda ctx, args: {"got": ctx.received_bytes})
    conn = client.connect("s")
    try:
        result = sim.run(conn.call("Store", {}, send_size=nbytes))
    except ConnectionDead:
        return
    assert result.result["got"] == nbytes
