"""Model-based equivalence of the schedulers against a sorted oracle.

The oracle is a plain list: the next entry out of any correct scheduler
is ``min(pending)`` under tuple order ``(when, prio, seq)``.  Hypothesis
drives arbitrary interleavings of push/pop/cancel with adversarial time
distributions — all-same-time ties, denormal-small deltas, bucket
boundary values (the calendar width starts at 1.0 and the overflow
horizon at 4096 widths), far-future outliers, and +inf — and the suite
checks every observable after every operation: pop order, ``len``,
``peek_entry``.  Both real kinds run the same operation script, so the
calendar queue is held to exactly the heap's behaviour, resizes
included.
"""

from itertools import count

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.queue import RESIZE_AT, make_queue

#: Delays chosen to stress the calendar geometry: ties (0.0), denormal
#: and near-epsilon steps, values hugging the initial bucket width
#: (1.0) and the overflow horizon (4096 widths), far-future outliers,
#: and infinity (how "never" timers are spelled).
DELAYS = st.one_of(
    st.just(0.0),
    st.sampled_from([5e-324, 1e-12, 0.25, 0.5, 0.999999, 1.0,
                     1.0000001, 2.0, 3.5, 4095.0, 4096.0, 4097.0,
                     1e7, float("inf")]),
    st.floats(min_value=0.0, max_value=8.0,
              allow_nan=False, allow_infinity=False),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), DELAYS, st.integers(0, 1)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("cancel"), st.integers(0, 10**6)),
    ),
    max_size=150,
)

KINDS = ("heap", "calendar")


def run_script(kind, ops):
    """Execute one operation script against ``kind`` and the oracle."""
    queue = make_queue(kind)
    sequence = count()
    instant = 0.0
    pending = []
    for op in ops:
        if op[0] == "push":
            _, delay, prio = op
            entry = (instant + delay, prio, next(sequence), None)
            queue.push(entry)
            pending.append(entry)
        elif op[0] == "pop":
            if not pending:
                with pytest.raises(IndexError):
                    queue.pop()
            else:
                expected = min(pending)
                got = queue.pop()
                assert got == expected, (kind, got, expected)
                pending.remove(got)
                instant = got[0]
        else:
            _, pick = op
            if not pending:
                assert queue.cancel((0.0, 0, -1, None)) is False
            else:
                victim = sorted(pending)[pick % len(pending)]
                assert queue.cancel(victim) is True
                pending.remove(victim)
        assert len(queue) == len(pending)
        expected_peek = min(pending) if pending else None
        assert queue.peek_entry() == expected_peek
        expected_when = expected_peek[0] if pending else None
        assert queue.peek_when() == expected_when
    # Drain: whatever the script left behind must come out in order.
    for expected in sorted(pending):
        assert queue.pop() == expected
    assert len(queue) == 0
    assert queue.peek_entry() is None


@settings(max_examples=120, deadline=None)
@given(OPS)
def test_calendar_queue_matches_the_oracle(ops):
    run_script("calendar", ops)


@settings(max_examples=60, deadline=None)
@given(OPS)
def test_heap_queue_matches_the_oracle(ops):
    run_script("heap", ops)


@pytest.mark.parametrize("kind", KINDS)
@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=2, max_size=40),
       st.sampled_from([0.0, 0.5, 4096.5, float("inf")]))
def test_fifo_tie_break_at_identical_when_and_prio(kind, prios, when):
    """Entries tied on (when, prio) must pop in insertion order."""
    queue = make_queue(kind)
    entries = [(when, prio, seq, None) for seq, prio in enumerate(prios)]
    for entry in entries:
        queue.push(entry)
    expected = sorted(entries)      # (when, prio, seq): FIFO within prio
    assert [queue.pop() for _ in entries] == expected


@pytest.mark.parametrize("kind", KINDS)
def test_order_is_stable_across_bucket_resizes(kind):
    """A population crossing the resize threshold repeatedly still
    drains in exact tuple order (the resize is pure restructuring)."""
    queue = make_queue(kind)
    entries = []
    sequence = count()
    # Deterministic pseudo-spread without touching any RNG: a Weyl
    # sequence over a wide span, several times the resize threshold.
    for i in range(RESIZE_AT * 8):
        when = (i * 0.6180339887498949) % 97.0 + (i % 7) * 13.0
        entry = (when, i % 2, next(sequence), None)
        entries.append(entry)
        queue.push(entry)
    if kind == "calendar":
        assert queue._width != 1.0, "resize never triggered"
    assert [queue.pop() for _ in entries] == sorted(entries)


@settings(max_examples=40, deadline=None)
@given(OPS)
def test_calendar_and_heap_agree_operation_for_operation(ops):
    """Direct cross-implementation agreement (no oracle in the middle):
    the same script produces the same pop stream from both kinds."""
    streams = []
    for kind in KINDS:
        queue = make_queue(kind)
        sequence = count()
        instant = 0.0
        popped = []
        size = 0
        for op in ops:
            if op[0] == "push":
                _, delay, prio = op
                queue.push((instant + delay, prio, next(sequence), None))
                size += 1
            elif op[0] == "pop" and size:
                got = queue.pop()
                popped.append(got)
                instant = got[0]
                size -= 1
        while size:
            popped.append(queue.pop())
            size -= 1
        streams.append(popped)
    assert streams[0] == streams[1]
