"""Property-based tests on models: patience, chunking, estimation,
fragments, and simulator determinism."""

from hypothesis import given, settings, strategies as st

from repro.core.patience import PatienceModel
from repro.fs import Fid, SyntheticContent
from repro.rpc2.rtt import BandwidthEstimator, RttEstimator
from repro.server.store import FragmentStore
from repro.venus.cml import RECORD_OVERHEAD, ClientModifyLog, CmlOp, \
    CmlRecord


# ------------------------------------------------------------ patience

@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_patience_monotone_in_priority(p1, p2):
    model = PatienceModel()
    lo, hi = sorted((p1, p2))
    assert model.threshold(lo) <= model.threshold(hi)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.floats(min_value=0.001, max_value=10_000.0))
def test_patience_approval_consistent_with_threshold(priority, wait):
    model = PatienceModel()
    assert model.approves(priority, wait) \
        == (wait <= model.threshold(priority))


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=3.001, max_value=100_000.0))
def test_priority_needed_is_tight(wait):
    model = PatienceModel()
    priority = model.priority_needed(wait)
    assert model.approves(priority, wait)
    assert priority == 0 or not model.approves(priority - 1, wait)


# ---------------------------------------------------------- estimators

@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=30.0),
                min_size=1, max_size=50))
def test_rto_always_within_bounds(samples):
    estimator = RttEstimator(min_rto=0.3, max_rto=60.0)
    for sample in samples:
        estimator.observe(sample)
        assert 0.3 <= estimator.rto <= 60.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=10**7),
                          st.floats(min_value=0.001, max_value=1000.0)),
                min_size=1, max_size=50))
def test_bandwidth_estimate_within_sample_range(samples):
    estimator = BandwidthEstimator()
    rates = []
    for nbytes, seconds in samples:
        estimator.observe(nbytes, seconds)
        rates.append(nbytes / seconds)
    assert min(rates) * 0.99 <= estimator.bytes_per_sec \
        <= max(rates) * 1.01


# ------------------------------------------------------------ chunking

sizes = st.lists(st.integers(min_value=0, max_value=200_000),
                 min_size=1, max_size=30)


@settings(max_examples=100, deadline=None)
@given(sizes, st.integers(min_value=100, max_value=500_000))
def test_chunk_selection_invariants(store_sizes, budget):
    cml = ClientModifyLog()
    for i, size in enumerate(store_sizes):
        cml.append(CmlRecord(op=CmlOp.STORE, fid=Fid(1, i, i),
                             content=SyntheticContent(size)), float(i))
    chunk = cml.select_chunk(now=10_000.0, aging_window=0.0,
                             chunk_bytes=budget)
    # Non-empty whenever records exist, a strict log prefix, and within
    # budget unless it is a single oversized record.
    assert chunk
    assert chunk == cml.records[:len(chunk)]
    total = sum(r.size for r in chunk)
    assert total <= budget or len(chunk) == 1
    # Maximality: the next record would not have fit.
    if len(chunk) < len(cml.records):
        assert total + cml.records[len(chunk)].size > budget


@settings(max_examples=100, deadline=None)
@given(sizes,
       st.floats(min_value=0.0, max_value=5_000.0),
       st.floats(min_value=0.0, max_value=10_000.0))
def test_eligibility_is_temporal_prefix(store_sizes, window, now_offset):
    cml = ClientModifyLog()
    for i, size in enumerate(store_sizes):
        cml.append(CmlRecord(op=CmlOp.STORE, fid=Fid(1, i, i),
                             content=SyntheticContent(size)),
                   float(i * 100))
    now = float(len(store_sizes) * 100) + now_offset
    eligible = cml.eligible_records(now, window)
    assert eligible == cml.records[:len(eligible)]
    for record in eligible:
        assert now - record.time >= window
    if len(eligible) < len(cml.records):
        assert now - cml.records[len(eligible)].time < window


# ------------------------------------------------------------ fragments

@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=1_000_000),
       st.integers(min_value=1, max_value=40),
       st.data())
def test_fragment_store_completes_in_any_order(total, pieces, data):
    store = FragmentStore()
    key = ("client", 1)
    fragment = max(1, (total + pieces - 1) // pieces)
    count = (total + fragment - 1) // fragment
    order = data.draw(st.permutations(range(count)))
    for index in order:
        nbytes = min(fragment, total - index * fragment)
        store.put(key, index, nbytes, total)
    assert store.is_complete(key, total)
    assert store.received(key) == total
    store.consume(key)
    assert store.received(key) == 0


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=2, max_value=1_000_000),
       st.integers(min_value=1, max_value=40))
def test_fragment_store_incomplete_until_last(total, pieces):
    store = FragmentStore()
    key = ("client", 2)
    fragment = max(1, (total + pieces - 1) // pieces)
    count = (total + fragment - 1) // fragment
    for index in range(count - 1):
        store.put(key, index, min(fragment, total - index * fragment),
                  total)
    assert not store.is_complete(key, total)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=10**6),
       st.integers(min_value=1, max_value=10**6))
def test_fragment_store_restart_on_size_change(old_total, new_total):
    store = FragmentStore()
    key = ("client", 3)
    store.put(key, 0, min(1000, old_total), old_total)
    store.begin(key, new_total)
    if new_total != old_total:
        assert store.received(key) == 0   # stale buffer discarded
    else:
        assert store.received(key) > 0


# --------------------------------------------------------- determinism

@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_trace_simulator_deterministic(seed):
    from repro.trace.generate import SegmentSpec, generate_segment
    from repro.trace.simulator import CmlSimulator
    spec = SegmentSpec(name="prop", seed=seed, duration=300.0,
                       target_references=500, oneshot_writes=10,
                       n_source_files=20, hot_files=2,
                       edit_writes_per_file=3, churn_triples=2,
                       pauses_big=2, pauses_med=5)
    a = CmlSimulator(aging_window=120.0).run(generate_segment(spec))
    b = CmlSimulator(aging_window=120.0).run(generate_segment(spec))
    assert a == b
