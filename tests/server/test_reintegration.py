"""Server-side reintegration: validation, conflicts, atomic apply."""

import pytest

from repro.fs import (
    Fid,
    ObjectType,
    SyntheticContent,
    Vnode,
    Volume,
    VolumeRegistry,
)
from repro.server.reintegration import Reintegrator
from repro.venus.cml import CmlOp, CmlRecord


@pytest.fixture
def world():
    registry = VolumeRegistry()
    volume = Volume(7, "v")
    registry.mount("/coda/v", volume)
    directory = volume.root
    existing = Vnode(volume.alloc_fid(), ObjectType.FILE,
                     content=SyntheticContent(100, tag="orig"))
    volume.add(existing)
    directory.children["old.txt"] = existing.fid
    return registry, volume, Reintegrator(registry), existing


def rec(op, fid, **kwargs):
    return CmlRecord(op=op, fid=fid, **kwargs)


def test_clean_chunk_applies(world):
    registry, volume, reintegrator, existing = world
    new_fid = Fid(7, 500, 500)
    records = [
        rec(CmlOp.CREATE, new_fid, parent=volume.root_fid, name="new.txt",
            seqno=1),
        rec(CmlOp.STORE, new_fid, content=SyntheticContent(2_000),
            seqno=2),
        rec(CmlOp.STORE, existing.fid,
            content=SyntheticContent(300, tag="v2"),
            base_version=existing.version, seqno=3),
    ]
    assert reintegrator.validate(records) == []
    new_versions, stamps = reintegrator.apply(records, mtime=5.0)
    assert volume.root.lookup("new.txt") == new_fid
    assert volume.get(new_fid).content.size == 2_000
    assert existing.content.tag == "v2"
    assert new_versions[existing.fid] == existing.version
    assert 7 in stamps


def test_update_update_conflict_detected(world):
    registry, volume, reintegrator, existing = world
    stale = existing.version
    volume.bump(existing)     # another client got there first
    records = [rec(CmlOp.STORE, existing.fid,
                   content=SyntheticContent(1), base_version=stale,
                   seqno=1)]
    conflicts = reintegrator.validate(records)
    assert conflicts == [(1, "update/update conflict")]


def test_update_on_removed_object_conflicts(world):
    registry, volume, reintegrator, existing = world
    volume.remove(existing.fid)
    records = [rec(CmlOp.STORE, existing.fid,
                   content=SyntheticContent(1), base_version=1, seqno=1)]
    assert reintegrator.validate(records)[0][1] == "object was removed"


def test_name_collision_conflicts(world):
    registry, volume, reintegrator, existing = world
    records = [rec(CmlOp.CREATE, Fid(7, 501, 501),
                   parent=volume.root_fid, name="old.txt", seqno=1)]
    assert reintegrator.validate(records)[0][1] == "name collision"


def test_update_remove_conflict(world):
    registry, volume, reintegrator, existing = world
    stale = existing.version
    volume.bump(existing)
    records = [rec(CmlOp.UNLINK, existing.fid, parent=volume.root_fid,
                   name="old.txt", base_version=stale, seqno=1)]
    assert reintegrator.validate(records)[0][1] == "update/remove conflict"


def test_rmdir_of_nonempty_dir_conflicts(world):
    registry, volume, reintegrator, existing = world
    subdir = Vnode(volume.alloc_fid(), ObjectType.DIRECTORY)
    volume.add(subdir)
    volume.root.children["sub"] = subdir.fid
    subdir.children["occupied"] = existing.fid
    records = [rec(CmlOp.RMDIR, subdir.fid, parent=volume.root_fid,
                   name="sub", seqno=1)]
    assert reintegrator.validate(records)[0][1] == "directory not empty"


def test_conflict_cascades_to_dependents(world):
    """A failed create makes its dependent store conflict too."""
    registry, volume, reintegrator, existing = world
    doomed = Fid(7, 502, 502)
    records = [
        rec(CmlOp.CREATE, doomed, parent=volume.root_fid, name="old.txt",
            seqno=1),                                 # name collision
        rec(CmlOp.STORE, doomed, content=SyntheticContent(1), seqno=2),
    ]
    conflicts = reintegrator.validate(records)
    assert [seqno for seqno, _r in conflicts] == [1, 2]


def test_validation_is_side_effect_free(world):
    """Validate never mutates server state, even on clean chunks."""
    registry, volume, reintegrator, existing = world
    stamp_before = volume.stamp
    version_before = existing.version
    records = [
        rec(CmlOp.STORE, existing.fid, content=SyntheticContent(5),
            base_version=existing.version, seqno=1),
        rec(CmlOp.UNLINK, existing.fid, parent=volume.root_fid,
            name="old.txt", base_version=existing.version, seqno=2),
    ]
    assert reintegrator.validate(records) == []
    assert volume.stamp == stamp_before
    assert existing.version == version_before
    assert volume.root.lookup("old.txt") == existing.fid


def test_intra_chunk_dependencies_validate(world):
    """Create-then-store-then-rename within one chunk is clean."""
    registry, volume, reintegrator, existing = world
    fid = Fid(7, 503, 503)
    records = [
        rec(CmlOp.CREATE, fid, parent=volume.root_fid, name="tmp",
            seqno=1),
        rec(CmlOp.STORE, fid, content=SyntheticContent(9), seqno=2),
        rec(CmlOp.RENAME, fid, parent=volume.root_fid, name="tmp",
            to_parent=volume.root_fid, to_name="final", seqno=3),
    ]
    assert reintegrator.validate(records) == []
    reintegrator.apply(records, mtime=1.0)
    assert volume.root.lookup("final") == fid
    assert volume.root.lookup("tmp") is None


def test_apply_rename_and_link_and_rmdir(world):
    registry, volume, reintegrator, existing = world
    subdir_fid = Fid(7, 504, 504)
    records = [
        rec(CmlOp.MKDIR, subdir_fid, parent=volume.root_fid, name="d",
            seqno=1),
        rec(CmlOp.LINK, existing.fid, parent=subdir_fid, name="hard",
            seqno=2),
        rec(CmlOp.UNLINK, existing.fid, parent=subdir_fid, name="hard",
            base_version=None, seqno=3),
        rec(CmlOp.RMDIR, subdir_fid, parent=volume.root_fid, name="d",
            seqno=4),
    ]
    assert reintegrator.validate(records) == []
    reintegrator.apply(records, mtime=1.0)
    assert volume.root.lookup("d") is None
    # The original link still exists; the file survived.
    assert volume.get(existing.fid) is not None
