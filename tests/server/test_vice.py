"""Vice RPC handlers exercised through a raw RPC2 endpoint."""

import pytest

from repro.fs import Fid, ObjectType, SyntheticContent
from repro.net import ETHERNET, Network
from repro.net.host import IDEAL, SERVER_1995
from repro.rpc2 import Rpc2Endpoint
from repro.server import CodaServer
from repro.sim import Simulator
from repro.venus.cml import CmlOp, CmlRecord


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    net.add_link("client", "server", profile=ETHERNET)
    server = CodaServer(sim, net, "server", SERVER_1995)
    volume = server.create_volume("v", "/coda/v")
    endpoint = Rpc2Endpoint(sim, net, "client", 2432, IDEAL)
    conn = endpoint.connect("server")
    return sim, server, volume, conn


def call(sim, conn, proc, args, **kw):
    return sim.run(conn.call(proc, args, **kw)).result


def test_getattr_returns_status_and_establishes_callback(world):
    sim, server, volume, conn = world
    result = call(sim, conn, "GetAttr", {"fid": volume.root_fid})
    assert result["status"].otype is ObjectType.DIRECTORY
    assert result["volume_stamp"] == volume.stamp
    assert server.callbacks.has_object("client", volume.root_fid)


def test_getattr_missing_object(world):
    sim, server, volume, conn = world
    result = call(sim, conn, "GetAttr", {"fid": Fid(volume.volid, 9, 9)})
    assert result["error"] == "nofile"


def test_make_store_fetch_cycle(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 777, 777)
    made = call(sim, conn, "MakeObject",
                {"parent": volume.root_fid, "name": "f", "fid": fid,
                 "otype": "file", "content": SyntheticContent(0),
                 "target": None})
    assert made["status"].fid == fid
    stored = call(sim, conn, "Store",
                  {"fid": fid, "content": SyntheticContent(500),
                   "base_version": made["status"].version},
                  send_size=500)
    assert stored["version"] == made["status"].version + 1
    fetched = sim.run(conn.call("Fetch", {"fid": fid}))
    assert fetched.result["status"].length == 500
    assert fetched.bulk_bytes == 500


def test_store_version_conflict(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 777, 777)
    call(sim, conn, "MakeObject",
         {"parent": volume.root_fid, "name": "f", "fid": fid,
          "otype": "file", "content": SyntheticContent(0),
          "target": None})
    result = call(sim, conn, "Store",
                  {"fid": fid, "content": SyntheticContent(1),
                   "base_version": 99}, send_size=1)
    assert result["error"] == "conflict"


def test_make_object_name_collision(world):
    sim, server, volume, conn = world
    args = {"parent": volume.root_fid, "name": "dup",
            "fid": Fid(volume.volid, 901, 901), "otype": "file",
            "content": SyntheticContent(0), "target": None}
    call(sim, conn, "MakeObject", args)
    again = dict(args, fid=Fid(volume.volid, 902, 902))
    assert call(sim, conn, "MakeObject", again)["error"] == "exists"


def test_validate_volumes_side_effect(world):
    sim, server, volume, conn = world
    result = call(sim, conn, "ValidateVolumes",
                  {"stamps": {volume.volid: volume.stamp}})
    valid, stamp = result["results"][volume.volid]
    assert valid and stamp == volume.stamp
    assert server.callbacks.has_volume("client", volume.volid)


def test_validate_volumes_stale_and_unknown(world):
    sim, server, volume, conn = world
    result = call(sim, conn, "ValidateVolumes",
                  {"stamps": {volume.volid: volume.stamp - 1, 999: 5}})
    valid, stamp = result["results"][volume.volid]
    assert not valid and stamp == volume.stamp
    assert result["results"][999] == (False, None)
    assert not server.callbacks.has_volume("client", volume.volid)


def test_reintegrate_applies_and_reports_versions(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 888, 888)
    records = [
        CmlRecord(op=CmlOp.CREATE, fid=fid, parent=volume.root_fid,
                  name="r", seqno=1),
        CmlRecord(op=CmlOp.STORE, fid=fid,
                  content=SyntheticContent(2_000), seqno=2),
    ]
    result = call(sim, conn, "Reintegrate",
                  {"records": records, "preshipped": []},
                  send_size=2_000)
    assert result["status"] == "ok"
    assert result["new_versions"][fid] == 2
    assert volume.get(fid).content.size == 2_000
    assert server.reintegrations == 1


def test_reintegrate_conflict_applies_nothing(world):
    sim, server, volume, conn = world
    stamp_before = volume.stamp
    fid = Fid(volume.volid, 888, 888)
    records = [
        CmlRecord(op=CmlOp.STORE, fid=fid,
                  content=SyntheticContent(10), base_version=1, seqno=1),
        CmlRecord(op=CmlOp.MKDIR, fid=Fid(volume.volid, 889, 889),
                  parent=volume.root_fid, name="newdir", seqno=2),
    ]
    result = call(sim, conn, "Reintegrate",
                  {"records": records, "preshipped": []}, send_size=10)
    assert result["status"] == "conflict"
    assert [s for s, _r in result["conflicts"]] == [1]
    # Atomicity: the clean mkdir was NOT applied either.
    assert volume.root.lookup("newdir") is None
    assert volume.stamp == stamp_before


def test_fragmented_store_then_reintegrate(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 890, 890)
    total = 50_000
    for index, nbytes in enumerate((20_000, 20_000, 10_000)):
        reply = call(sim, conn, "PutFragment",
                     {"key": 7, "index": index, "total_size": total},
                     send_size=nbytes)
    assert reply["received"] == total
    records = [
        CmlRecord(op=CmlOp.CREATE, fid=fid, parent=volume.root_fid,
                  name="big", seqno=6),
        CmlRecord(op=CmlOp.STORE, fid=fid,
                  content=SyntheticContent(total), seqno=7),
    ]
    result = call(sim, conn, "Reintegrate",
                  {"records": records, "preshipped": [7]}, send_size=0)
    assert result["status"] == "ok"
    assert volume.get(fid).content.size == total


def test_reintegrate_missing_fragments_rejected(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 891, 891)
    call(sim, conn, "PutFragment",
         {"key": 9, "index": 0, "total_size": 40_000}, send_size=10_000)
    records = [
        CmlRecord(op=CmlOp.CREATE, fid=fid, parent=volume.root_fid,
                  name="partial", seqno=8),
        CmlRecord(op=CmlOp.STORE, fid=fid,
                  content=SyntheticContent(40_000), seqno=9),
    ]
    result = call(sim, conn, "Reintegrate",
                  {"records": records, "preshipped": [9]}, send_size=0)
    assert result["status"] == "missing_data"
    assert result["missing"] == [9]
    assert volume.get(fid) is None


def test_rename_and_remove_via_rpc(world):
    sim, server, volume, conn = world
    fid = Fid(volume.volid, 892, 892)
    call(sim, conn, "MakeObject",
         {"parent": volume.root_fid, "name": "a", "fid": fid,
          "otype": "file", "content": SyntheticContent(0),
          "target": None})
    call(sim, conn, "Rename",
         {"parent": volume.root_fid, "name": "a",
          "to_parent": volume.root_fid, "to_name": "b"})
    assert volume.root.lookup("b") == fid
    call(sim, conn, "Remove", {"parent": volume.root_fid, "name": "b"})
    assert volume.root.lookup("b") is None
    assert volume.get(fid) is None
