"""Server replication: read-one/write-all with resolution."""

import pytest

from repro.fs import Content
from repro.net import ETHERNET, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.server.replication import ReplicaSet, create_replicated_volume
from repro.sim import Simulator
from repro.venus import Venus, VenusConfig, VenusState
from repro.venus.cache import CacheEntry

M = "/coda/rep/vol"


def vsg_world(n_servers=3):
    sim = Simulator()
    net = Network(sim)
    servers = []
    links = {}
    names = ["server%d" % i for i in range(n_servers)]
    for name in names:
        links[name] = net.add_link("laptop", name, profile=ETHERNET)
        servers.append(CodaServer(sim, net, name, SERVER_1995))
    volumes = create_replicated_volume(servers, "rep", M)
    venus = Venus(sim, net, "laptop", servers, LAPTOP_1995,
                  config=VenusConfig())
    venus.learn_mounts(servers[0].registry)
    return sim, servers, volumes, venus, links


def test_replicated_volumes_are_identical():
    sim, servers, volumes, venus, links = vsg_world()
    assert len({v.volid for v in volumes}) == 1
    assert len({v.root_fid for v in volumes}) == 1


def test_update_reaches_every_replica():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        yield from venus.write_file(M + "/shared.txt", b"everywhere")

    sim.run(sim.process(scenario()))
    for volume in volumes:
        fid = volume.root.lookup("shared.txt")
        assert fid is not None
        assert volume.require(fid).content == Content.of(b"everywhere")


def test_read_fails_over_when_preferred_replica_dies():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        yield from venus.write_file(M + "/f", b"data")
        # Drop the cached copy, kill the preferred server, read again.
        entry = yield from venus.stat(M + "/f")
        venus.cache.remove(entry.fid)
        links["server0"].set_up(False)
        content = yield from venus.read_file(M + "/f")
        return content

    content = sim.run(sim.process(scenario()))
    assert content == Content.of(b"data")
    assert venus.state.state is not VenusState.EMULATING


def test_updates_continue_and_replica_marked_stale():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        links["server2"].set_up(False)
        yield from venus.write_file(M + "/g", b"missed by server2")

    sim.run(sim.process(scenario()))
    assert volumes[0].root.lookup("g") is not None
    assert volumes[1].root.lookup("g") is not None
    assert volumes[2].root.lookup("g") is None
    assert "server2" in venus.conn.stale


def test_rejoining_replica_is_resolved_before_use():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        links["server2"].set_up(False)
        yield from venus.write_file(M + "/h", b"while you were out")
        links["server2"].set_up(True)
        # The next update heals server2 first (resolution), then
        # applies everywhere.
        yield from venus.write_file(M + "/i", b"after rejoin")

    sim.run(sim.process(scenario()))
    assert venus.conn.resolutions >= 1
    assert venus.conn.stale == set()
    for name in ("h", "i"):
        fid = volumes[2].root.lookup(name)
        assert fid is not None, name
    assert volumes[2].stamp == volumes[0].stamp


def test_all_replicas_down_means_disconnected():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        yield from venus.readdir(M)     # cache the root while online
        for link in links.values():
            link.set_up(False)
        yield from venus.write_file(M + "/j", b"offline")

    sim.run(sim.process(scenario()))
    assert venus.state.state is VenusState.EMULATING
    assert len(venus.cml) > 0


def test_reintegration_fans_out_to_all_replicas():
    sim, servers, volumes, venus, links = vsg_world()

    def scenario():
        yield from venus.connect()
        yield from venus.readdir(M)     # cache the root while online
        for link in links.values():
            link.set_up(False)
        venus.handle_disconnection()
        yield from venus.write_file(M + "/k", b"logged offline")
        for link in links.values():
            link.set_up(True)
        yield from venus.connect()

    sim.run(sim.process(scenario()))
    assert len(venus.cml) == 0
    for volume in volumes:
        assert volume.root.lookup("k") is not None
