"""Callback registry semantics."""

from repro.fs import Fid
from repro.server import CallbackRegistry


F1 = Fid(7, 1, 1)
F2 = Fid(7, 2, 2)
F_OTHER_VOL = Fid(8, 1, 1)


def test_object_callback_lifecycle():
    registry = CallbackRegistry()
    registry.add_object("alice", F1)
    assert registry.has_object("alice", F1)
    broken_obj, broken_vol = registry.breaks_for_update("bob", F1)
    assert broken_obj == {"alice"}
    assert not registry.has_object("alice", F1)
    assert registry.object_breaks == 1


def test_updater_keeps_own_callbacks():
    registry = CallbackRegistry()
    registry.add_object("alice", F1)
    registry.add_volume("alice", 7)
    broken_obj, broken_vol = registry.breaks_for_update("alice", F1)
    assert broken_obj == set() and broken_vol == set()
    assert registry.has_object("alice", F1)
    assert registry.has_volume("alice", 7)


def test_volume_callback_broken_by_any_update_in_volume():
    registry = CallbackRegistry()
    registry.add_volume("alice", 7)
    _obj, vol = registry.breaks_for_update("bob", F2)
    assert vol == {"alice"}
    assert not registry.has_volume("alice", 7)
    assert registry.volume_breaks == 1


def test_update_in_other_volume_does_not_break():
    registry = CallbackRegistry()
    registry.add_volume("alice", 7)
    _obj, vol = registry.breaks_for_update("bob", F_OTHER_VOL)
    assert vol == set()
    assert registry.has_volume("alice", 7)


def test_multiple_holders_all_broken():
    registry = CallbackRegistry()
    for client in ("a", "b", "c"):
        registry.add_object(client, F1)
        registry.add_volume(client, 7)
    obj, vol = registry.breaks_for_update("a", F1)
    assert obj == {"b", "c"}
    assert vol == {"b", "c"}


def test_drop_client_forgets_all_promises():
    registry = CallbackRegistry()
    registry.add_object("alice", F1)
    registry.add_object("alice", F2)
    registry.add_volume("alice", 7)
    registry.drop_client("alice")
    assert not registry.has_object("alice", F1)
    assert not registry.has_volume("alice", 7)


def test_holder_counts():
    registry = CallbackRegistry()
    registry.add_object("a", F1)
    registry.add_object("b", F1)
    registry.add_volume("a", 7)
    assert registry.object_holder_count(F1) == 2
    assert registry.volume_holder_count(7) == 1
    assert registry.object_holder_count(F2) == 0
