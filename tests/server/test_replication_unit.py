"""ReplicaSet and resolution unit behaviour."""

import pytest

from repro.fs import Content, ObjectType, SyntheticContent, Vnode
from repro.net import ETHERNET, Network
from repro.net.host import IDEAL, SERVER_1995
from repro.rpc2 import Rpc2Endpoint
from repro.server import CodaServer
from repro.server.replication import (
    UPDATE_PROCS,
    ReplicaSet,
    create_replicated_volume,
    resolve_replica,
)
from repro.sim import Simulator


def test_update_procs_cover_every_mutating_handler():
    """Every Vice handler that mutates state must fan out."""
    mutating = {"Store", "MakeObject", "Remove", "Rename", "SetAttr",
                "Link", "PutFragment", "Reintegrate"}
    assert UPDATE_PROCS == frozenset(mutating)


def test_empty_replica_set_rejected():
    sim = Simulator()
    net = Network(sim)
    endpoint = Rpc2Endpoint(sim, net, "c", 2432, IDEAL)
    with pytest.raises(ValueError):
        ReplicaSet(endpoint, [])


def test_resolve_replica_copies_state_and_counters():
    sim = Simulator()
    net = Network(sim)
    source = CodaServer(sim, net, "s1", SERVER_1995)
    target = CodaServer(sim, net, "s2", SERVER_1995)
    src_vol, dst_vol = create_replicated_volume([source, target],
                                                "v", "/coda/v")
    # Source diverges: a new file plus stamp bumps.
    vnode = Vnode(src_vol.alloc_fid(), ObjectType.FILE,
                  content=Content.of(b"fresh"))
    src_vol.add(vnode)
    src_vol.root.children["f"] = vnode.fid
    src_vol.bump(src_vol.root)
    # Target holds a stale callback that must not survive resolution.
    target.callbacks.add_volume("someclient", dst_vol.volid)

    resolved = resolve_replica(source, target, src_vol.volid)
    assert resolved.stamp == src_vol.stamp
    assert resolved.root.lookup("f") == vnode.fid
    assert resolved.require(vnode.fid).content == Content.of(b"fresh")
    assert not target.callbacks.has_volume("someclient", dst_vol.volid)
    # Copies are independent objects.
    assert resolved.require(vnode.fid) is not vnode
    # Future allocations cannot collide.
    assert resolved.alloc_fid() not in src_vol.vnodes


def test_resolved_replica_alloc_does_not_collide_with_source():
    sim = Simulator()
    net = Network(sim)
    source = CodaServer(sim, net, "s1", SERVER_1995)
    target = CodaServer(sim, net, "s2", SERVER_1995)
    src_vol, dst_vol = create_replicated_volume([source, target],
                                                "v", "/coda/v")
    for _ in range(5):
        vnode = Vnode(src_vol.alloc_fid(), ObjectType.FILE,
                      content=SyntheticContent(1))
        src_vol.add(vnode)
    resolve_replica(source, target, src_vol.volid)
    next_src = src_vol.alloc_fid()
    next_dst = target.registry.by_id(src_vol.volid).alloc_fid()
    assert next_src == next_dst   # counters advanced in lockstep
