"""Trace generation, CML simulation, and replay mechanics."""

import pytest

from repro.net import ETHERNET
from repro.trace import (
    CmlSimulator,
    SEGMENT_SPECS,
    TraceOp,
    TraceReplayer,
    WEEK_TRACE_SPECS,
    generate_segment,
    segment_by_name,
    week_trace_by_name,
)
from repro.trace.generate import SegmentSpec
from repro.trace.simulator import savings_curve
from repro.venus import VenusConfig

from tests.conftest import build_testbed, connected


def small_spec(**kwargs):
    defaults = dict(name="tiny", seed=1, duration=600.0,
                    target_references=2_000, oneshot_writes=20,
                    hot_files=2, edit_writes_per_file=4,
                    churn_triples=3, dir_pairs=2, n_source_files=40,
                    pauses_big=4, pauses_med=10)
    defaults.update(kwargs)
    return SegmentSpec(**defaults)


def test_generation_is_deterministic():
    a = generate_segment(small_spec())
    b = generate_segment(small_spec())
    assert a.references == b.references
    assert [(r.time, r.op, r.path, r.size) for r in a.records] \
        == [(r.time, r.op, r.path, r.size) for r in b.records]


def test_different_seeds_differ():
    a = generate_segment(small_spec(seed=1))
    b = generate_segment(small_spec(seed=2))
    assert [(r.op, r.path) for r in a.records] \
        != [(r.op, r.path) for r in b.records]


def test_timestamps_monotone_and_bounded():
    segment = generate_segment(small_spec())
    times = [r.time for r in segment.records]
    assert times == sorted(times)
    assert times[-1] <= segment.duration + 1e-6


def test_reference_count_near_target():
    segment = generate_segment(small_spec())
    assert abs(segment.references - 2_000) < 150


def test_update_classification():
    segment = generate_segment(small_spec())
    updates = [r for r in segment.records if r.is_update]
    assert updates
    assert all(r.op in (TraceOp.WRITE, TraceOp.MKDIR, TraceOp.RMDIR,
                        TraceOp.UNLINK, TraceOp.CREATE, TraceOp.RENAME,
                        TraceOp.SYMLINK, TraceOp.SETATTR)
               for r in updates)


def test_think_time_above_is_monotone_in_threshold():
    segment = generate_segment(small_spec())
    t1 = segment.think_time_above(1.0)
    t10 = segment.think_time_above(10.0)
    assert 0 <= t10 <= t1 <= segment.duration


def test_all_named_presets_generate():
    for name in SEGMENT_SPECS:
        segment = segment_by_name(name)
        assert segment.references > 10_000
    for name in WEEK_TRACE_SPECS:
        trace = week_trace_by_name(name)
        assert trace.updates > 1_000


# ------------------------------------------------------- CML simulator

def test_simulator_infinite_window_never_reintegrates():
    segment = generate_segment(small_spec())
    report = CmlSimulator(aging_window=float("inf")).run(segment)
    assert report.reintegrated_bytes == 0
    assert report.final_cml_bytes == report.appended_bytes \
        - report.optimized_bytes


def test_simulator_zero_window_ships_everything():
    segment = generate_segment(small_spec())
    report = CmlSimulator(aging_window=0.0).run(segment)
    assert report.optimized_bytes == 0
    assert report.final_cml_bytes == 0
    assert report.reintegrated_bytes == report.appended_bytes


def test_savings_monotone_in_window():
    segment = generate_segment(small_spec())
    curve = savings_curve(segment, [0, 30, 120, 600, 10_000])
    values = [curve[w] for w in (0, 30, 120, 600, 10_000)]
    assert values == sorted(values)


def test_optimizations_off_saves_nothing():
    segment = generate_segment(small_spec())
    report = CmlSimulator(aging_window=float("inf"),
                          log_optimizations=False).run(segment)
    assert report.optimized_bytes == 0
    assert report.final_cml_bytes == report.appended_bytes


def test_conservation_of_bytes():
    segment = generate_segment(small_spec())
    for window in (0.0, 60.0, 300.0, float("inf")):
        report = CmlSimulator(aging_window=window).run(segment)
        assert (report.reintegrated_bytes + report.optimized_bytes
                + report.final_cml_bytes) == report.appended_bytes


# ------------------------------------------------------------- replay

def test_replay_executes_full_trace():
    from repro.bench.common import populate_volume, warm_cache
    segment = generate_segment(small_spec())
    config = VenusConfig(force_write_disconnected=True, aging_window=600)
    testbed = build_testbed(venus_config=config, warm=False,
                            tree=segment.tree, mount="/coda/usr/trace")
    warm_cache(testbed.venus, testbed.server, testbed.volume)
    connected(testbed)
    replayer = TraceReplayer(testbed.venus, think_threshold=1.0,
                             warm_seconds=60.0)

    def go():
        report = yield from replayer.run(segment)
        return report

    report = testbed.run(go())
    assert report.operations == segment.references
    assert report.misses == 0
    assert report.errors == 0
    assert report.elapsed > 0
    assert report.total_elapsed >= report.elapsed


def test_think_threshold_shrinks_elapsed():
    from repro.bench.common import populate_volume, warm_cache
    segment = generate_segment(small_spec())
    results = {}
    for lam in (1.0, 10.0):
        config = VenusConfig(force_write_disconnected=True)
        testbed = build_testbed(venus_config=config, warm=False,
                                tree=segment.tree,
                                mount="/coda/usr/trace")
        warm_cache(testbed.venus, testbed.server, testbed.volume)
        connected(testbed)
        replayer = TraceReplayer(testbed.venus, think_threshold=lam,
                                 warm_seconds=0.0)

        def go():
            return (yield from replayer.run(segment))

        results[lam] = testbed.run(go()).elapsed
    assert results[10.0] < results[1.0]
