"""Trace export/import round-trips."""

import io

import pytest

from repro.trace.generate import SegmentSpec, generate_segment
from repro.trace.io import dump_trace, load_trace, read_trace, save_trace
from repro.trace.records import TraceOp, TraceRecord, TraceSegment
from repro.trace.simulator import CmlSimulator


def small_segment():
    spec = SegmentSpec(name="io test", seed=3, duration=300.0,
                       target_references=800, oneshot_writes=10,
                       n_source_files=20, hot_files=2,
                       edit_writes_per_file=3, churn_triples=2,
                       pauses_big=2, pauses_med=4)
    return generate_segment(spec)


def roundtrip(segment):
    buffer = io.StringIO()
    dump_trace(segment, buffer)
    buffer.seek(0)
    return load_trace(buffer)


def test_roundtrip_preserves_everything():
    original = small_segment()
    loaded = roundtrip(original)
    assert loaded.name == original.name
    assert loaded.duration == original.duration
    assert loaded.tree == original.tree
    assert len(loaded.records) == len(original.records)
    for a, b in zip(original.records, loaded.records):
        assert (a.time, a.op, a.path, a.size, a.to_path, a.target,
                a.program) == (b.time, b.op, b.path, b.size, b.to_path,
                               b.target, b.program)


def test_roundtrip_preserves_simulation_results():
    original = small_segment()
    loaded = roundtrip(original)
    a = CmlSimulator(aging_window=120.0).run(original)
    b = CmlSimulator(aging_window=120.0).run(loaded)
    assert (a.appended_bytes, a.optimized_bytes, a.final_cml_bytes) \
        == (b.appended_bytes, b.optimized_bytes, b.final_cml_bytes)


def test_rename_and_symlink_fields_roundtrip():
    segment = TraceSegment(
        name="ops", duration=10.0, tree={"/coda/x/d": ("dir", 0)},
        records=[
            TraceRecord(time=1.0, op=TraceOp.RENAME, path="/coda/x/a",
                        to_path="/coda/x/b", program="mv"),
            TraceRecord(time=2.0, op=TraceOp.SYMLINK, path="/coda/x/l",
                        target="b"),
        ])
    loaded = roundtrip(segment)
    assert loaded.records[0].to_path == "/coda/x/b"
    assert loaded.records[1].target == "b"


def test_spaces_in_paths_survive():
    segment = TraceSegment(
        name="with space", duration=5.0,
        tree={"/coda/x/My Documents": ("dir", 0)},
        records=[TraceRecord(time=0.5, op=TraceOp.STAT,
                             path="/coda/x/My Documents",
                             program="file manager")])
    loaded = roundtrip(segment)
    assert loaded.name == "with space"
    assert "/coda/x/My Documents" in loaded.tree
    assert loaded.records[0].program == "file manager"


def test_file_roundtrip(tmp_path):
    segment = small_segment()
    target = tmp_path / "trace.txt"
    save_trace(segment, str(target))
    loaded = read_trace(str(target))
    assert loaded.references == segment.references


def test_rejects_foreign_files():
    with pytest.raises(ValueError):
        load_trace(io.StringIO("not a trace\n"))
    with pytest.raises(ValueError):
        load_trace(io.StringIO("#repro-trace 1\nX bogus line\n"))
