"""The schedule-divergence detector, probed against the built-in
self-test scenarios (one clean, one with a planted set-iteration)."""

import pytest

from repro.analysis import divergence
from repro.analysis.divergence import (check_determinism,
                                       compare_timelines,
                                       resolve_scenario)

CLEAN = "mod:repro.analysis.selftest:clean_scenario"
DIVERGENT = "mod:repro.analysis.selftest:divergent_scenario"


# ---------------------------------------------------------------------------
# compare_timelines unit behaviour


def test_compare_identical():
    lines = ["a", "b", "c"]
    assert compare_timelines(lines, list(lines)) == (None, [], [])


def test_compare_finds_first_mismatch_with_context():
    lines_a = ["e0", "e1", "e2", "e3", "e4"]
    lines_b = ["e0", "e1", "XX", "e3", "e4"]
    index, ctx_a, ctx_b = compare_timelines(lines_a, lines_b, context=1)
    assert index == 2
    assert ctx_a == ["   [1] e1", ">> [2] e2", "   [3] e3"]
    assert ctx_b == ["   [1] e1", ">> [2] XX", "   [3] e3"]


def test_compare_length_mismatch():
    index, ctx_a, ctx_b = compare_timelines(["a", "b"], ["a"], context=1)
    assert index == 1
    assert ">> [1] b" in ctx_a
    assert ">> [1] <end of timeline>" in ctx_b


# ---------------------------------------------------------------------------
# Scenario resolution


def test_resolve_rejects_malformed_specs():
    for spec in ("bogus", "obs:", "mod:justamodule", "weird:x"):
        with pytest.raises(ValueError):
            resolve_scenario(spec)


def test_resolve_mod_spec_runs_callable():
    scenario = resolve_scenario(CLEAN)
    from repro.obs import Observatory
    observatory = Observatory()
    scenario(observatory)
    assert len(observatory.trace.events) > 0


# ---------------------------------------------------------------------------
# End-to-end subprocess probes (the satellite acceptance tests)


def test_clean_scenario_is_deterministic():
    report = check_determinism(CLEAN)
    assert report.identical
    assert report.events_a == report.events_b > 0
    assert report.first_divergence is None
    assert "byte-identical" in report.format()


def test_planted_set_iteration_is_caught():
    """The deliberately hash-ordered scenario diverges, and the first
    divergent event is located (the whole emission order scrambles, so
    divergence shows up at event 0)."""
    report = check_determinism(DIVERGENT)
    assert not report.identical
    assert report.first_divergence == 0
    assert report.context_a and report.context_b
    text = report.format()
    assert "DIVERGENCE at event 0" in text
    assert "run A context" in text and "run B context" in text


def test_main_exit_codes():
    assert divergence.main(["--scenario", CLEAN]) == 0
    assert divergence.main(["--scenario", DIVERGENT]) == 1
