"""The determinism linter: every rule, suppression path, and the
self-check that the shipped package is lint-clean."""

import json
import textwrap

import pytest

from repro.analysis import lint


def run(source, path="pkg/module.py", **kwargs):
    return lint.lint_source(textwrap.dedent(source), path, **kwargs)


def rules_of(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# DET001: wall clock


@pytest.mark.parametrize("snippet", [
    "import time\nnow = time.time()\n",
    "import time\nnow = time.monotonic()\n",
    "import time\nnow = time.perf_counter()\n",
    "import time as t\nnow = t.time()\n",
    "from time import time\nnow = time()\n",
    "from time import monotonic as mono\nnow = mono()\n",
    "import datetime\nnow = datetime.datetime.now()\n",
    "import datetime\nnow = datetime.datetime.today()\n",
    "from datetime import datetime\nnow = datetime.utcnow()\n",
    "from datetime import date\nnow = date.today()\n",
])
def test_det001_wall_clock_calls(snippet):
    assert "DET001" in rules_of(run(snippet))


def test_det001_ignores_sim_now_and_unrelated_time_methods():
    clean = """
        def tick(sim, obs):
            start = sim.now
            obs.metrics.counter("x").inc()
            return obs.time()
    """
    assert rules_of(run(clean)) == []


# ---------------------------------------------------------------------------
# DET002: unmanaged randomness


@pytest.mark.parametrize("snippet", [
    "import random\nrng = random.Random(0)\n",
    "import random\nrng = random.SystemRandom()\n",
    "from random import Random\nrng = Random(0)\n",
    "import random\nvalue = random.random()\n",
    "import random\nvalue = random.choice([1, 2])\n",
    "import random as rnd\nvalue = rnd.uniform(0, 1)\n",
    "from random import shuffle\nshuffle([1, 2])\n",
])
def test_det002_unmanaged_randomness(snippet):
    assert "DET002" in rules_of(run(snippet))


def test_det002_ignores_stream_draws():
    clean = """
        def jitter(sim):
            rng = sim.rand.stream("faults.jitter")
            return rng.uniform(0.0, 1.0) + rng.random()
    """
    assert rules_of(run(clean)) == []


def test_det002_file_allowlist():
    source = "import random\nrng = random.Random('seed')\n"
    assert "DET002" in rules_of(
        lint.lint_source(source, "/repo/pkg/other.py", root="/repo"))
    assert rules_of(lint.lint_source(
        source, "/repo/sim/rand.py", root="/repo")) == []


# ---------------------------------------------------------------------------
# DET003: hash-ordered iteration feeding the scheduler


def test_det003_set_iteration_scheduling():
    source = """
        def spawn_all(sim, names):
            for name in set(names):
                sim.process(worker(name))
    """
    assert "DET003" in rules_of(run(source))


@pytest.mark.parametrize("iterable", [
    "{1, 2, 3}",
    "frozenset(names)",
    "{n for n in names}",
    "set(names) & active",
    "table.keys()",
    "table.items()",
])
def test_det003_hash_ordered_iterables(iterable):
    source = """
        def spawn_all(sim, names, active, table):
            for item in %s:
                sim.timeout(1.0)
    """ % iterable
    assert "DET003" in rules_of(run(source))


def test_det003_sorted_iteration_is_clean():
    source = """
        def spawn_all(sim, names):
            for name in sorted(set(names)):
                sim.process(worker(name))
    """
    assert rules_of(run(source)) == []


def test_det003_set_iteration_without_scheduling_is_clean():
    source = """
        def total(sizes):
            out = 0
            for size in set(sizes):
                out += size
            return out
    """
    assert rules_of(run(source)) == []


# ---------------------------------------------------------------------------
# DET004: timestamp equality


def test_det004_eq_on_sim_now():
    source = """
        def poll(sim):
            if sim.now == 3.0:
                return True
    """
    assert "DET004" in rules_of(run(source))


def test_det004_ordering_is_clean():
    source = """
        def poll(sim, deadline):
            return sim.now >= deadline
    """
    assert rules_of(run(source)) == []


# ---------------------------------------------------------------------------
# SIM001: event-heap access


@pytest.mark.parametrize("snippet", [
    "import heapq\n",
    "from heapq import heappush\n",
    "def peek(sim):\n    return sim._queue[0]\n",
])
def test_sim001_heap_access(snippet):
    assert "SIM001" in rules_of(run(snippet))


def test_sim001_kernel_is_allowlisted():
    source = "import heapq\n\ndef push(self):\n    return self._queue\n"
    assert rules_of(lint.lint_source(
        source, "/repo/sim/kernel.py", root="/repo")) == []


# ---------------------------------------------------------------------------
# SIM002: object-pool access


@pytest.mark.parametrize("snippet", [
    "def grab(sim):\n    return sim._pool\n",
    "def boot(pool, cb):\n    pool.stub(cb)\n",
    "def poke(pool, cb, exc):\n    pool.kick(cb, exc)\n",
    "def take(pool):\n    return pool.acquire_event()\n",
    "def pin(pool, when, seq):\n    return pool.timeout_at(when, seq)\n",
    "def lane(pool, fn):\n    return pool.delivery_lane(fn)\n",
    "def free(pool, event):\n    pool.recycle(event)\n",
    "def drop(pool, dgram):\n    pool.recycle_datagram(dgram)\n",
])
def test_sim002_pool_access(snippet):
    assert "SIM002" in rules_of(run(snippet))


@pytest.mark.parametrize("path", [
    "/repo/sim/pool.py", "/repo/sim/kernel.py", "/repo/sim/process.py",
    "/repo/sim/resources.py", "/repo/net/link.py", "/repo/net/network.py",
])
def test_sim002_pool_layer_is_allowlisted(path):
    source = ("def send(self, datagram):\n"
              "    pool = self.sim._pool\n"
              "    if pool is not None:\n"
              "        pool.recycle_datagram(datagram)\n")
    assert rules_of(lint.lint_source(source, path, root="/repo")) == []


def test_sim002_safe_wrappers_are_clean():
    source = ("def wait(sim, sock, dgram):\n"
              "    sock.release(dgram)\n"
              "    return sim.sleep(1.0)\n")
    assert rules_of(run(source)) == []


def test_sim002_reasoned_pragma_suppresses():
    source = ("def stats(sim):\n"
              "    # repro: allow[SIM002] read-only stats probe in a test\n"
              "    return sim._pool.stats()\n")
    assert rules_of(run(source)) == []


# ---------------------------------------------------------------------------
# OBS001: closed event taxonomy


def test_obs001_unknown_kind():
    source = """
        def note(obs):
            obs.event("totally_new_kind", node="x")
    """
    findings = run(source)
    assert rules_of(findings) == ["OBS001"]
    assert "totally_new_kind" in findings[0].message


def test_obs001_known_kind_and_conditional_kinds():
    source = """
        def note(obs, up):
            obs.event("cache_miss", node="x")
            obs.event("link_up" if up else "link_down", link="l")
    """
    assert rules_of(run(source)) == []


def test_obs001_nonliteral_kind():
    source = """
        def note(obs, kind):
            obs.event(kind, node="x")
    """
    assert rules_of(run(source)) == ["OBS001"]


def test_obs001_event_factory_is_not_a_trace_event():
    assert rules_of(run("def fresh(sim):\n    return sim.event()\n")) == []


# ---------------------------------------------------------------------------
# Pragmas


def test_pragma_suppresses_on_same_line():
    source = ("import time\n"
              "t = time.time()  # repro: allow[DET001] test fixture\n")
    assert rules_of(run(source)) == []


def test_pragma_on_comment_line_covers_next_code_line():
    source = ("import time\n"
              "# repro: allow[DET001] wall clock needed here because the\n"
              "# explanation spans two comment lines\n"
              "t = time.time()\n")
    assert rules_of(run(source)) == []


def test_pragma_for_other_rule_does_not_suppress():
    source = ("import time\n"
              "t = time.time()  # repro: allow[DET002] wrong rule\n")
    assert "DET001" in rules_of(run(source))


def test_pragma_without_reason_is_prg001():
    source = ("import time\n"
              "t = time.time()  # repro: allow[DET001]\n")
    rules = rules_of(run(source))
    assert "PRG001" in rules
    assert "DET001" in rules      # the reasonless pragma does not apply


def test_pragma_with_unknown_rule_is_prg001():
    source = "x = 1  # repro: allow[NOPE123] whatever\n"
    assert rules_of(run(source)) == ["PRG001"]


def test_syntax_error_is_reported_not_raised():
    findings = run("def broken(:\n")
    assert rules_of(findings) == ["PRG001"]


# ---------------------------------------------------------------------------
# Output formats and the package self-check


def test_json_output_round_trips():
    findings = run("import time\nt = time.time()\n")
    decoded = json.loads(lint.format_json(findings))
    assert decoded[0]["rule"] == "DET001"
    assert decoded[0]["line"] == 2


def test_text_output_mentions_rule_and_location():
    findings = run("import time\nt = time.time()\n", path="x.py")
    text = lint.format_text(findings)
    assert "x.py:2" in text and "DET001" in text
    assert lint.format_text([]) == "determinism lint: clean"


def test_package_is_lint_clean():
    """The acceptance gate: src/repro carries no unexcused finding."""
    findings = lint.lint_package()
    assert findings == [], "\n" + lint.format_text(findings)


def test_seeded_violation_fails_the_package_gate(tmp_path):
    """Planting a wall-clock call in a package-shaped tree is caught."""
    module = tmp_path / "venus" / "daemon.py"
    module.parent.mkdir()
    module.write_text("import time\n\n\ndef tick():\n"
                      "    return time.time()\n")
    findings = lint.lint_paths([str(tmp_path)], root=str(tmp_path))
    assert rules_of(findings) == ["DET001"]


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nr = random.random()\n")
    assert lint.main([str(clean)]) == 0
    assert lint.main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DET002" in out
