"""``repro golden --regen`` must say exactly which pins it moved.

A re-pin is a reviewed event: the regen output names every changed
scenario with its old and new digest (and event counts), plus added
and removed pins, so the fixture diff never has to be read by hand.
"""

import json

from repro.analysis.golden import diff_digests, load_fixture, main


def entry(sha_char, events):
    return {"sha256": sha_char * 64, "events": events}


def test_diff_digests_names_every_kind_of_change():
    old = {"obs:a": entry("1", 10), "obs:b": entry("2", 20),
           "obs:gone": entry("3", 30)}
    new = {"obs:a": entry("1", 10), "obs:b": entry("4", 25),
           "obs:new": entry("5", 5)}
    lines = diff_digests(old, new)
    assert len(lines) == 3
    changed, = [line for line in lines if line.startswith("changed")]
    assert "obs:b" in changed
    assert "2" * 16 in changed and "4" * 16 in changed
    assert "(20 -> 25 events)" in changed
    added, = [line for line in lines if line.startswith("added")]
    assert "obs:new" in added and "5" * 16 in added
    removed, = [line for line in lines if line.startswith("removed")]
    assert "obs:gone" in removed and "3" * 16 in removed


def test_unchanged_tables_diff_to_nothing():
    table = {"obs:a": entry("1", 10)}
    assert diff_digests(table, dict(table)) == []


def test_regen_prints_the_moved_pins(tmp_path, capsys):
    fixture_path = str(tmp_path / "timelines.json")
    # First regen: no previous fixture, every pin is new.
    assert main(["--regen", "--fixture", fixture_path,
                 "--scenario", "obs:trickle"]) == 0
    stdout = capsys.readouterr().out
    assert "pinned obs:trickle" in stdout
    assert "1 pin(s) moved:" in stdout
    assert "added   obs:trickle" in stdout

    # Tamper the stored digest; the next regen reports old -> new.
    fixture = load_fixture(fixture_path)
    stale = "0" * 64
    fixture["digests"]["obs:trickle"]["sha256"] = stale
    with open(fixture_path, "w") as fh:
        json.dump(fixture, fh)
    assert main(["--regen", "--fixture", fixture_path,
                 "--scenario", "obs:trickle"]) == 0
    stdout = capsys.readouterr().out
    assert "changed obs:trickle" in stdout
    assert stale[:16] + "…" in stdout

    # A no-op regen says so.
    assert main(["--regen", "--fixture", fixture_path,
                 "--scenario", "obs:trickle"]) == 0
    assert "no pins moved" in capsys.readouterr().out
