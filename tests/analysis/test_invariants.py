"""Runtime invariant checking: clean on the real scenarios, and every
invariant trips when its violation is planted."""

import pytest

from repro.analysis.invariants import (InvariantChecker,
                                       InvariantViolation)
from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.faults.scenarios import run_fault_scenario
from repro.net import MODEM
from repro.obs import Observatory
from repro.obs.scenarios import run_scenario

MOUNT = "/coda/usr/bob"


def attached_testbed(warm=False):
    """A standard testbed with an observatory and a strict checker."""
    testbed = make_testbed(MODEM, observatory=Observatory())
    checker = InvariantChecker().attach(testbed)
    volume = populate_volume(testbed.server, MOUNT, {
        MOUNT + "/work": ("dir", 0),
        MOUNT + "/work/a.txt": ("file", 1_000),
    })
    if warm:
        warm_cache(testbed.venus, testbed.server, volume)
    return testbed, checker, volume


# ---------------------------------------------------------------------------
# Real scenarios stay clean under a strict checker


@pytest.mark.parametrize("name", ["trickle", "outage"])
def test_obs_scenarios_hold_invariants(name):
    checker = InvariantChecker()
    run_scenario(name, observatory=Observatory(), checker=checker)
    checker.check_all()
    assert checker.violations == []
    assert checker.checks > 0


@pytest.mark.parametrize("name", ["smoke", "client-crash", "server-crash"])
def test_fault_scenarios_hold_invariants(name):
    """Crash/recovery is exactly where these invariants earn their keep:
    seqno continuity and callback volatility across restore."""
    checker = InvariantChecker()
    run_fault_scenario(name, observatory=Observatory(), checker=checker)
    checker.check_all()
    assert checker.violations == []
    assert checker.checks > 0


# ---------------------------------------------------------------------------
# CML seqno invariants (unit level: any iterable of .seqno records)


class Rec:
    def __init__(self, seqno):
        self.seqno = seqno


def test_cml_out_of_order_seqnos_trip():
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="strictly increasing"):
        checker.check_cml("laptop", [Rec(1), Rec(3), Rec(2)])


def test_cml_seqno_reuse_across_restore_trips():
    checker = InvariantChecker()
    checker.check_cml("laptop", [Rec(2), Rec(4)])
    # Re-seeing known seqnos (a restored log) is fine...
    checker.check_cml("laptop", [Rec(2), Rec(4)])
    # ...but a *new* seqno at or under the high-water mark is reuse.
    with pytest.raises(InvariantViolation, match="reuse"):
        checker.check_cml("laptop", [Rec(2), Rec(3)])


def test_cml_seqnos_tracked_per_node():
    checker = InvariantChecker()
    checker.check_cml("laptop", [Rec(5)])
    checker.check_cml("desktop", [Rec(1)])    # independent namespace
    assert checker.violations == []


# ---------------------------------------------------------------------------
# Planted violations against a live testbed


def test_store_version_decrement_trips():
    testbed, checker, volume = attached_testbed()
    checker.check_store_versions()            # record the baseline
    vnode = next(iter(volume.vnodes.values()))
    vnode.version += 3
    checker.check_store_versions()            # forward motion is fine
    vnode.version -= 1
    with pytest.raises(InvariantViolation, match="backwards"):
        checker.check_store_versions()


def test_link_byte_leak_trips():
    testbed, checker, _ = attached_testbed()
    checker.check_link_conservation()
    testbed.link.forward.stats.bytes_sent += 10
    with pytest.raises(InvariantViolation, match="conservation|sent"):
        checker.check_link_conservation()


def test_callback_surviving_client_restart_trips():
    """warm_cache grants callbacks; a freshly-restored client claiming
    them without revalidation violates callback volatility."""
    testbed, checker, _ = attached_testbed(warm=True)
    with pytest.raises(InvariantViolation, match="callback"):
        checker.check_client_callbacks_cleared()


def test_callback_surviving_server_restart_trips():
    testbed, checker, _ = attached_testbed(warm=True)
    with pytest.raises(InvariantViolation, match="volatile"):
        checker.check_server_registry_empty()


def test_clean_testbed_passes_restart_checks():
    testbed, checker, _ = attached_testbed(warm=False)
    checker.check_client_callbacks_cleared()
    checker.check_server_registry_empty()
    assert checker.violations == []


# ---------------------------------------------------------------------------
# Collect mode and wiring


def test_non_strict_mode_collects_instead_of_raising():
    checker = InvariantChecker(strict=False)
    checker.check_cml("laptop", [Rec(2), Rec(1), Rec(1)])
    assert len(checker.violations) >= 2
    assert "violation(s)" in checker.summary()
    assert all(v.format().startswith("[cml_seqno")
               for v in checker.violations)


def test_attach_requires_enabled_observatory():
    testbed = make_testbed(MODEM)             # no observatory installed
    with pytest.raises(ValueError, match="Observatory"):
        InvariantChecker().attach(testbed)


def test_detach_restores_the_event_hook():
    testbed, checker, _ = attached_testbed()
    observatory = testbed.obs
    hooked = observatory.event
    checker.detach()
    assert observatory.event is not hooked
    # Detached: tampering no longer raises through event recording.
    testbed.link.forward.stats.bytes_sent += 10
    observatory.event("cache_miss", node="laptop")
