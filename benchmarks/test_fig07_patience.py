"""Figure 7: patience threshold versus hoard priority."""

from repro.bench import patience as bench


def test_fig07_patience_model(once):
    model, points = once(bench.run_patience_analysis)
    bench.curve_table(model).show()

    KB, MB = bench.KB, bench.MB
    classified = {(p.priority, p.size): p.below for p in points}

    # Calibration check from the paper: "60 seconds at a bandwidth of
    # 64 Kb/s yields a maximum file size of 480KB".
    assert abs(60.0 * 64_000 / 8.0 - 480_000) < 1e-6

    # "At 9.6 Kb/s, only the files at priority 900 and the 1KB file at
    # priority 500 are below tau."
    modem = 9_600.0
    assert classified[(900, 1 * MB)][modem]
    assert classified[(900, 8 * MB)][modem]
    assert classified[(500, 1 * KB)][modem]
    assert not classified[(500, 1 * MB)][modem]
    assert not classified[(100, 1 * MB)][modem]

    # "At 64 Kb/s, the 1MB file at priority 500 is also below tau."
    isdn = 64_000.0
    assert classified[(500, 1 * MB)][isdn]
    assert not classified[(100, 1 * MB)][isdn]

    # "At 2Mb/s, all files except the 4MB and 8MB files at priority
    # 100 are below tau."
    wavelan = 2_000_000.0
    for point in points:
        expected = not (point.priority == 100
                        and point.size in (4 * MB, 8 * MB))
        assert point.below[wavelan] == expected, point

    # Section 4.4's example: a 1 MB miss takes a few seconds at
    # 10 Mb/s but nearly 20 minutes at 9.6 Kb/s.
    times = bench.miss_service_times()
    assert times["10 Mb/s"] < 5.0
    assert 12 * 60 < times["9.6 Kb/s"] < 20 * 60
