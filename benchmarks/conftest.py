"""Shared benchmark configuration.

Each benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the experiments are deterministic simulations;
wall-clock repetition adds nothing) and then prints the reproduced
table next to the paper's values.

``REPRO_FAST=1`` selects the smoke mode: every figure runs at reduced
scale (fewer traces, networks, clients, and cells) with shape-level
assertions instead of the paper's quantitative ones.  It exists so CI
can prove the whole bench pipeline executes end to end in well under a
minute; paper-fidelity claims are only checked by the full run.
``REPRO_FULL=1`` (fig 9) and ``REPRO_QUICK=1`` (fig 12) still select
the larger grids when fast mode is off.
"""

import os

import pytest


@pytest.fixture(scope="session")
def fast():
    """True when ``REPRO_FAST=1`` selects reduced-scale smoke runs."""
    return bool(os.environ.get("REPRO_FAST"))


@pytest.fixture
def once(benchmark):
    """Run ``fn`` once under the benchmark timer; returns its result."""

    def runner(fn):
        box = {}

        def wrapped():
            box["result"] = fn()

        benchmark.pedantic(wrapped, rounds=1, iterations=1)
        return box["result"]

    return runner
