"""Shared benchmark configuration.

Each benchmark runs its experiment exactly once inside
``benchmark.pedantic`` (the experiments are deterministic simulations;
wall-clock repetition adds nothing) and then prints the reproduced
table next to the paper's values.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run ``fn`` once under the benchmark timer; returns its result."""

    def runner(fn):
        box = {}

        def wrapped():
            box["result"] = fn()

        benchmark.pedantic(wrapped, rounds=1, iterations=1)
        return box["result"]

    return runner
