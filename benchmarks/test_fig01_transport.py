"""Figure 1: SFTP vs TCP throughput on Ethernet, WaveLan, and modem."""

from repro.bench import transport


def test_fig01_transport(once, fast):
    if fast:
        rows = once(lambda: transport.run_transport_comparison(trials=1))
        transport.format_table(rows).show()
        # Smoke shape: both protocols on every network moved data.
        assert len(rows) == 6
        for row in rows:
            assert row.send_kbps > 0 and row.receive_kbps > 0
        return
    rows = once(transport.run_transport_comparison)
    transport.format_table(rows).show()
    by = {(r.protocol, r.network): r for r in rows}

    sftp_e = by[("SFTP", "Ethernet")]
    tcp_e = by[("TCP", "Ethernet")]
    sftp_w = by[("SFTP", "WaveLan")]
    tcp_w = by[("TCP", "WaveLan")]
    sftp_m = by[("SFTP", "Modem")]
    tcp_m = by[("TCP", "Modem")]

    # "In almost all cases, SFTP's performance exceeds that of TCP."
    assert sftp_e.send_kbps > tcp_e.send_kbps
    assert sftp_e.receive_kbps > tcp_e.receive_kbps
    assert sftp_w.send_kbps > tcp_w.send_kbps
    assert sftp_w.receive_kbps > tcp_w.receive_kbps

    # The WaveLan gap is dramatic (paper: ~2x receive) — selective
    # retransmission versus TCP's cumulative acks on a lossy link.
    assert sftp_w.receive_kbps > 1.4 * tcp_w.receive_kbps

    # Ethernet runs at megabit rates (host-limited, not wire-limited).
    assert sftp_e.send_kbps > 1_000
    assert tcp_e.send_kbps > 800

    # Modem runs at modem rates: nominal 9.6 Kb/s minus serial framing
    # and header overhead lands near 7 Kb/s for both protocols.
    for row in (sftp_m, tcp_m):
        assert 5.5 < row.send_kbps < 8.5
        assert 5.5 < row.receive_kbps < 8.5

    # Sending beats receiving on the fast networks (the laptop's
    # receive path is its most expensive).
    assert sftp_e.send_kbps > sftp_e.receive_kbps
