"""Figure 9: observed volume validation statistics from a client fleet."""

import os

from repro.bench import fleet


def _config(fast=False):
    # The full four-week, 26-client study takes a few minutes; the
    # default reproduces the same statistics over two weeks.  Set
    # REPRO_FULL=1 for the paper-scale run.
    if fast:
        return fleet.FleetConfig(desktops=4, laptops=2, days=1.0)
    if os.environ.get("REPRO_FULL"):
        return fleet.FleetConfig(days=28.0)
    return fleet.FleetConfig(days=10.0)


def test_fig09_fleet(once, fast):
    desktops, laptops = once(
        lambda: fleet.run_fleet_study(_config(fast=fast)))
    for table in fleet.format_tables(desktops, laptops):
        table.show()
    if fast:
        everyone = desktops + laptops
        assert len(everyone) == 6
        for report in everyone:
            assert report.attempts > 0
            assert 0.0 <= report.success_pct <= 100.0
        return

    everyone = desktops + laptops
    mean = lambda xs: sum(xs) / len(xs)

    # "On average, clients found themselves without a volume stamp
    # only in 3% of the cases."  (We land in the low single digits.)
    assert mean([r.missing_pct for r in everyone]) < 8.0

    # "Most success rates were over 97%".
    assert mean([r.success_pct for r in everyone]) > 94.0
    over_95 = [r for r in everyone if r.success_pct > 95.0]
    assert len(over_95) >= 0.7 * len(everyone)

    # "each successful validation saved roughly 53 individual
    # validations" — tens of objects per success.
    assert 20 < mean([r.objs_per_success for r in everyone]) < 120

    # Clients actually validated volumes at a realistic rate
    # (the paper's per-client mean is ~1310-1400 over four weeks).
    assert mean([r.attempts for r in everyone]) > 100
