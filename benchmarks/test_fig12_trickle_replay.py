"""Figures 12, 13, 14: trickle reintegration under trace replay.

This is the paper's central table: 2 aging windows x 2 think
thresholds x 4 segments x 4 networks.  The full 64-cell grid runs by
default (a few minutes of real time); REPRO_QUICK=1 runs a
representative 16-cell slice.
"""

import os

import pytest

from repro.bench import replay


@pytest.fixture(scope="module")
def grid(fast):
    if fast:
        # One segment, the two extreme networks, one (A, lambda) cell:
        # enough to exercise the whole replay pipeline end to end.
        return replay.run_replay_grid(
            segments=("purcell",),
            networks=(replay.ETHERNET, replay.MODEM),
            aging_windows=(600.0,),
            think_thresholds=(1.0,))
    if os.environ.get("REPRO_QUICK"):
        return replay.run_replay_grid(aging_windows=(600.0,),
                                      think_thresholds=(1.0,))
    return replay.run_replay_grid()


def test_fig12_13_elapsed_insulation(grid, benchmark, fast):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for table in replay.elapsed_tables(grid):
        table.show()
    if fast:
        assert len(grid) == 2
        for cell in grid:
            assert cell.elapsed > 0
        return
    mean_slowdown, worst_slowdown = replay.slowdown_summary(grid)
    print("\nModem vs Ethernet slowdown: mean %.1f%%, worst %.1f%% "
          "(paper: ~2%% mean, 11%% worst)"
          % (mean_slowdown * 100, worst_slowdown * 100))

    # "On average, performance is only about 2% slower at 9.6 Kb/s
    # than at 10 Mb/s."  We insist the mean is below 5%.
    assert -0.05 < mean_slowdown < 0.05

    # "Even the worst case ... is only 11% slower."
    assert worst_slowdown < 0.12

    # Elapsed times are in the paper's regime (roughly 900-2200 s),
    # and lambda = 10 s runs are faster than lambda = 1 s runs for the
    # same cell (less think time preserved).
    for cell in grid:
        assert 700 < cell.elapsed < 2400, cell
    lambdas = sorted({c.think_threshold for c in grid})
    if len(lambdas) == 2:
        lo, hi = lambdas
        for cell in [c for c in grid if c.think_threshold == hi]:
            twins = [c for c in grid
                     if c.think_threshold == lo
                     and c.segment == cell.segment
                     and c.network == cell.network
                     and c.aging_window == cell.aging_window]
            assert twins and cell.elapsed < twins[0].elapsed


def test_fig14_cml_accounting(grid, benchmark, fast):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    think = min(c.think_threshold for c in grid)
    window = max(c.aging_window for c in grid)
    table = replay.cml_data_table(grid, think=think, window=window)
    table.show()

    cells = [c for c in grid
             if c.think_threshold == think and c.aging_window == window]
    by = {(c.segment, c.network): c for c in cells}
    segments = sorted({c.segment for c in cells}) if fast \
        else replay.SEGMENTS
    for segment in segments:
        ethernet = by[(segment, "Ethernet")]
        modem = by[(segment, "Modem")]
        # "As bandwidth decreases, so does the amount of data shipped"
        assert modem.shipped_kb <= ethernet.shipped_kb + 1, segment
        # "...more data remains in the CML at lower bandwidths."
        assert modem.end_cml_kb >= ethernet.end_cml_kb - 1, segment
        # "Since data spends more time in the CML, there is greater
        # opportunity for optimization."
        assert modem.optimized_kb >= ethernet.optimized_kb - 1, segment
