"""Figure 8: cache validation time under ideal conditions."""

from repro.bench import validation


def test_fig08_validation(once, fast):
    if fast:
        results = once(lambda: validation.run_validation_comparison(
            profiles=validation.PROFILES[:1],
            networks=(validation.ETHERNET, validation.MODEM)))
        validation.format_table(results).show()
        assert len(results) == 2
        for row in results:
            assert row.volume_seconds < row.object_seconds, row
        return
    results = once(validation.run_validation_comparison)
    validation.format_table(results).show()

    by = {(r.user, r.network): r for r in results}
    users = sorted({r.user for r in results})

    # "For all users, and at all bandwidths, volume callbacks reduce
    # cache validation time."
    for row in results:
        assert row.volume_seconds < row.object_seconds, row

    for user in users:
        ethernet = by[(user, "Ethernet")]
        modem = by[(user, "Modem")]

        # "The reduction is modest at high bandwidths, but becomes
        # substantial as bandwidth decreases."
        assert modem.speedup > 2.0 * ethernet.speedup

        # "At 9.6 Kb/s ... [volume validation] typically taking only
        # about 25% longer than at 10 Mb/s."  Allow up to 60%.
        assert modem.volume_seconds < 1.6 * ethernet.volume_seconds

        # Without volume callbacks, modem validation is dramatically
        # slower than Ethernet validation.
        assert modem.object_seconds > 2.0 * ethernet.object_seconds
