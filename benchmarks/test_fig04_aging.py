"""Figure 4: effect of the aging window on log optimizations."""

from repro.bench import aging


def test_fig04_aging_curves(once, fast):
    if fast:
        # Two traces, four windows (the reference window must stay so
        # normalized() has its denominator).
        windows = (300, 600, 3600, 14400)
        results = once(lambda: aging.run_aging_analysis(
            windows=windows, traces=["holst", "purcell"]))
        aging.format_table(results, windows=windows).show()
        assert set(results) == {"holst", "purcell"}
        for result in results.values():
            values = [result.savings[w] for w in sorted(result.savings)]
            assert values == sorted(values)
            assert result.reference_bytes > 0
        return
    results = once(aging.run_aging_analysis)
    aging.format_table(results).show()

    norm300 = {name: r.normalized(300) for name, r in results.items()}
    norm600 = {name: r.normalized(600) for name, r in results.items()}
    norm3600 = {name: r.normalized(3600) for name, r in results.items()}

    # "Values of A below 300 seconds barely yield an effectiveness of
    # 30% on some traces, but they yield nearly 80% on others."
    assert min(norm300.values()) < 0.45
    assert max(norm300.values()) > 0.70

    # "600 seconds yields nearly 50% effectiveness on all traces" —
    # the basis for the chosen default A = 600 s.
    assert all(v >= 0.45 for v in norm600.values())

    # "For effectiveness above 80% on all traces, A must be nearly one
    # hour."
    assert all(v >= 0.80 for v in norm3600.values())
    assert any(v < 0.80 for v in norm600.values())

    # Monotonicity: a longer window never hurts optimization.
    for result in results.values():
        values = [result.savings[w] for w in sorted(result.savings)]
        assert values == sorted(values)

    # Absolute savings magnitudes resemble the paper's denominators
    # (84 MB ives, 817 MB concord, 40 MB holst, 152 MB messiaen,
    # 44 MB purcell) within a factor of ~1.5.
    paper_mb = {"ives": 84, "concord": 817, "holst": 40,
                "messiaen": 152, "purcell": 44}
    for name, mb in paper_mb.items():
        measured = results[name].reference_bytes / 1e6
        assert mb / 1.5 < measured < mb * 1.5, (name, measured)
