"""Figure 11: characteristics of the four trace replay segments."""

from repro.bench import segments


def test_fig11_segments(once, fast):
    if fast:
        results = once(lambda: segments.run_segment_characterization(
            names=("purcell",)))
        segments.format_table(results).show()
        (row,) = results
        assert row.references > 0 and row.updates > 0
        assert row.opt_kb <= row.unopt_kb
        assert 0.0 <= row.compressibility <= 1.0
        return
    results = once(segments.run_segment_characterization)
    segments.format_table(results).show()

    by = {r.name: r for r in results}
    for name, (refs, updates, unopt_kb, opt_kb, compr) \
            in segments.PAPER_VALUES.items():
        row = by[name]
        # References and updates within 10% of the published counts.
        assert abs(row.references - refs) / refs < 0.10, name
        assert abs(row.updates - updates) / updates < 0.10, name
        # CML volumes within 20%.
        assert abs(row.unopt_kb - unopt_kb) / unopt_kb < 0.20, name
        assert abs(row.opt_kb - opt_kb) / opt_kb < 0.20, name
        # Compressibility within 8 percentage points.
        assert abs(row.compressibility - compr) < 0.08, name

    # The segments span the four compressibility quartiles in order.
    order = [by[n].compressibility
             for n in ("purcell", "holst", "messiaen", "concord")]
    assert order == sorted(order)
