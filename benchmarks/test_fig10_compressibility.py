"""Figure 10: distribution of trace-segment compressibility."""

from repro.bench import compressibility


def test_fig10_compressibility(once, fast):
    if fast:
        result = once(lambda: compressibility.run_compressibility_study(
            population=18, seed=7))
        compressibility.format_table(result).show()
        assert result.segments_kept >= 5
        assert all(0.0 <= c <= 1.0 for c in result.compressibilities)
        return
    result = once(compressibility.run_compressibility_study)
    compressibility.format_table(result).show()

    # Enough qualifying segments (final CML >= 1 MB) for a histogram.
    assert result.segments_kept >= 25

    # "the compressibilities of roughly a third of the segments are
    # below 20%" — accept a quarter to a half.
    assert 0.2 <= result.fraction_below_20 <= 0.5

    # "...while those of the remaining two-thirds range from 40% to
    # 100%": the upper mode exists and is substantial.
    high = sum(1 for c in result.compressibilities if c >= 0.4)
    assert high >= 0.4 * result.segments_kept

    # The distribution is bimodal-ish: the middle bin (20-40%) is
    # sparser than either side.
    counts = result.histogram()
    assert counts[1] <= counts[0]
    assert counts[1] <= sum(counts[2:])
