"""Ablations of the paper's design choices (beyond its own tables)."""

from repro.bench import ablations


def test_ablation_chunk_budget(once, fast):
    if fast:
        rows = once(lambda: ablations.run_chunk_ablation(
            budgets=(30.0, None), backlog_files=3))
        ablations.chunk_table(rows).show()
        by = {row.chunk_seconds: row for row in rows}
        assert by[30.0].miss_latency < by["whole log"].miss_latency
        return
    rows = once(ablations.run_chunk_ablation)
    ablations.chunk_table(rows).show()
    by = {row.chunk_seconds: row for row in rows}

    # Bigger chunks monopolize the modem longer: foreground miss
    # latency grows with the chunk budget, and whole-log chunks are
    # the worst case the 30-second budget exists to avoid.
    assert by[5.0].miss_latency <= by[300.0].miss_latency
    assert by[30.0].miss_latency < by["whole log"].miss_latency
    # With the default 30 s budget, the miss waits at most roughly one
    # chunk time plus its own transfer (~40 KB at 9.6 Kb/s is ~45 s).
    assert by[30.0].miss_latency < 130.0


def test_ablation_aging_replay(once, fast):
    if fast:
        rows = once(lambda: ablations.run_aging_replay_ablation(
            windows=(0.0, 600.0)))
        ablations.aging_replay_table(rows).show()
        by_window = {row.aging_window: row for row in rows}
        assert by_window[0.0].shipped_kb >= by_window[600.0].shipped_kb
        assert by_window[600.0].optimized_kb >= \
            by_window[0.0].optimized_kb
        return
    rows = once(ablations.run_aging_replay_ablation)
    ablations.aging_replay_table(rows).show()
    by_window = {row.aging_window: row for row in rows}

    # A = 0 ships the most data (no time for optimizations to cancel);
    # large A ships the least but leaves the biggest backlog.
    assert by_window[0.0].shipped_kb > by_window[600.0].shipped_kb
    assert by_window[1800.0].end_cml_kb > by_window[0.0].end_cml_kb
    # Optimization savings grow monotonically with the window.
    savings = [by_window[w].optimized_kb for w in sorted(by_window)]
    assert savings == sorted(savings)


def test_ablation_log_optimizations(once, fast):
    if fast:
        reports = once(lambda: ablations.run_logopt_ablation(
            segment_name="purcell"))
        ablations.logopt_table(reports).show()
        on, off = reports[True], reports[False]
        assert off.optimized_bytes == 0
        assert on.optimized_bytes > 0
        return
    reports = once(ablations.run_logopt_ablation)
    ablations.logopt_table(reports).show()
    on, off = reports[True], reports[False]

    # On the highly-compressible concord segment the optimizer
    # eliminates most of the would-be traffic: without it, far more
    # data is shipped and/or left queued.
    pending_on = on.shipped_bytes + on.end_cml_bytes
    pending_off = off.shipped_bytes + off.end_cml_bytes
    assert pending_off > 3.0 * pending_on
    assert off.optimized_bytes == 0
    assert on.optimized_bytes > 10 * 1024 * 1024


def test_ablation_false_sharing(once, fast):
    if fast:
        rows = once(lambda: ablations.run_false_sharing_ablation(
            volume_counts=(1, 8), total_files=48))
        ablations.false_sharing_table(rows).show()
        assert rows[0].success_fraction <= rows[-1].success_fraction
        return
    rows = once(ablations.run_false_sharing_ablation)
    ablations.false_sharing_table(rows).show()

    # The same update load spread over more volumes invalidates fewer
    # stamps: success rises monotonically (modulo ties) and the single
    # giant volume is clearly the worst.
    fractions = [row.success_fraction for row in rows]
    assert fractions[0] <= fractions[-1]
    assert fractions[-1] - fractions[0] > 0.3
    saved = [row.objects_saved for row in rows]
    assert saved[-1] > saved[0]


def test_ablation_header_compression(once, fast):
    if fast:
        rows = once(lambda: ablations.run_header_compression_ablation(
            transfer_bytes=50_000))
        ablations.compression_table(rows).show()
        plain, compressed = rows[0], rows[1]
        assert plain.goodput_kbps > 0
        assert compressed.goodput_kbps >= plain.goodput_kbps
        return
    rows = once(ablations.run_header_compression_ablation)
    ablations.compression_table(rows).show()
    plain, compressed = rows[0], rows[1]
    # Compression helps a little on a modem — and only a little, which
    # is why the paper "deliberately tried to minimize efforts at the
    # transport level".
    assert compressed.goodput_kbps > plain.goodput_kbps
    assert compressed.goodput_kbps < 1.15 * plain.goodput_kbps


def test_extension_cost_aware_adaptation(once):
    rows = once(ablations.run_cost_ablation)
    ablations.cost_table(rows).show()
    by = {row.tariff: row for row in rows}
    free = by["free"]
    cellular = by["cellular-data"]
    phone = by["long-distance-phone"]
    # Per-MB tariffs ship no more than the free network (stretched
    # aging holds data back for more cancellation).
    assert cellular.shipped_kb <= free.shipped_kb
    # Per-minute tariffs drain promptly (no optimization time at all).
    assert phone.shipped_kb > free.shipped_kb
    assert phone.cml_left_kb == 0
    # And the ledgers reflect the tariffs.
    assert free.money_spent == 0
    assert cellular.money_spent < 1.0
    assert phone.money_spent > 0.5


def test_ablation_shared_keepalives(once, fast):
    if fast:
        rows = once(lambda: ablations.run_keepalive_ablation(
            idle_hours=0.25))
        ablations.keepalive_table(rows).show()
        by = {row.scheme: row for row in rows}
        assert by["shared"].bytes_per_hour < \
            by["duplicated"].bytes_per_hour
        return
    rows = once(ablations.run_keepalive_ablation)
    ablations.keepalive_table(rows).show()
    by = {row.scheme: row for row in rows}
    # Sharing liveness across layers cuts idle traffic by at least half
    # — the duplicated streams each ping on their own schedule.
    assert by["shared"].bytes_per_hour < 0.5 * \
        by["duplicated"].bytes_per_hour
    # And the shared scheme still keeps the connection monitored.
    assert by["shared"].packets_per_hour > 10
