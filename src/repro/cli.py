"""Command-line interface: run any reproduced experiment from a shell.

::

    python -m repro transport            # Figure 1
    python -m repro aging                # Figure 4
    python -m repro patience             # Figure 7
    python -m repro validation           # Figure 8
    python -m repro fleet --days 7       # Figure 9
    python -m repro compressibility      # Figure 10
    python -m repro segments             # Figure 11
    python -m repro replay --segment purcell --aging 600 --think 1
    python -m repro ablations            # the design-choice sweeps
    python -m repro trace-export --segment holst --out holst.trace
    python -m repro obs --scenario trickle --out trickle.jsonl
    python -m repro faults --scenario smoke
    python -m repro lint                 # determinism linter
    python -m repro check-determinism --scenario faults:smoke
    python -m repro perf --scenario fleet-8 --json
    python -m repro perf --scenario fleet-256 --workers 4
    python -m repro fleetd --scenario fleet-64 --workers 4 --verify
    python -m repro golden --check       # golden timeline digests
    python -m repro spec list            # the declarative catalogue
    python -m repro spec run doc-archive --check-invariants
    python -m repro ckpt run --scenario fleet-32 --days 2 --out ck/
    python -m repro ckpt extend --out ck/ --days +1
    python -m repro ckpt verify --out ck/
"""

import argparse
import sys


def _cmd_transport(args):
    from repro.bench import transport
    rows = transport.run_transport_comparison(trials=args.trials)
    transport.format_table(rows).show()


def _cmd_aging(args):
    from repro.bench import aging
    results = aging.run_aging_analysis()
    aging.format_table(results).show()


def _cmd_patience(args):
    from repro.bench import patience
    patience.curve_table().show()
    model, points = patience.run_patience_analysis()
    for point in points:
        below = ", ".join("%gKb/s" % (bw / 1000)
                          for bw, ok in sorted(point.below.items()) if ok)
        print("priority %4d, %8d bytes: transparent at [%s]"
              % (point.priority, point.size, below))


def _cmd_validation(args):
    from repro.bench import validation
    rows = validation.run_validation_comparison()
    validation.format_table(rows).show()


def _cmd_fleet(args):
    from repro.bench import fleet
    config = fleet.FleetConfig(days=args.days,
                               desktops=args.desktops,
                               laptops=args.laptops)
    desktops, laptops = fleet.run_fleet_study(config)
    for table in fleet.format_tables(desktops, laptops):
        table.show()


def _cmd_compressibility(args):
    from repro.bench import compressibility
    result = compressibility.run_compressibility_study(
        population=args.population)
    compressibility.format_table(result).show()


def _cmd_segments(args):
    from repro.bench import segments
    segments.format_table(segments.run_segment_characterization()).show()


def _cmd_replay(args):
    from repro.bench import replay
    from repro.net import profile_by_name
    from repro.trace.segments import SEGMENT_SPECS
    if args.segment not in SEGMENT_SPECS:
        raise SystemExit("unknown segment %r (have %s)"
                         % (args.segment,
                            ", ".join(sorted(SEGMENT_SPECS))))
    if args.network:
        try:
            networks = (profile_by_name(args.network),)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from None
    else:
        networks = replay.NETWORKS
    cells = []
    for network in networks:
        cell = replay.run_replay_cell(args.segment, network,
                                      args.aging, args.think)
        cells.append(cell)
        print("%-9s %-9s elapsed=%7.1fs  beginCML=%5.0fKB "
              "endCML=%5.0fKB shipped=%5.0fKB optimized=%5.0fKB"
              % (cell.segment, cell.network, cell.elapsed,
                 cell.begin_cml_kb, cell.end_cml_kb, cell.shipped_kb,
                 cell.optimized_kb))


def _cmd_ablations(args):
    from repro.bench import ablations
    ablations.chunk_table(ablations.run_chunk_ablation()).show()
    ablations.aging_replay_table(
        ablations.run_aging_replay_ablation()).show()
    ablations.logopt_table(ablations.run_logopt_ablation()).show()
    ablations.false_sharing_table(
        ablations.run_false_sharing_ablation()).show()
    ablations.compression_table(
        ablations.run_header_compression_ablation()).show()
    ablations.cost_table(ablations.run_cost_ablation()).show()


def _cmd_trace_export(args):
    from repro.trace.io import save_trace
    from repro.trace.segments import SEGMENT_SPECS, segment_by_name
    if args.segment not in SEGMENT_SPECS:
        raise SystemExit("unknown segment %r (have %s)"
                         % (args.segment,
                            ", ".join(sorted(SEGMENT_SPECS))))
    segment = segment_by_name(args.segment)
    save_trace(segment, args.out)
    print("wrote %s: %d references, %d updates"
          % (args.out, segment.references, segment.updates))


def _make_checker(args):
    """The optional invariant checker for obs/faults runs."""
    if not getattr(args, "check_invariants", False):
        return None
    from repro.analysis.invariants import InvariantChecker
    return InvariantChecker(strict=False)


def _report_invariants(checker):
    """Print the checker's verdict; exit 1 on violations."""
    if checker is None:
        return
    checker.check_all()
    print(checker.summary())
    if checker.violations:
        for violation in checker.violations:
            print("  " + violation.format())
        raise SystemExit(1)


def _cmd_obs(args):
    from repro.obs import Observatory, report
    from repro.obs.export import (write_events_csv, write_events_jsonl,
                                  write_metrics_csv, write_metrics_jsonl)
    from repro.obs.scenarios import run_scenario

    observatory = Observatory()
    checker = _make_checker(args)
    try:
        run_scenario(args.scenario, observatory=observatory,
                     checker=checker, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.out:
        write_events_jsonl(observatory.trace.events, args.out)
        print("wrote %d events to %s"
              % (len(observatory.trace.events), args.out))
    if args.events_csv:
        write_events_csv(observatory.trace.events, args.events_csv)
        print("wrote %s" % args.events_csv)
    if args.metrics_out:
        write_metrics_jsonl(observatory.metrics, args.metrics_out)
        print("wrote %s" % args.metrics_out)
    if args.metrics_csv:
        write_metrics_csv(observatory.metrics, args.metrics_csv)
        print("wrote %s" % args.metrics_csv)
    print(report.summary(observatory))
    _report_invariants(checker)


def _cmd_faults(args):
    from repro.faults import fault_fingerprint, run_fault_scenario
    from repro.obs import Observatory, report
    from repro.obs.export import write_events_jsonl

    observatory = Observatory()
    checker = _make_checker(args)
    try:
        testbed = run_fault_scenario(args.scenario,
                                     observatory=observatory,
                                     checker=checker, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    injector = testbed.faults
    print("fault scenario %r: %d action(s) injected"
          % (args.scenario, len(injector.log)))
    for when, label in injector.log:
        print("  %10.1f  %s" % (when, label))
    if args.out:
        write_events_jsonl(observatory.trace.events, args.out)
        print("wrote %d events to %s"
              % (len(observatory.trace.events), args.out))
    if args.fingerprint:
        digest = fault_fingerprint(testbed)
        for key in sorted(digest):
            if key in ("server_namespace", "venus_transitions",
                       "fault_log"):
                continue
            print("  %-28s %s" % (key, digest[key]))
    print(report.summary(observatory))
    _report_invariants(checker)


def _cmd_perf(args):
    from repro.perf import format_result, run_perf, write_bench

    results = []
    for name in args.scenario or ["fleet-8"]:
        for queue in args.queue or [None]:
            for pooling in args.pooling or [None]:
                for workers in args.workers or [None]:
                    try:
                        result = run_perf(name, seed=args.seed,
                                          profile=not args.no_profile,
                                          top=args.top, workers=workers,
                                          queue=queue, pooling=pooling)
                    except ValueError as exc:
                        raise SystemExit(str(exc)) from None
                    results.append(result)
                    print(format_result(result))
    if args.json:
        path = write_bench(results, args.out)
        print("wrote %s" % path)


def _cmd_fleetd(args):
    import os

    from repro.fleetd import FLEET_SPECS, format_report, run_sharded, \
        verify_sharded
    from repro.fleetd.merge import write_report

    days = args.days
    if days is None and os.environ.get("REPRO_FAST"):
        # Smoke mode for CI: an eighth of the catalogue duration keeps
        # the 2-worker fleet-32 equivalence check under a minute.
        days = FLEET_SPECS.get(args.scenario,
                               FLEET_SPECS["fleet-8"]).days / 8.0
    try:
        report = run_sharded(args.scenario, workers=args.workers,
                             seed=args.seed, days=days)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(format_report(report))
    if args.json:
        path = write_report(report, args.out)
        print("wrote %s" % path)
    if args.verify:
        verdict = verify_sharded(args.scenario, seed=args.seed,
                                 days=days, report=report)
        print(verdict.format())
        if not verdict.ok:
            raise SystemExit(1)


def _cmd_lint(args):
    from repro.analysis import lint
    argv = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.rules:
        argv.append("--rules")
    raise SystemExit(lint.main(argv))


def _cmd_golden(args):
    from repro.analysis import golden
    argv = ["--fixture", args.fixture]
    if args.regen:
        argv.append("--regen")
    for spec in args.scenario or ():
        argv += ["--scenario", spec]
    raise SystemExit(golden.main(argv))


def _cmd_check_determinism(args):
    from repro.analysis import divergence
    argv = ["--scenario", args.scenario, "--context", str(args.context)]
    if args.json:
        argv.append("--json")
    raise SystemExit(divergence.main(argv))


def _cmd_spec(args):
    from repro.spec import cli as spec_cli
    raise SystemExit(spec_cli.main(args.rest))


def _cmd_ckpt(args):
    from repro.ckpt import cli as ckpt_cli
    raise SystemExit(ckpt_cli.main(args.rest))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting Weak Connectivity for "
                    "Mobile File Access' (SOSP 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("transport", help="Figure 1: SFTP vs TCP")
    p.add_argument("--trials", type=int, default=5)
    p.set_defaults(fn=_cmd_transport)

    sub.add_parser("aging", help="Figure 4: aging window"
                   ).set_defaults(fn=_cmd_aging)
    sub.add_parser("patience", help="Figure 7: patience model"
                   ).set_defaults(fn=_cmd_patience)
    sub.add_parser("validation", help="Figure 8: validation time"
                   ).set_defaults(fn=_cmd_validation)

    p = sub.add_parser("fleet", help="Figure 9: fleet statistics")
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--desktops", type=int, default=8)
    p.add_argument("--laptops", type=int, default=6)
    p.set_defaults(fn=_cmd_fleet)

    p = sub.add_parser("compressibility", help="Figure 10 histogram")
    p.add_argument("--population", type=int, default=40)
    p.set_defaults(fn=_cmd_compressibility)

    sub.add_parser("segments", help="Figure 11: segment table"
                   ).set_defaults(fn=_cmd_segments)

    p = sub.add_parser("replay", help="Figures 12-14: trace replay")
    p.add_argument("--segment", default="purcell")
    p.add_argument("--network", default=None,
                   help="ethernet|wavelan|isdn|modem (default: all)")
    p.add_argument("--aging", type=float, default=600.0)
    p.add_argument("--think", type=float, default=1.0)
    p.set_defaults(fn=_cmd_replay)

    sub.add_parser("ablations", help="design-choice sweeps"
                   ).set_defaults(fn=_cmd_ablations)

    p = sub.add_parser("trace-export", help="export a trace to a file")
    p.add_argument("--segment", default="purcell")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_trace_export)

    p = sub.add_parser(
        "obs", help="run an instrumented scenario; dump timeline + summary")
    p.add_argument("--scenario", default="trickle",
                   help="trickle|outage (default: trickle)")
    p.add_argument("--out", default=None,
                   help="write the event timeline as JSONL")
    p.add_argument("--events-csv", default=None,
                   help="also write the timeline as CSV")
    p.add_argument("--metrics-out", default=None,
                   help="write final metrics as JSONL")
    p.add_argument("--metrics-csv", default=None,
                   help="write final metrics as CSV")
    p.add_argument("--check-invariants", action="store_true",
                   help="run the cross-component invariant checker; "
                        "exit 1 on any violation")
    p.add_argument("--seed", type=int, default=None,
                   help="alternate stream universe, derived via "
                        "derive_rng('obs', scenario, seed); default: "
                        "the canonical golden-pinned streams")
    p.set_defaults(fn=_cmd_obs)

    p = sub.add_parser(
        "faults",
        help="run a scripted fault-injection scenario; show recovery")
    p.add_argument("--scenario", default="smoke",
                   help="smoke|client-crash|server-crash (default: smoke)")
    p.add_argument("--out", default=None,
                   help="write the event timeline as JSONL")
    p.add_argument("--fingerprint", action="store_true",
                   help="print the final-state fingerprint counters")
    p.add_argument("--check-invariants", action="store_true",
                   help="run the cross-component invariant checker; "
                        "exit 1 on any violation")
    p.add_argument("--seed", type=int, default=None,
                   help="alternate stream universe, derived via "
                        "derive_rng('faults', scenario, seed); default: "
                        "the canonical golden-pinned streams")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "perf",
        help="time a canned macro-scenario; report events/sec, "
             "sim-seconds per wall-second, and hot frames")
    p.add_argument("--scenario", action="append", default=None,
                   help="fleet-8|fleet-32|fleet-64|fleet-golden|"
                        "trickle-outage|transport-sweep|fleetd-64|"
                        "fleet-256|fleet-1024|ckpt-fleet-256|"
                        "ckpt-fleet-256-resident; repeatable "
                        "(default: fleet-8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--queue", action="append", default=None,
                   choices=("heap", "calendar"),
                   help="scheduler kind to time (repro.sim.queue); "
                        "repeatable to produce one BENCH row per kind "
                        "(default: the session default kind)")
    p.add_argument("--pooling", action="append", default=None,
                   choices=("on", "off"),
                   help="object-pool mode to time (repro.sim.pool); "
                        "repeatable to produce one BENCH row per mode "
                        "(default: the session default mode)")
    p.add_argument("--workers", action="append", type=int, default=None,
                   help="process-pool size for the sharded scenarios; "
                        "repeatable to time several worker counts")
    p.add_argument("--no-profile", action="store_true",
                   help="skip the profiled rerun (timing only)")
    p.add_argument("--top", type=int, default=12,
                   help="hot frames reported per scenario (default 12)")
    p.add_argument("--json", action="store_true",
                   help="write machine-readable results")
    p.add_argument("--out", default="BENCH_perf.json",
                   help="path for --json output (default BENCH_perf.json)")
    p.set_defaults(fn=_cmd_perf)

    p = sub.add_parser(
        "fleetd",
        help="run a fleet scenario as shared-nothing shards on a "
             "process pool; optionally verify equivalence to the "
             "single-process schedule")
    p.add_argument("--scenario", default="fleet-8",
                   help="fleet-8|fleet-32|fleet-64|fleet-256|fleet-1024 "
                        "(default: fleet-8)")
    p.add_argument("--workers", type=int, default=4,
                   help="process-pool size (0 = run in-process; "
                        "default 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--days", type=float, default=None,
                   help="override simulated days per shard (default: "
                        "the scenario catalogue; REPRO_FAST=1 uses "
                        "an eighth)")
    p.add_argument("--verify", action="store_true",
                   help="re-run every shard in-process and require "
                        "byte-identical timelines; exit 1 otherwise")
    p.add_argument("--json", action="store_true",
                   help="write the merged report as JSON")
    p.add_argument("--out", default="FLEET_report.json",
                   help="path for --json output "
                        "(default FLEET_report.json)")
    p.set_defaults(fn=_cmd_fleetd)

    p = sub.add_parser(
        "lint",
        help="determinism linter over the simulation source "
             "(exit 0 clean, 1 findings)")
    p.add_argument("paths", nargs="*",
                   help="files/directories (default: the repro package)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings")
    p.add_argument("--rules", action="store_true",
                   help="list the rules and exit")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "golden",
        help="check (or --regen) the golden obs-timeline digest "
             "fixtures (exit 0 match, 1 divergence)")
    p.add_argument("--check", action="store_true",
                   help="verify digests against the fixture (default)")
    p.add_argument("--regen", action="store_true",
                   help="rewrite the fixture from the current tree")
    p.add_argument("--fixture", default="tests/golden/timelines.json")
    p.add_argument("--scenario", action="append", default=None,
                   help="limit to specific scenario specs (repeatable)")
    p.set_defaults(fn=_cmd_golden)

    p = sub.add_parser(
        "spec", add_help=False,
        help="inspect, validate, and run declarative scenario specs "
             "(list | show | validate | run)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments for the spec subcommand")
    p.set_defaults(fn=_cmd_spec)

    p = sub.add_parser(
        "ckpt", add_help=False,
        help="resumable fleet simulation: checkpoint, extend, verify "
             "(run | extend | verify | info)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments for the ckpt subcommand")
    p.set_defaults(fn=_cmd_ckpt)

    p = sub.add_parser(
        "check-determinism",
        help="run a scenario under perturbed hash seeds and decoy "
             "streams; exit 1 on timeline divergence")
    p.add_argument("--scenario", default="obs:trickle",
                   help="obs:<name> | faults:<name> | "
                        "mod:<module>:<function> (default: obs:trickle)")
    p.add_argument("--context", type=int, default=3,
                   help="events of context shown around a divergence")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(fn=_cmd_check_determinism)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
