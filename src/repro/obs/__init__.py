"""Simulation-wide observability: metrics, event tracing, exporters.

The paper's argument is carried entirely by measurements; this package
makes the reproduction measurable without editing source.  One
:class:`Observatory` installed on a simulator (``Observatory(sim)``)
observes the whole stack: the kernel counts dispatches, links account
bytes and drops, RPC2 records latencies and retransmits, Venus records
cache hits/misses and CML growth, trickle records chunk outcomes, and
the server records reintegration replay — all stamped with simulation
time, exportable to JSONL/CSV, and summarized by
:func:`~repro.obs.report.summary`.

Observation never perturbs the schedule: the default ``sim.obs`` is
:data:`NULL_OBS` and every instrumentation site is guarded by
``obs.enabled``, so uninstrumented runs execute exactly the pre-
instrumentation event sequence (enforced by the determinism
regression test).
"""

from repro.obs.events import (
    EVENT_KINDS,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.export import (
    read_events_csv,
    read_events_jsonl,
    read_metrics_csv,
    write_events_csv,
    write_events_jsonl,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observatory import NULL_OBS, NullObservatory, Observatory
from repro.obs.report import summary

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NullObservatory",
    "NullRecorder",
    "Observatory",
    "TraceEvent",
    "TraceRecorder",
    "read_events_csv",
    "read_events_jsonl",
    "read_metrics_csv",
    "summary",
    "write_events_csv",
    "write_events_jsonl",
    "write_metrics_csv",
    "write_metrics_jsonl",
]
