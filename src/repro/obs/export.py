"""Exporters: the timeline and the metrics as JSONL and CSV.

JSONL is the fidelity format — one JSON object per line, values
round-trip exactly (:func:`read_events_jsonl` reverses
:func:`write_events_jsonl`).  CSV is the spreadsheet format: events
are flattened onto the union of their field names; metrics serialize
structured parts (labels, histogram buckets) as JSON strings inside
cells.  Non-JSON values (Fids, enums) degrade to ``str``.
"""

import csv
import io
import json

from repro.obs.events import TraceEvent


def _jsonable(value):
    """Fallback serializer for simulation objects (Fid, enums, ...)."""
    return str(value)


def _dumps(obj):
    return json.dumps(obj, default=_jsonable, sort_keys=True)


def _open_for_write(path_or_file):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, "w", encoding="utf-8", newline=""), True


# ----------------------------------------------------------------------
# Events

def write_events_jsonl(events, path_or_file):
    """Write the timeline as JSONL; returns the number of lines."""
    stream, owned = _open_for_write(path_or_file)
    try:
        n = 0
        for event in events:
            stream.write(_dumps(event.to_row()))
            stream.write("\n")
            n += 1
        return n
    finally:
        if owned:
            stream.close()


def read_events_jsonl(path_or_file):
    """Read a JSONL timeline back into :class:`TraceEvent` objects."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
    events = []
    for line in lines:
        if not line.strip():
            continue
        row = json.loads(line)
        time = row.pop("time")
        kind = row.pop("kind")
        events.append(TraceEvent(time=time, kind=kind, fields=row))
    return events


def write_events_csv(events, path_or_file):
    """Write the timeline as CSV over the union of field names."""
    rows = [event.to_row() for event in events]
    field_names = set()
    for row in rows:
        field_names.update(row)
    field_names -= {"time", "kind"}
    header = ["time", "kind"] + sorted(field_names)
    stream, owned = _open_for_write(path_or_file)
    try:
        writer = csv.DictWriter(stream, fieldnames=header, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow({
                key: value if isinstance(value, (int, float, str))
                else str(value)
                for key, value in row.items()})
        return len(rows)
    finally:
        if owned:
            stream.close()


def read_events_csv(path_or_file):
    """Read a CSV timeline; times become floats, fields stay strings."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as stream:
            text = stream.read()
    events = []
    for row in csv.DictReader(io.StringIO(text)):
        time = float(row.pop("time"))
        kind = row.pop("kind")
        fields = {k: v for k, v in row.items() if v != ""}
        events.append(TraceEvent(time=time, kind=kind, fields=fields))
    return events


# ----------------------------------------------------------------------
# Metrics

def write_metrics_jsonl(registry, path_or_file):
    """One JSON object per instrument; returns the number of lines."""
    stream, owned = _open_for_write(path_or_file)
    try:
        rows = registry.rows()
        for row in rows:
            stream.write(_dumps(row))
            stream.write("\n")
        return len(rows)
    finally:
        if owned:
            stream.close()


METRIC_CSV_COLUMNS = ("metric", "type", "labels", "value", "count",
                      "sum", "min", "max", "buckets", "overflow",
                      "last_update")


def write_metrics_csv(registry, path_or_file):
    """Flat metrics CSV; labels and buckets are JSON-encoded cells."""
    stream, owned = _open_for_write(path_or_file)
    try:
        writer = csv.DictWriter(stream, fieldnames=METRIC_CSV_COLUMNS,
                                restval="", extrasaction="ignore")
        writer.writeheader()
        rows = registry.rows()
        for row in rows:
            flat = dict(row)
            flat["labels"] = _dumps(row["labels"])
            if "buckets" in flat:
                flat["buckets"] = _dumps(flat["buckets"])
            writer.writerow(flat)
        return len(rows)
    finally:
        if owned:
            stream.close()


def read_metrics_csv(path_or_file):
    """Read a metrics CSV back into plain dict rows."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as stream:
            text = stream.read()
    rows = []
    for row in csv.DictReader(io.StringIO(text)):
        parsed = {"metric": row["metric"], "type": row["type"],
                  "labels": json.loads(row["labels"])}
        for key in ("value", "count", "sum", "min", "max", "overflow",
                    "last_update"):
            if row.get(key):
                value = float(row[key])
                parsed[key] = int(value) if value.is_integer() else value
        if row.get("buckets"):
            parsed["buckets"] = json.loads(row["buckets"])
        rows.append(parsed)
    return rows
