"""The human-readable summary report.

Renders one observatory's metrics and timeline as the report the
paper's evaluation sections would want on a single screen: per-link
byte/packet accounting, RPC latency histograms and traffic mix,
cache hit/miss counters, the CML length over time, reintegration
chunk outcomes, and validation RPC counts.
"""

import math

from repro.obs.metrics import Counter, Gauge, Histogram

_BAR_WIDTH = 30


def _bar(fraction, width=_BAR_WIDTH):
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return "%d" % int(value)
        return "%.3f" % value
    return str(value)


def _section(title):
    return [title, "-" * len(title)]


def _counter_table(instruments, heading):
    """Lines for a block of counters: ``labels  value``."""
    lines = _section(heading)
    if not instruments:
        lines.append("  (none)")
        return lines
    width = max(len(inst.label_string) or 1 for inst in instruments)
    for inst in instruments:
        label = inst.label_string or "(total)"
        lines.append("  %-*s  %12s  %s"
                     % (width, label, _fmt(inst.value), inst.name))
    return lines


def _histogram_lines(hist):
    lines = ["  %s{%s}" % (hist.name, hist.label_string),
             "    count=%s  mean=%s  min=%s  max=%s  p50<=%s  p95<=%s"
             % (_fmt(hist.count), _fmt(hist.mean), _fmt(hist.min),
                _fmt(hist.max), _fmt(hist.quantile(0.50)),
                _fmt(hist.quantile(0.95)))]
    if hist.count:
        peak = max(hist.counts) or 1
        for bound, count in hist.bucket_rows():
            if not count:
                continue
            label = "+inf" if math.isinf(bound) else "%g" % bound
            lines.append("    <=%8s  %6d  %s"
                         % (label, count, _bar(count / peak)))
    return lines


def _series_lines(points, value_label, max_rows=12):
    """Downsample a ``[(time, value), ...]`` series into table lines."""
    if not points:
        return ["  (no samples)"]
    if len(points) > max_rows:
        stride = (len(points) - 1) / (max_rows - 1)
        picked = [points[round(i * stride)] for i in range(max_rows)]
        # Keep first and last exactly.
        picked[0], picked[-1] = points[0], points[-1]
    else:
        picked = points
    peak = max(value for _t, value in points) or 1
    lines = ["  %10s  %10s" % ("time (s)", value_label)]
    for when, value in picked:
        lines.append("  %10.1f  %10s  %s"
                     % (when, _fmt(value), _bar(value / peak)))
    return lines


def cml_series(observatory, value_field="records"):
    """CML length over time from cml_append/reintegration events."""
    points = []
    for event in observatory.trace.events:
        if event.kind == "cml_append":
            points.append((event.time, event.fields.get(value_field, 0)))
        elif (event.kind == "reintegration_chunk"
              and event.fields.get("status") == "committed"):
            points.append((event.time,
                           event.fields.get("cml_%s" % value_field, 0)))
    return points


def summary(observatory):
    """The full report as one string."""
    metrics = observatory.metrics
    trace = observatory.trace
    lines = _section("Observability summary")
    lines.append("  simulation time: %s s" % _fmt(observatory.time()))
    lines.append("  trace events:    %d recorded (%d dropped)"
                 % (len(trace.events), trace.dropped))
    lines.append("  instruments:     %d" % len(metrics))
    lines.append("")

    # Simulator -------------------------------------------------------
    dispatched = metrics.total("sim.events_dispatched")
    depth = metrics.find("sim.queue_depth")
    if dispatched or depth is not None:
        lines += _section("Simulator")
        lines.append("  events dispatched: %s" % _fmt(dispatched))
        if depth is not None:
            lines.append("  queue depth:       now=%s peak=%s"
                         % (_fmt(depth.value), _fmt(depth.max_value)))
        lines.append("")

    # Links -----------------------------------------------------------
    link_counters = metrics.with_prefix("link.")
    if link_counters:
        lines += _counter_table(link_counters, "Links (per direction)")
        lines.append("")

    # RPC -------------------------------------------------------------
    packet_counters = metrics.with_name("rpc.packets_out")
    byte_counters = metrics.with_name("rpc.bytes_out")
    latency = [inst for inst in metrics.with_name("rpc.latency_seconds")
               if isinstance(inst, Histogram)]
    retrans = metrics.with_prefix("rpc.retransmits") \
        + metrics.with_prefix("sftp.retransmits")
    if packet_counters or latency:
        lines += _section("RPC traffic")
        total_bytes = sum(c.value for c in byte_counters)
        for inst in byte_counters:
            share = inst.value / total_bytes if total_bytes else 0.0
            lines.append("  %-40s %10s B  %5.1f%%"
                         % (inst.label_string, _fmt(inst.value),
                            100.0 * share))
        if packet_counters:
            lines.append("  packets out: %s"
                         % _fmt(sum(c.value for c in packet_counters)))
        if retrans:
            lines.append("  retransmits: %s"
                         % _fmt(sum(c.value for c in retrans)))
        if latency:
            lines.append("  latency histograms:")
            for hist in latency:
                lines += _histogram_lines(hist)
        lines.append("")

    # Cache -----------------------------------------------------------
    hits = metrics.with_name("cache.hits")
    misses = metrics.with_name("cache.misses")
    if hits or misses:
        lines += _counter_table(hits + misses, "Cache references")
        total_hits = sum(c.value for c in hits)
        total_misses = sum(c.value for c in misses)
        total = total_hits + total_misses
        if total:
            lines.append("  hit ratio: %.1f%% (%d/%d)"
                         % (100.0 * total_hits / total, total_hits, total))
        lines.append("")

    # CML -------------------------------------------------------------
    cml_gauges = metrics.with_prefix("cml.")
    series = cml_series(observatory)
    if cml_gauges or series:
        lines += _section("Client modify log")
        for gauge in cml_gauges:
            if isinstance(gauge, Gauge):
                lines.append("  %-12s %-24s now=%s peak=%s"
                             % (gauge.name, gauge.label_string,
                                _fmt(gauge.value), _fmt(gauge.max_value)))
        if series:
            lines.append("  length over time (records):")
            lines += _series_lines(series, "records")
        lines.append("")

    # Reintegration ---------------------------------------------------
    reint = metrics.with_prefix("reintegration.")
    if reint:
        lines += _counter_table(
            [inst for inst in reint if isinstance(inst, Counter)],
            "Trickle reintegration")
        lines.append("")

    # Validation ------------------------------------------------------
    validation = metrics.with_prefix("validation.")
    if validation:
        lines += _counter_table(validation, "Validation RPCs")
        lines.append("")

    # Faults ----------------------------------------------------------
    faults = metrics.with_prefix("faults.")
    if faults:
        lines += _counter_table(faults, "Fault injection")
        lines.append("")

    # Timeline mix ----------------------------------------------------
    counts = trace.counts()
    if counts:
        lines += _section("Event mix")
        width = max(len(kind) for kind in counts)
        for kind in sorted(counts):
            lines.append("  %-*s  %8d" % (width, kind, counts[kind]))
    return "\n".join(lines).rstrip() + "\n"
