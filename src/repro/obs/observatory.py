"""The observatory: one object that watches a whole simulation.

An :class:`Observatory` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.events.TraceRecorder` and installs itself as
``sim.obs``.  Instrumented code throughout the stack reads ``sim.obs``
dynamically and guards every emission with ``obs.enabled``::

    obs = self.sim.obs
    if obs.enabled:
        obs.metrics.counter("link.bytes_sent", link=self.label).inc(n)
        obs.event("link_down", link=self.name)

The default is :data:`NULL_OBS`, whose ``enabled`` is False — the
guard is one attribute load and one branch, nothing is allocated, no
simulation event is scheduled and no randomness is drawn, so a run
with observation off is schedule-identical (and state-identical) to a
run of the pre-instrumentation code.
"""

from repro.obs.events import NullRecorder, TraceRecorder
from repro.obs.metrics import MetricsRegistry


class Observatory:
    """Metrics + tracing for one (or several) simulators."""

    enabled = True

    def __init__(self, sim=None, recorder=None, registry=None):
        self._sim = None
        self.trace = TraceRecorder() if recorder is None else recorder
        self.metrics = (MetricsRegistry(time_fn=self.time)
                        if registry is None else registry)
        if sim is not None:
            self.install(sim)

    def time(self):
        """Current simulation time (0.0 until installed on a sim)."""
        return self._sim.now if self._sim is not None else 0.0

    def install(self, sim):
        """Attach to ``sim`` so instrumented code can see us."""
        self._sim = sim
        sim.obs = self
        return self

    def uninstall(self):
        """Detach, restoring the zero-overhead null observatory."""
        if self._sim is not None:
            self._sim.obs = NULL_OBS
            self._sim = None

    def event(self, kind, /, **fields):
        """Record one trace event stamped with simulation time.

        ``kind`` is positional-only so event fields may themselves be
        named ``kind`` (e.g. validation_rpc's volume|object).
        """
        self.trace.record(kind, self.time(), **fields)

    def summary(self):
        """The human-readable report (see :mod:`repro.obs.report`)."""
        from repro.obs.report import summary
        return summary(self)


class _NullInstrument:
    """Accepts any update and forgets it immediately."""

    value = 0
    count = 0

    def inc(self, amount=1):
        return 0

    def dec(self, amount=1):
        return 0

    def set(self, value):
        return value

    def observe(self, value):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class _NullMetrics:
    """Registry facade handing out the shared null instrument."""

    def counter(self, name, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=None, **labels):
        return _NULL_INSTRUMENT

    def instruments(self):
        return []

    def rows(self):
        return []

    def __len__(self):
        return 0


class NullObservatory:
    """The default ``sim.obs``: everything is a no-op.

    Instrumented call sites check ``enabled`` first, so in practice
    none of these methods run; they exist so that an unguarded call is
    still harmless.
    """

    enabled = False

    def __init__(self):
        self.trace = NullRecorder()
        self.metrics = _NullMetrics()

    def time(self):
        return 0.0

    def event(self, kind, /, **fields):
        """Discard the event."""

    def install(self, sim):
        sim.obs = self
        return self

    def uninstall(self):
        """Nothing to detach."""

    def summary(self):
        return "observability disabled (null observatory)"


#: The shared zero-overhead default attached to every new Simulator.
NULL_OBS = NullObservatory()
