"""Structured event tracing: typed, timestamped records of what happened.

A :class:`TraceRecorder` accumulates :class:`TraceEvent` objects — one
per interesting occurrence anywhere in the stack (an RPC leaving, a
link dropping, a CML append, a reintegration chunk committing).  The
taxonomy is closed: recording an unknown kind raises immediately, so a
typo in an instrumentation site fails a test instead of silently
producing an empty timeline.

The :class:`NullRecorder` is the default wired into every simulator:
``enabled`` is False, ``record`` does nothing, and no state is kept,
so an uninstrumented run is byte-identical to one built before this
package existed.
"""

from dataclasses import dataclass, field

#: The closed event taxonomy.  Kinds and their fields:
#:
#: * ``rpc_send`` / ``rpc_reply`` / ``retransmit`` — client-side RPC
#:   lifecycle (``node``, ``peer``, ``proc``, ``seq``; replies add
#:   ``latency``; retransmits add ``layer`` = rpc2|sftp).
#: * ``link_up`` / ``link_down`` — duplex link state flips (``link``).
#: * ``packet_drop`` — a datagram lost to outage or random loss
#:   (``link``, ``reason`` = down|loss|down_in_flight).
#: * ``cache_hit`` / ``cache_miss`` — Venus object references
#:   (``node``, ``path``; misses add ``reason`` =
#:   fetch|status|disconnected|patience|cost).
#: * ``cml_append`` — a record entered the client modify log
#:   (``node``, ``op``, ``records``, ``bytes`` after the append).
#: * ``reintegration_chunk`` — a trickle chunk concluded (``node``,
#:   ``status`` = committed|conflict|missing_data|aborted,
#:   ``records``, ``bytes``).
#: * ``fragment`` — one fragment of an oversized store shipped
#:   (``node``, ``seqno``, ``index``, ``bytes``).
#: * ``validation_rpc`` — a validation RPC issued (``scope`` =
#:   volume|object, ``objects`` = stamps/objects covered).
#: * ``reintegration_validate`` / ``reintegration_apply`` — the
#:   server-side transactional replay (``records``, ``conflicts`` /
#:   ``volumes``).
#: * ``state_transition`` — Venus moved between Figure 2 states
#:   (``node``, ``frm``, ``to``).
#: * ``fault_injected`` — the fault injector executed one plan action
#:   (``action`` = link_outage|server_crash|..., plus action fields).
#: * ``node_crash`` / ``node_restart`` — a client or server process
#:   died or came back (``node``, ``role`` = client|server; restarts
#:   add recovery detail such as ``cml_records`` replayed).
#: * ``reintegration_duplicate`` — the server skipped re-shipped CML
#:   records it had already applied (``client``, ``seqnos``).
#: * ``checkpoint_write`` / ``checkpoint_restore`` — repro.ckpt froze
#:   or rebuilt state (``scope`` = shard|client; shard-scope events add
#:   ``day`` and client counts, client-scope swap events add ``node``
#:   and the CML length travelling with the snapshot).
EVENT_KINDS = frozenset({
    "rpc_send",
    "rpc_reply",
    "retransmit",
    "link_up",
    "link_down",
    "packet_drop",
    "cache_hit",
    "cache_miss",
    "cml_append",
    "reintegration_chunk",
    "fragment",
    "validation_rpc",
    "reintegration_validate",
    "reintegration_apply",
    "state_transition",
    "fault_injected",
    "node_crash",
    "node_restart",
    "reintegration_duplicate",
    "checkpoint_write",
    "checkpoint_restore",
})


@dataclass
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str
    fields: dict = field(default_factory=dict)

    def to_row(self):
        """Flatten into an export row (time/kind first, then fields).

        A field that would shadow the ``time``/``kind`` columns is
        exported under a ``field_`` prefix so the event identity always
        survives the round trip.
        """
        row = {"time": self.time, "kind": self.kind}
        for key, value in self.fields.items():
            row["field_" + key if key in ("time", "kind") else key] = value
        return row

    def __repr__(self):
        extras = " ".join("%s=%r" % kv for kv in self.fields.items())
        return "<%s @%.3f %s>" % (self.kind, self.time, extras)


class NullRecorder:
    """The do-nothing default: observation off, zero state, zero cost."""

    enabled = False
    events = ()
    dropped = 0

    def record(self, kind, time, /, **fields):
        """Discard the event."""

    def __len__(self):
        return 0

    def counts(self):
        return {}

    def by_kind(self, kind):
        return []


class TraceRecorder:
    """Accumulates typed events in arrival (= simulation) order.

    ``kinds`` restricts recording to a subset of the taxonomy;
    ``limit`` bounds memory on very long runs (overflow is counted in
    ``dropped`` rather than silently ignored).
    """

    enabled = True

    def __init__(self, kinds=None, limit=None):
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - EVENT_KINDS
            if unknown:
                raise ValueError("unknown event kinds: %s"
                                 % ", ".join(sorted(unknown)))
        self.kinds = kinds
        self.limit = limit
        self.events = []
        self.dropped = 0

    def record(self, kind, time, /, **fields):
        if kind not in EVENT_KINDS:
            raise ValueError("unknown event kind %r (taxonomy: %s)"
                             % (kind, ", ".join(sorted(EVENT_KINDS))))
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time=time, kind=kind, fields=fields))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def by_kind(self, kind):
        return [event for event in self.events if event.kind == kind]

    def counts(self):
        """``{kind: occurrences}`` over everything recorded."""
        out = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self):
        self.events = []
        self.dropped = 0
