"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Every instrument is keyed by ``(name, labels)`` — asking the registry
for the same key twice returns the same instrument, so call sites can
simply say ``registry.counter("link.bytes_sent", link=name).inc(n)``
without caching handles.  Updates are stamped with simulation time via
the registry's ``time_fn`` (wired to ``sim.now`` by the observatory),
so exported metrics line up with the event timeline.

Instruments never schedule simulation events and consume no
randomness: observing a run cannot perturb it.
"""

import math

#: Default histogram buckets (upper bounds, seconds) spanning the
#: latencies seen across the paper's four orders of magnitude of
#: bandwidth — sub-RTT on Ethernet to multi-minute modem transfers.
DEFAULT_LATENCY_BUCKETS = (
    0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
    30.0, 60.0, 120.0, 300.0, 600.0,
)


def _label_key(labels):
    return tuple(sorted(labels.items()))


def format_labels(labels):
    """Render a label dict as a stable ``k=v,k=v`` string."""
    return ",".join("%s=%s" % (k, v) for k, v in sorted(labels.items()))


class Instrument:
    """Common base: identity, labels, and update stamping."""

    kind = "instrument"

    def __init__(self, name, labels, time_fn):
        self.name = name
        self.labels = dict(labels)
        self._time_fn = time_fn
        self.last_update = None

    def _stamp(self):
        self.last_update = self._time_fn()

    @property
    def label_string(self):
        return format_labels(self.labels)

    def data(self):
        raise NotImplementedError

    def __repr__(self):
        return "<%s %s{%s}>" % (type(self).__name__, self.name,
                                self.label_string)


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, labels, time_fn):
        super().__init__(name, labels, time_fn)
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % (amount,))
        self.value += amount
        self._stamp()
        return self.value

    def data(self):
        return {"value": self.value, "last_update": self.last_update}


class Gauge(Instrument):
    """A value that goes up and down; tracks its min/max envelope."""

    kind = "gauge"

    def __init__(self, name, labels, time_fn):
        super().__init__(name, labels, time_fn)
        self.value = None
        self.min_value = None
        self.max_value = None

    def set(self, value):
        self.value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        self._stamp()
        return value

    def inc(self, amount=1):
        return self.set((self.value or 0) + amount)

    def dec(self, amount=1):
        return self.set((self.value or 0) - amount)

    def data(self):
        return {"value": self.value, "min": self.min_value,
                "max": self.max_value, "last_update": self.last_update}


class Histogram(Instrument):
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` is a sorted sequence of inclusive upper bounds; an
    implicit +inf bucket catches the overflow.  Percentiles are
    estimated from the cumulative bucket counts (upper-bound biased,
    like Prometheus ``histogram_quantile``).
    """

    kind = "histogram"

    def __init__(self, name, labels, time_fn,
                 buckets=DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, labels, time_fn)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self._stamp()

    @property
    def mean(self):
        return self.sum / self.count if self.count else None

    def quantile(self, q):
        """Estimated q-quantile (0..1) from bucket upper bounds."""
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.counts[index]
            if cumulative >= target:
                return bound
        return self.max if self.max is not None else math.inf

    def bucket_rows(self):
        """``[(upper_bound, count), ...]`` including the +inf bucket."""
        rows = list(zip(self.bounds, self.counts))
        rows.append((math.inf, self.counts[-1]))
        return rows

    def data(self):
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "buckets": [[b, c] for b, c in
                            zip(self.bounds, self.counts)],
                "overflow": self.counts[-1],
                "last_update": self.last_update}


class MetricsRegistry:
    """All instruments of one simulation, keyed by ``(name, labels)``."""

    def __init__(self, time_fn=None):
        self._time_fn = time_fn or (lambda: 0.0)
        self._instruments = {}
        self._kinds = {}            # name -> instrument class
        self._bucket_defaults = {}  # name -> bounds tuple

    def _now(self):
        return self._time_fn()

    def _get(self, cls, name, labels, **extra):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise TypeError(
                    "%r is registered as a %s, not a %s"
                    % (name, instrument.kind, cls.kind))
            return instrument
        known = self._kinds.get(name)
        if known is not None and known is not cls:
            raise TypeError("%r is registered as a %s, not a %s"
                            % (name, known.kind, cls.kind))
        instrument = cls(name, labels, self._now, **extra)
        self._instruments[key] = instrument
        self._kinds[name] = cls
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, buckets=None, **labels):
        if buckets is not None:
            bounds = tuple(sorted(float(b) for b in buckets))
            known = self._bucket_defaults.get(name)
            if known is not None and known != bounds:
                raise ValueError(
                    "histogram %r already uses buckets %r" % (name, known))
            self._bucket_defaults[name] = bounds
        bounds = self._bucket_defaults.get(name, DEFAULT_LATENCY_BUCKETS)
        return self._get(Histogram, name, labels, buckets=bounds)

    # -- querying --------------------------------------------------------

    def __len__(self):
        return len(self._instruments)

    def instruments(self):
        """All instruments, sorted by (name, labels) for stable output."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    def find(self, name, **labels):
        """The instrument at exactly ``(name, labels)``, or None."""
        return self._instruments.get((name, _label_key(labels)))

    def with_name(self, name):
        """All instruments sharing ``name`` (any labels), sorted."""
        return [inst for inst in self.instruments() if inst.name == name]

    def with_prefix(self, prefix):
        """All instruments whose name starts with ``prefix``, sorted."""
        return [inst for inst in self.instruments()
                if inst.name.startswith(prefix)]

    def value(self, name, default=0, **labels):
        """Shortcut: a counter/gauge value, or ``default`` if absent."""
        instrument = self.find(name, **labels)
        if instrument is None:
            return default
        return instrument.value

    def total(self, name):
        """Sum of a counter's value across all label sets."""
        return sum(inst.value for inst in self.with_name(name)
                   if isinstance(inst, Counter))

    def rows(self):
        """Flat export rows, one per instrument (for JSONL/CSV)."""
        out = []
        for inst in self.instruments():
            row = {"metric": inst.name, "type": inst.kind,
                   "labels": dict(inst.labels)}
            row.update(inst.data())
            out.append(row)
        return out


# ---------------------------------------------------------------------------
# Merging registries from independent simulations (repro.fleetd)
#
# Registries from different shards measure different universes whose
# label sets collide (every shard has a ``link=...->server``), so a
# lossless merge works on export rows and disambiguates with an extra
# label rather than summing instruments blindly.  The output order is
# a pure function of the input rows — merged output is byte-identical
# however the sources were produced.


def merge_rows(sources, label="shard"):
    """Merge metric export rows from several independent registries.

    ``sources`` is an iterable of ``(key, rows)`` pairs — e.g.
    ``(shard_index, registry.rows())`` per shard.  Every row gains
    ``label=key`` in its label set, and the result is sorted by
    ``(metric, labels)`` so the merge is deterministic regardless of
    source arrival order.  Rows are copied; the inputs are untouched.
    """
    merged = []
    for key, rows in sources:
        for row in rows:
            row = dict(row)
            labels = dict(row["labels"])
            labels[label] = key
            row["labels"] = labels
            merged.append(row)
    merged.sort(key=lambda row: (row["metric"],
                                 sorted((str(k), str(v))
                                        for k, v in row["labels"].items())))
    return merged


def sum_counters(rows):
    """``{metric: total}`` over counter rows from :func:`merge_rows`.

    Counters are the only instrument whose cross-registry sum is
    meaningful (gauges and histograms would need their envelopes and
    buckets merged with care); this is the aggregate the fleet report
    prints.
    """
    totals = {}
    for row in rows:
        if row.get("type") == "counter":
            totals[row["metric"]] = totals.get(row["metric"], 0) \
                + row["value"]
    return totals
