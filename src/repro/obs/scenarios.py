"""Canned scenarios the ``repro obs`` command can instrument.

Each scenario builds a standard testbed (one client, one server, one
link), runs a deterministic workload exercising the paper's weak-
connectivity machinery, and returns the finished testbed.  Passing an
:class:`~repro.obs.observatory.Observatory` installs it before the
first simulation event, so the timeline covers the whole run; passing
``schedule_log`` records the kernel's ``(time, priority, sequence)``
dispatch order, which the determinism regression test compares between
instrumented and uninstrumented runs.
"""

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.fs.content import SyntheticContent
from repro.net import MODEM, WAVELAN
from repro.sim.rand import derive_rng
from repro.venus import VenusConfig

MOUNT = "/coda/usr/bob"


def scenario_seed(kind, name, seed):
    """Master testbed seed for ``--seed`` runs of a canned scenario.

    ``None`` (no ``--seed`` given) preserves the canonical streams the
    golden fixtures pin; an explicit seed derives a fresh universe via
    :func:`~repro.sim.rand.derive_rng` (seed string
    ``"<kind>::<name>::<seed>"``) so CLI seeds can never collide with
    another subsystem's derivations.
    """
    if seed is None:
        return 0
    return derive_rng(kind, name, seed).getrandbits(63)


def _probe_schedule(sim, schedule_log):
    """Wrap ``sim.step`` to log each dispatch's heap key."""
    original_step = sim.step

    def probed_step():
        # repro: allow[SIM001] read-only peek at the next dispatch key; the
        # determinism regression tests need the raw (time, priority, seq)
        # order and this probe never mutates the heap.
        schedule_log.append(sim._queue[0][:3])
        original_step()

    sim.step = probed_step


def _standard_volume(testbed):
    tree = {
        MOUNT + "/work": ("dir", 0),
        MOUNT + "/work/draft.tex": ("file", 15_000),
        MOUNT + "/work/figure.eps": ("file", 40_000),
        MOUNT + "/work/notes.txt": ("file", 4_000),
    }
    volume = populate_volume(testbed.server, MOUNT, tree)
    warm_cache(testbed.venus, testbed.server, volume)
    return volume


def trickle_scenario(observatory=None, schedule_log=None, checker=None,
                     seed=0):
    """The weak-link trickle workload (examples/weak_link_trickle.py).

    A write-disconnected client over a 9.6 Kb/s modem: an overwrite
    within the aging window (log optimization), a file larger than one
    chunk (fragmented shipping), and a foreground miss racing the
    background reintegration.
    """
    config = VenusConfig(aging_window=300.0, chunk_seconds=30.0,
                         daemon_period=5.0)
    testbed = make_testbed(MODEM, venus_config=config, seed=seed,
                           observatory=observatory)
    if schedule_log is not None:
        _probe_schedule(testbed.sim, schedule_log)
    if checker is not None:
        checker.attach(testbed)
    _standard_volume(testbed)
    venus = testbed.venus
    sim = testbed.sim

    def session():
        yield from venus.connect()
        yield from venus.write_file(MOUNT + "/work/draft.tex",
                                    SyntheticContent(16_000))
        yield sim.timeout(120.0)
        yield from venus.write_file(MOUNT + "/work/draft.tex",
                                    SyntheticContent(17_000))
        yield from venus.write_file(MOUNT + "/work/results.dat",
                                    SyntheticContent(120_000))
        yield sim.timeout(600.0)
        entry = yield from venus.stat(MOUNT + "/work/figure.eps")
        venus.cache.remove(entry.fid)
        venus.hoard(MOUNT + "/work/figure.eps", 900)
        yield from venus.read_file(MOUNT + "/work/figure.eps")
        yield sim.timeout(900.0)

    sim.run(sim.process(session()))
    return testbed


def outage_scenario(observatory=None, schedule_log=None, checker=None,
                    seed=0):
    """Intermittence over WaveLAN: outages, reconnection, validation.

    Exercises link_up/link_down events, disconnected operation, the
    reconnection validation path, and the CML drain on reconnection.
    """
    config = VenusConfig(aging_window=60.0, daemon_period=5.0,
                         probe_interval=30.0)
    testbed = make_testbed(WAVELAN, venus_config=config, seed=seed,
                           observatory=observatory)
    if schedule_log is not None:
        _probe_schedule(testbed.sim, schedule_log)
    if checker is not None:
        checker.attach(testbed)
    _standard_volume(testbed)
    venus = testbed.venus
    sim = testbed.sim
    testbed.link.outage(after=60.0, duration=120.0)

    def session():
        yield from venus.connect()
        yield from venus.write_file(MOUNT + "/work/notes.txt",
                                    SyntheticContent(6_000))
        yield sim.timeout(90.0)     # now inside the outage
        try:
            yield from venus.write_file(MOUNT + "/work/draft.tex",
                                        SyntheticContent(18_000))
        except OSError:
            pass
        yield sim.timeout(300.0)    # reconnect probes fire, CML drains
        yield from venus.read_file(MOUNT + "/work/figure.eps")
        yield sim.timeout(120.0)

    sim.run(sim.process(session()))
    return testbed


SCENARIOS = {
    "trickle": trickle_scenario,
    "outage": outage_scenario,
}


def run_scenario(name, observatory=None, schedule_log=None, checker=None,
                 seed=None):
    """Run scenario ``name``; returns the finished testbed.

    ``checker`` optionally attaches an
    :class:`~repro.analysis.invariants.InvariantChecker` to the testbed
    before the workload runs (requires ``observatory``).  ``seed``
    selects an alternate stream universe via :func:`scenario_seed`;
    the default None keeps the canonical (golden-pinned) streams.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError("unknown scenario %r (have %s)"
                         % (name, ", ".join(sorted(SCENARIOS)))) from None
    return scenario(observatory=observatory, schedule_log=schedule_log,
                    checker=checker, seed=scenario_seed("obs", name, seed))


def fingerprint(testbed):
    """Deterministic digest of a finished run's externally visible state.

    Everything here is downstream of the full event schedule — packet
    counts, bytes, CPU-paced sends, CML accounting — so two runs with
    equal fingerprints executed the same simulation.
    """
    venus = testbed.venus
    link = testbed.link.stats()
    cml = venus.cml.stats
    trickle = venus.trickle.stats
    validation = venus.validator.stats
    return {
        "end_time": testbed.sim.now,
        "link_packets_sent": link.packets_sent,
        "link_packets_delivered": link.packets_delivered,
        "link_packets_lost": link.packets_lost,
        "link_bytes_sent": link.bytes_sent,
        "link_bytes_delivered": link.bytes_delivered,
        "client_packets_out": venus.endpoint.packets_out,
        "client_bytes_out": venus.endpoint.bytes_out,
        "server_packets_out": testbed.server.endpoint.packets_out,
        "server_bytes_out": testbed.server.endpoint.bytes_out,
        "venus_state": venus.state.state.value,
        "venus_transitions": [(t, a.value, b.value)
                              for t, a, b in venus.state.transitions],
        "cml_len": len(venus.cml),
        "cml_appended": cml.appended_records,
        "cml_optimized": cml.optimized_records,
        "cml_reintegrated": cml.reintegrated_records,
        "chunks_committed": trickle.chunks_committed,
        "bytes_shipped": trickle.bytes_shipped,
        "fragments_shipped": trickle.fragments_shipped,
        "validation_attempts": validation.attempts,
        "validation_objects": validation.objects_validated,
        "fetches": venus.stats.fetches,
        "fetch_bytes": venus.stats.fetch_bytes,
        "operations": venus.stats.operations,
    }
