"""Canned scenarios the ``repro obs`` command can instrument.

The scenarios themselves are declarative specs in the shipped
catalogue (:mod:`repro.spec.catalog`); this module keeps the obs
subsystem's historical API — ``SCENARIOS``, :func:`run_scenario`,
:func:`fingerprint` — as thin wrappers over the spec compiler.  The
golden timeline digests pin the compiled runs byte-identical to the
original hand-written scenario functions.

Each scenario builds a standard testbed (one client, one server, one
link), runs a deterministic workload exercising the paper's weak-
connectivity machinery, and returns the finished testbed.  Passing an
:class:`~repro.obs.observatory.Observatory` installs it before the
first simulation event, so the timeline covers the whole run; passing
``schedule_log`` records the kernel's ``(time, priority, sequence)``
dispatch order, which the determinism regression test compares between
instrumented and uninstrumented runs.
"""

from repro.spec.catalog import MOUNT, get
from repro.spec.compile import probe_schedule as _probe_schedule
from repro.spec.compile import run_script_spec
from repro.spec.seeds import scenario_seed

__all__ = ["MOUNT", "SCENARIOS", "fingerprint", "run_scenario",
           "scenario_seed", "trickle_scenario", "outage_scenario"]


def trickle_scenario(observatory=None, schedule_log=None, checker=None,
                     seed=0):
    """The weak-link trickle workload (examples/weak_link_trickle.py).

    A write-disconnected client over a 9.6 Kb/s modem: an overwrite
    within the aging window (log optimization), a file larger than one
    chunk (fragmented shipping), and a foreground miss racing the
    background reintegration.
    """
    return run_script_spec(get("trickle"), observatory=observatory,
                           schedule_log=schedule_log, checker=checker,
                           seed=seed)


def outage_scenario(observatory=None, schedule_log=None, checker=None,
                    seed=0):
    """Intermittence over WaveLAN: outages, reconnection, validation.

    Exercises link_up/link_down events, disconnected operation, the
    reconnection validation path, and the CML drain on reconnection.
    """
    return run_script_spec(get("outage"), observatory=observatory,
                           schedule_log=schedule_log, checker=checker,
                           seed=seed)


SCENARIOS = {
    "trickle": trickle_scenario,
    "outage": outage_scenario,
}


def run_scenario(name, observatory=None, schedule_log=None, checker=None,
                 seed=None):
    """Run scenario ``name``; returns the finished testbed.

    ``checker`` optionally attaches an
    :class:`~repro.analysis.invariants.InvariantChecker` to the testbed
    before the workload runs (requires ``observatory``).  ``seed``
    selects an alternate stream universe via
    :func:`~repro.spec.seeds.scenario_seed`; the default None keeps
    the canonical (golden-pinned) streams.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError("unknown scenario %r (have %s)"
                         % (name, ", ".join(sorted(SCENARIOS)))) from None
    return scenario(observatory=observatory, schedule_log=schedule_log,
                    checker=checker, seed=scenario_seed("obs", name, seed))


def fingerprint(testbed):
    """Deterministic digest of a finished run's externally visible state.

    Everything here is downstream of the full event schedule — packet
    counts, bytes, CPU-paced sends, CML accounting — so two runs with
    equal fingerprints executed the same simulation.
    """
    venus = testbed.venus
    link = testbed.link.stats()
    cml = venus.cml.stats
    trickle = venus.trickle.stats
    validation = venus.validator.stats
    return {
        "end_time": testbed.sim.now,
        "link_packets_sent": link.packets_sent,
        "link_packets_delivered": link.packets_delivered,
        "link_packets_lost": link.packets_lost,
        "link_bytes_sent": link.bytes_sent,
        "link_bytes_delivered": link.bytes_delivered,
        "client_packets_out": venus.endpoint.packets_out,
        "client_bytes_out": venus.endpoint.bytes_out,
        "server_packets_out": testbed.server.endpoint.packets_out,
        "server_bytes_out": testbed.server.endpoint.bytes_out,
        "venus_state": venus.state.state.value,
        "venus_transitions": [(t, a.value, b.value)
                              for t, a, b in venus.state.transitions],
        "cml_len": len(venus.cml),
        "cml_appended": cml.appended_records,
        "cml_optimized": cml.optimized_records,
        "cml_reintegrated": cml.reintegrated_records,
        "chunks_committed": trickle.chunks_committed,
        "bytes_shipped": trickle.bytes_shipped,
        "fragments_shipped": trickle.fragments_shipped,
        "validation_attempts": validation.attempts,
        "validation_objects": validation.objects_validated,
        "fetches": venus.stats.fetches,
        "fetch_bytes": venus.stats.fetch_bytes,
        "operations": venus.stats.operations,
    }
