"""Shared experiment scaffolding: testbeds, population, cache warming.

The standard testbed mirrors the paper's: a DECpc 425SL laptop client
and a DECstation 5000/200 server "isolated on a separate network",
joined by one link of the profile under test.
"""

from dataclasses import dataclass

from repro.fs.content import SyntheticContent
from repro.fs.namespace import split_path
from repro.fs.objects import ObjectType, Vnode
from repro.net import Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.sim import RandomStreams, Simulator
from repro.venus import Venus
from repro.venus.cache import CacheEntry

CLIENT = "laptop"
SERVER = "server"


@dataclass
class Testbed:
    sim: object
    net: object
    link: object
    server: object
    venus: object
    obs: object = None
    streams: object = None

    def run(self, generator):
        """Run a generator as a process to completion; returns its value."""
        return self.sim.run(self.sim.process(generator))


def make_testbed(profile, venus_config=None, user=None, seed=0,
                 loss_rate=None, client_host=LAPTOP_1995,
                 server_host=SERVER_1995, observatory=None):
    """One client, one server, one link of the given profile.

    ``observatory`` optionally attaches a :class:`repro.obs.Observatory`
    to the simulator before any component is built, so every
    instrumentation site sees it.  Left as None, the simulator keeps its
    no-op observer and runs are byte-identical to uninstrumented ones.
    """
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    streams = RandomStreams(seed)
    sim.rand = streams
    # No network-level rng: links derive per-direction loss streams
    # ("link.loss::<src>-><dst>") from sim.rand, so the directions of a
    # link — and distinct links — draw independently.
    net = Network(sim)
    overrides = {}
    if loss_rate is not None:
        overrides["loss_rate"] = loss_rate
    link = net.add_link(CLIENT, SERVER, profile=profile, **overrides)
    server = CodaServer(sim, net, SERVER, server_host)
    venus = Venus(sim, net, CLIENT, SERVER, client_host,
                  config=venus_config, user=user)
    return Testbed(sim=sim, net=net, link=link, server=server, venus=venus,
                   obs=observatory, streams=streams)


def populate_volume(server, mount_prefix, tree, volume_name=None):
    """Create a volume and fill it with ``tree`` server-side.

    ``tree`` maps absolute paths (under ``mount_prefix``) to
    ``("dir", 0)`` or ``("file", size)``.  Intermediate directories are
    created as needed.  Returns the volume.
    """
    volume = server.create_volume(volume_name or mount_prefix.strip("/"),
                                  mount_prefix)
    prefix_parts = split_path(mount_prefix)

    def ensure(parts, kind, size):
        node = volume.root
        for depth, name in enumerate(parts):
            child_fid = node.children.get(name)
            last = depth == len(parts) - 1
            if child_fid is None:
                otype = (ObjectType.FILE if last and kind == "file"
                         else ObjectType.DIRECTORY)
                child = Vnode(volume.alloc_fid(), otype)
                if otype is ObjectType.FILE:
                    child.content = SyntheticContent(
                        size, tag=("init", "/".join(parts)))
                volume.add(child)
                node.children[name] = child.fid
                node = child
            else:
                node = volume.require(child_fid)
        return node

    for path in sorted(tree):
        kind, size = tree[path]
        parts = split_path(path)
        if parts[:len(prefix_parts)] == prefix_parts:
            parts = parts[len(prefix_parts):]
        if not parts:
            continue
        ensure(parts, kind, size)
    return volume


def warm_cache(venus, server, volume, with_stamps=True):
    """Install the volume's contents in the client cache.

    Models a hoard walk completed while strongly connected before the
    experiment begins (the paper warms state before measuring): every
    object is cached with data and a callback, and — when
    ``with_stamps`` — the volume version stamp is cached with a volume
    callback, as at the end of a real walk.
    """
    now = venus.sim.now
    # Recover each object's path for display/hoard logic.
    prefix = "/" + "/".join(server.registry.mount_of(volume))
    paths = {volume.root_fid: prefix}
    pending = [volume.root]
    while pending:
        node = pending.pop()
        if node.children:
            for name, child_fid in node.children.items():
                paths[child_fid] = paths[node.fid] + "/" + name
                child = volume.get(child_fid)
                if child is not None and child.is_dir():
                    pending.append(child)
    for fid, vnode in volume.vnodes.items():
        entry = CacheEntry(fid, vnode.otype, path=paths.get(fid))
        entry.version = vnode.version
        entry.length = vnode.length
        entry.mtime = vnode.mtime
        if vnode.otype is ObjectType.DIRECTORY:
            entry.children = dict(vnode.children)
        elif vnode.otype is ObjectType.SYMLINK:
            entry.target = vnode.target
        else:
            entry.content = vnode.content
        entry.callback = True
        venus.cache.add(entry, now)
        server.callbacks.add_object(venus.node, fid)
    venus.learn_mounts(server.registry)
    info = venus.cache.volume_info(volume.volid)
    if with_stamps:
        info.stamp = volume.stamp
        info.callback = True
        server.callbacks.add_volume(venus.node, volume.volid)
