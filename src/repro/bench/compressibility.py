"""Figure 10: the distribution of trace-segment compressibility.

The paper divided its week-long traces into 45-minute segments,
selected those whose final (unoptimized) CML was at least 1 MB, and
histogrammed their compressibility — the fraction of CML data that log
optimizations eliminate.  The published shape: "the compressibilities
of roughly a third of the segments are below 20%, while those of the
remaining two-thirds range from 40% to 100%."

Here a population of segments is drawn from randomized generator specs
spanning the same workload mixes (one-shot-heavy mail sessions to
compile-loop marathons) and pushed through the CML simulator.
"""

from dataclasses import dataclass

from repro.bench.results import Table
from repro.sim.rand import derive_rng
from repro.trace.generate import SegmentSpec, generate_segment
from repro.trace.simulator import CmlSimulator

MIN_CML_BYTES = 1 << 20     # segments with >= 1 MB unoptimized CML

BINS = ((0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.01))


def _random_spec(index, rng):
    """One random segment spec drawn from a realistic workload mix."""
    style = rng.random()
    if style < 0.35:
        # One-shot heavy: mail folders, data collection — incompressible.
        spec = SegmentSpec(
            name="seg%03d" % index, seed=1000 + index,
            target_references=rng.randrange(20_000, 80_000),
            oneshot_writes=rng.randrange(150, 400),
            oneshot_size=rng.randrange(4_000, 14_000),
            hot_files=rng.randrange(0, 4),
            edit_writes_per_file=rng.randrange(2, 6),
            churn_triples=rng.randrange(0, 10))
    elif style < 0.65:
        # Edit sessions: moderate overwrite activity.
        spec = SegmentSpec(
            name="seg%03d" % index, seed=1000 + index,
            target_references=rng.randrange(20_000, 80_000),
            oneshot_writes=rng.randrange(40, 160),
            oneshot_size=rng.randrange(4_000, 12_000),
            hot_files=rng.randrange(6, 16),
            edit_writes_per_file=rng.randrange(8, 20),
            edit_size=rng.randrange(8_000, 40_000),
            churn_triples=rng.randrange(5, 40),
            churn_size=rng.randrange(4_000, 20_000))
    else:
        # Compile loops and scratch churn: highly compressible.
        spec = SegmentSpec(
            name="seg%03d" % index, seed=1000 + index,
            target_references=rng.randrange(40_000, 160_000),
            oneshot_writes=rng.randrange(10, 80),
            oneshot_size=rng.randrange(4_000, 12_000),
            hot_files=rng.randrange(1, 6),
            edit_writes_per_file=rng.randrange(6, 14),
            compile_runs=rng.randrange(8, 50),
            compile_objs=rng.randrange(8, 30),
            obj_size=rng.randrange(8_000, 40_000),
            churn_triples=rng.randrange(10, 60),
            churn_size=rng.randrange(8_000, 40_000))
    return spec


@dataclass
class CompressibilityResult:
    segments_examined: int
    segments_kept: int          # final CML >= 1 MB
    compressibilities: list

    def histogram(self, bins=BINS):
        counts = []
        for low, high in bins:
            counts.append(sum(1 for c in self.compressibilities
                              if low <= c < high))
        return counts

    @property
    def fraction_below_20(self):
        if not self.compressibilities:
            return 0.0
        return (sum(1 for c in self.compressibilities if c < 0.2)
                / len(self.compressibilities))


def run_compressibility_study(population=60, seed=7):
    """Generate the segment population; returns CompressibilityResult."""
    rng = derive_rng("compressibility", seed)
    kept = []
    examined = 0
    index = 0
    while examined < population:
        index += 1
        spec = _random_spec(index, rng)
        segment = generate_segment(spec)
        examined += 1
        report = CmlSimulator(aging_window=float("inf")).run(segment)
        if report.appended_bytes >= MIN_CML_BYTES:
            kept.append(report.compressibility)
    return CompressibilityResult(
        segments_examined=examined, segments_kept=len(kept),
        compressibilities=kept)


def format_table(result):
    table = Table(
        "Figure 10: Compressibility of Trace Segments "
        "(%d segments with unoptimized CML >= 1 MB)" % result.segments_kept,
        ["Compressibility", "Segments", "Share"])
    counts = result.histogram()
    for (low, high), count in zip(BINS, counts):
        share = count / max(1, result.segments_kept)
        table.add("%2.0f%% - %3.0f%%" % (low * 100, min(high, 1.0) * 100),
                  count, "%.0f%%" % (share * 100))
    return table
