"""Figure 9: observed volume validation statistics from a client fleet.

The paper instrumented 16 desktops and 10 laptops for about four weeks
of real use and reported, per client: how often a volume validation
could not even be attempted (no cached stamp), how many were
attempted, what fraction succeeded, and how many per-object
validations each success saved.  Headline numbers: stamps missing only
~3-4% of the time, ~97-98% of attempts successful, ~50 objects saved
per success.

Here the fleet is simulated: every client is a full Venus instance on
its own link to a shared server.  Clients work on a private volume,
read and occasionally write shared project volumes, and read system
volumes that an administrator updates now and then.  Desktops suffer
occasional disconnections (server reboots, network maintenance);
laptops also commute twice a day.  All three Figure 9 phenomena emerge
rather than being injected:

* *missing stamps* — a volume callback break (someone updated a shared
  volume) drops the stamp; if the client disconnects before its next
  hoard walk re-acquires it, the reconnection validation has nothing
  to present;
* *failed validations* — a volume updated while the client was away;
* *objects saved* — everything else.
"""

from dataclasses import dataclass

from repro.bench.common import populate_volume, warm_cache
from repro.bench.results import Table
from repro.net import ETHERNET, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.sim import RandomStreams, Simulator
from repro.venus import Venus, VenusConfig

DAY = 86_400.0


@dataclass
class FleetConfig:
    desktops: int = 16
    laptops: int = 10
    days: float = 14.0
    shared_volumes: int = 6
    system_volumes: int = 8
    extra_volumes: int = 12            # roamed into on demand
    files_per_volume: int = 55
    file_size: int = 8_000
    # activity rates (per client)
    private_writes_per_day: float = 30.0
    shared_writes_per_day: float = 3.5
    reads_per_day: float = 60.0
    system_updates_per_day: float = 0.6     # by the administrator
    roams_per_day: float = 8.0         # reads into uncached volumes
    evictions_per_day: float = 6.0     # cache pressure drops a volume
    desktop_outages_per_day: float = 2.0
    laptop_commutes_per_day: float = 3.0
    outage_minutes: float = 18.0
    flaky_reconnect_prob: float = 0.5  # outages come in bursts
    seed: int = 0
    # Prepended to every client name (and therefore to the private
    # volume paths and stream names derived from them).  A sharded
    # fleet (repro.fleetd) gives each shard its own prefix so client
    # identities — and the volumes they own — never collide across
    # shards; the empty default keeps the classic fleet byte-identical.
    name_prefix: str = ""


@dataclass
class ClientReport:
    name: str
    kind: str
    missing_pct: float
    attempts: int
    success_pct: float
    objs_per_success: float


def run_fleet_study(config=None, observatory=None):
    """Simulate the fleet; returns (desktop_reports, laptop_reports).

    ``observatory`` optionally attaches a :class:`repro.obs.Observatory`
    before the first component is built, so the whole fleet run is
    traced.  Observation never schedules events, so an instrumented
    fleet is schedule-identical to a bare one.
    """
    config = config or FleetConfig()
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    streams = RandomStreams(config.seed)
    net = Network(sim, rng=streams.stream("net"))
    server = CodaServer(sim, net, "server", SERVER_1995)

    shared = [populate_volume(server, "/coda/project/p%02d" % i,
                              _volume_tree("/coda/project/p%02d" % i,
                                           config, streams))
              for i in range(config.shared_volumes)]
    system = [populate_volume(server, "/coda/misc/s%02d" % i,
                              _volume_tree("/coda/misc/s%02d" % i,
                                           config, streams))
              for i in range(config.system_volumes)]
    extras = [populate_volume(server, "/coda/extra/e%02d" % i,
                              _volume_tree("/coda/extra/e%02d" % i,
                                           config, streams))
              for i in range(config.extra_volumes)]

    clients = []
    names_desktop = ["bach", "berlioz", "brahms", "chopin", "copland",
                     "dvorak", "gershwin", "gs125", "holst", "ives",
                     "mahler", "messiaen", "mozart", "varicose", "verdi",
                     "vivaldi"]
    names_laptop = ["caractacus", "deidamia", "finlandia", "gloriana",
                    "guntram", "nabucco", "prometheus", "serse", "tosca",
                    "valkyrie"]
    specs = ([(config.name_prefix + names_desktop[i % 16]
               + ("" if i < 16 else str(i)),
               "desktop", ETHERNET) for i in range(config.desktops)]
             + [(config.name_prefix + names_laptop[i % 10]
                 + ("" if i < 10 else str(i)),
                 "laptop", ETHERNET) for i in range(config.laptops)])
    for name, kind, profile in specs:
        rng = streams.stream("client::" + name)
        link = net.add_link(name, "server", profile=profile)
        private = populate_volume(server, "/coda/usr/%s" % name,
                                  _volume_tree("/coda/usr/%s" % name,
                                               config, streams))
        host = LAPTOP_1995 if kind == "laptop" else SERVER_1995
        venus_config = VenusConfig(probe_interval=120.0,
                                   hoard_walk_interval=600.0)
        venus = Venus(sim, net, name, "server", host, config=venus_config)
        warm_cache(venus, server, private)
        for volume in rng.sample(shared, min(3, len(shared))):
            warm_cache(venus, server, volume)
        for volume in rng.sample(system, min(6, len(system))):
            warm_cache(venus, server, volume)
        clients.append((name, kind, venus, link, private, rng))
        sim.process(_client_life(sim, config, venus, link, private,
                                 shared, extras, rng, kind),
                    name="life-%s" % name)
        sim.process(_outage_process(sim, config, venus, link,
                                    streams.stream("outage::" + name),
                                    kind),
                    name="outage-%s" % name)

    sim.process(_administrator(sim, config, server, system + extras,
                               streams.stream("admin")), name="admin")
    sim.run(until=config.days * DAY)

    desktops, laptops = [], []
    for name, kind, venus, _link, _private, _rng in clients:
        stats = venus.validator.stats
        report = ClientReport(
            name=name, kind=kind,
            missing_pct=100.0 * stats.missing_stamp_fraction,
            attempts=stats.attempts,
            success_pct=100.0 * stats.success_fraction,
            objs_per_success=stats.objects_per_success)
        (desktops if kind == "desktop" else laptops).append(report)
    return desktops, laptops


def _volume_tree(mount, config, streams):
    rng = streams.stream("tree::" + mount)
    tree = {mount + "/data": ("dir", 0)}
    for i in range(config.files_per_volume):
        size = max(256, int(rng.expovariate(1.0 / config.file_size)))
        tree["%s/data/f%03d" % (mount, i)] = ("file", size)
    return tree


def _client_life(sim, config, venus, link, private, shared, extras,
                 rng, kind):
    """One client's weeks: work, roam, disconnect, reconnect, repeat."""
    yield sim.sleep(rng.uniform(0, 600))
    yield from venus.connect()
    mean_gap = DAY / (config.private_writes_per_day
                      + config.shared_writes_per_day
                      + config.reads_per_day
                      + config.roams_per_day
                      + config.evictions_per_day)
    weights = [config.reads_per_day, config.private_writes_per_day,
               config.shared_writes_per_day, config.roams_per_day,
               config.evictions_per_day]
    total_weight = sum(weights)
    counter = 0
    while True:
        yield sim.sleep(rng.expovariate(1.0 / mean_gap))
        counter += 1
        pick = rng.random() * total_weight
        try:
            if pick < weights[0]:
                yield from _read_something(venus, private, shared, rng)
            elif pick < weights[0] + weights[1]:
                path = "/coda/usr/%s/data/w%d" % (venus.node, counter % 60)
                yield from venus.write_file(
                    path, rng.randrange(2_000, 20_000))
            elif pick < weights[0] + weights[1] + weights[2]:
                volume = rng.choice(shared)
                path = "/coda/project/p%02d/data/%s-%d" % (
                    shared.index(volume), venus.node, counter % 40)
                yield from venus.write_file(
                    path, rng.randrange(2_000, 20_000))
            elif pick < sum(weights[:4]):
                # Roam: read a file from a volume that may not be
                # cached — its stamp waits for the next hoard walk.
                index = rng.randrange(len(extras))
                yield from venus.read_file(
                    "/coda/extra/e%02d/data/f%03d"
                    % (index, rng.randrange(config.files_per_volume)))
            else:
                _evict_volume(venus, rng)
        except Exception:
            # Misses and races with outages are part of life.
            pass


def _outage_process(sim, config, venus, link, rng, kind):
    """Disconnections happen on their own clock, and come in bursts."""
    outages = (config.desktop_outages_per_day if kind == "desktop"
               else config.laptop_commutes_per_day)
    while True:
        yield sim.sleep(rng.expovariate(outages / DAY))
        bounces = 1 + (2 if rng.random() < config.flaky_reconnect_prob
                       else 0)
        for bounce in range(bounces):
            link.set_up(False)
            venus.handle_disconnection()
            duration = (rng.expovariate(
                1.0 / (config.outage_minutes * 60.0)) if bounce == 0
                else rng.uniform(20.0, 120.0))
            yield sim.sleep(duration)
            link.set_up(True)
            yield from venus.connect()
            if bounce < bounces - 1:
                # The link bounces again before a hoard walk can
                # restore any stamps dropped by failed validations.
                yield sim.sleep(rng.uniform(30.0, 300.0))


def _evict_volume(venus, rng):
    """Cache pressure drops one roamed-into volume wholesale."""
    extra_volids = sorted({
        entry.fid.volume for entry in venus.cache.iter_entries()
        if entry.path and entry.path.startswith("/coda/extra/")
        and not entry.dirty})
    if not extra_volids:
        return
    volid = rng.choice(extra_volids)
    for entry in venus.cache.entries_in_volume(volid):
        if not entry.dirty and not entry.pins:
            venus.cache.remove(entry.fid)
    venus.cache.volume_info(volid).drop()


def _read_something(venus, private, shared, rng):
    volid_paths = ["/coda/usr/%s/data" % venus.node]
    entry = rng.choice(venus.cache.entries())
    if entry.path:
        try:
            yield from venus.stat(entry.path)
        except Exception:
            pass
    else:
        yield from venus.readdir(volid_paths[0])


def _administrator(sim, config, server, system, rng):
    """Occasional updates to system volumes from outside the fleet."""
    counter = 0
    while True:
        rate = config.system_updates_per_day * len(system)
        yield sim.sleep(rng.expovariate(rate / DAY))
        counter += 1
        volume = rng.choice(system)
        # Update one file directly at the server (an out-of-band admin
        # client), breaking callbacks like any other update.
        fids = [fid for fid, vnode in volume.vnodes.items()
                if vnode.is_file()]
        if not fids:
            continue
        fid = rng.choice(fids)
        vnode = volume.require(fid)
        from repro.fs.content import SyntheticContent
        vnode.content = SyntheticContent(vnode.length or 1024,
                                         tag=("admin", counter))
        volume.bump(vnode, sim.now)
        server._break_callbacks("admin-client", fid)


def format_tables(desktops, laptops):
    tables = []
    for title, reports in (("(a) Desktops", desktops),
                           ("(b) Laptops", laptops)):
        table = Table(
            "Figure 9 %s: Observed Volume Validation Statistics" % title,
            ["Client", "Missing Stamp", "Validation Attempts",
             "Fraction Successful", "Objs per Success"])
        for report in sorted(reports, key=lambda r: r.name):
            table.add(report.name, "%.0f%%" % report.missing_pct,
                      report.attempts, "%.0f%%" % report.success_pct,
                      "%.0f" % report.objs_per_success)
        n = len(reports) or 1
        table.add("Mean",
                  "%.1f%%" % (sum(r.missing_pct for r in reports) / n),
                  "%.0f" % (sum(r.attempts for r in reports) / n),
                  "%.1f%%" % (sum(r.success_pct for r in reports) / n),
                  "%.0f" % (sum(r.objs_per_success for r in reports) / n))
        tables.append(table)
    return tables
