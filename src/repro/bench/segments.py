"""Figure 11: characteristics of the trace replay segments.

The four 45-minute segments chosen from the compressibility quartiles,
with the paper's published values for comparison::

    Segment   Refs     Updates  Unopt KB  Opt KB  Compressibility
    Purcell    51681     519      2864     2625       8%
    Holst      61019     596      3402     2302      32%
    Messiaen   38342     188      6996     2184      69%
    Concord   160397    1273     34704     2247      94%
"""

from dataclasses import dataclass

from repro.bench.results import Table
from repro.trace.segments import segment_by_name
from repro.trace.simulator import CmlSimulator

#: The paper's Figure 11 rows: refs, updates, unopt KB, opt KB, compr.
PAPER_VALUES = {
    "purcell": (51_681, 519, 2_864, 2_625, 0.08),
    "holst": (61_019, 596, 3_402, 2_302, 0.32),
    "messiaen": (38_342, 188, 6_996, 2_184, 0.69),
    "concord": (160_397, 1_273, 34_704, 2_247, 0.94),
}

SEGMENT_ORDER = ("purcell", "holst", "messiaen", "concord")


@dataclass
class SegmentCharacteristics:
    name: str
    references: int
    updates: int
    unopt_kb: float
    opt_kb: float
    compressibility: float


def run_segment_characterization(names=SEGMENT_ORDER):
    """Characterize each segment; returns a list in paper order."""
    results = []
    for name in names:
        segment = segment_by_name(name)
        report = CmlSimulator(aging_window=float("inf")).run(segment)
        results.append(SegmentCharacteristics(
            name=name,
            references=report.references,
            updates=report.updates,
            unopt_kb=report.appended_bytes / 1024.0,
            opt_kb=report.optimized_cml_bytes / 1024.0,
            compressibility=report.compressibility))
    return results


def format_table(results):
    table = Table(
        "Figure 11: Segments Used in Trace Replay Experiments "
        "(measured vs paper)",
        ["Segment", "References", "Updates", "Unopt CML (KB)",
         "Opt CML (KB)", "Compressibility"])
    for row in results:
        paper = PAPER_VALUES.get(row.name)
        table.add(row.name.capitalize(),
                  "%d" % row.references,
                  "%d" % row.updates,
                  "%.0f" % row.unopt_kb,
                  "%.0f" % row.opt_kb,
                  "%.0f%%" % (row.compressibility * 100))
        if paper:
            table.add("  (paper)", paper[0], paper[1], paper[2], paper[3],
                      "%.0f%%" % (paper[4] * 100))
    return table
