"""Result tables shaped like the paper's figures."""


def fmt_kbps(bits_per_sec):
    """'1952' style Kb/s formatting used by Figure 1."""
    return "%.1f" % (bits_per_sec / 1000.0) if bits_per_sec < 100_000 \
        else "%.0f" % (bits_per_sec / 1000.0)


def fmt_bytes(nbytes):
    if nbytes >= 1 << 20:
        return "%.1f MB" % (nbytes / float(1 << 20))
    if nbytes >= 1 << 10:
        return "%.0f KB" % (nbytes / float(1 << 10))
    return "%d B" % nbytes


class Table:
    """A simple aligned text table with a title."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add(self, *cells):
        if len(cells) != len(self.columns):
            raise ValueError("expected %d cells, got %d"
                             % (len(self.columns), len(cells)))
        self.rows.append([str(cell) for cell in cells])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title,
                 "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns)),
                 "  ".join("-" * w for w in widths)]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self):
        print()
        print(self.render())
