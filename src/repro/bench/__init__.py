"""The experiment harness.

One module per reproduced table/figure, each exposing a ``run_*``
function that returns structured results plus a formatter that prints
rows shaped like the paper's.  The benchmark suite under
``benchmarks/`` is a thin pytest layer over these functions; they can
also be driven directly::

    python -m repro.bench.replay --quick
"""

from repro.bench.common import (
    Testbed,
    make_testbed,
    populate_volume,
    warm_cache,
)
from repro.bench.results import Table, fmt_bytes, fmt_kbps

__all__ = [
    "Table",
    "Testbed",
    "fmt_bytes",
    "fmt_kbps",
    "make_testbed",
    "populate_volume",
    "warm_cache",
]
