"""Figure 4: effect of the aging window on log optimizations.

Five week-long traces run through the trace-driven CML simulator at a
range of aging windows A.  Each point is the ratio of data saved by
optimizations at that A to the savings at A = 4 hours (14400 s).  The
paper's observations: below A = 300 s, effectiveness on some traces
barely reaches 30% while others see nearly 80%; 600 s yields nearly
50% on all traces (hence the chosen default); above-80%-everywhere
needs A near one hour.  Denominator magnitudes: 84 MB ives, 817 MB
concord, 40 MB holst, 152 MB messiaen, 44 MB purcell.
"""

from dataclasses import dataclass

from repro.bench.results import Table
from repro.trace.segments import WEEK_TRACE_SPECS, week_trace_by_name
from repro.trace.simulator import savings_curve

AGING_WINDOWS = (30, 60, 120, 300, 600, 1200, 1800, 3600, 7200, 14400)
REFERENCE_WINDOW = 14400


@dataclass
class AgingResult:
    trace: str
    savings: dict               # A -> absolute optimized bytes
    reference_bytes: int        # savings at A = 4 h (the denominator)

    def normalized(self, window):
        if not self.reference_bytes:
            return 0.0
        return self.savings[window] / self.reference_bytes


def run_aging_analysis(windows=AGING_WINDOWS, traces=None):
    """Run the Figure 4 analysis; returns {trace: AgingResult}."""
    names = traces or sorted(WEEK_TRACE_SPECS)
    results = {}
    for name in names:
        segment = week_trace_by_name(name)
        curve = savings_curve(segment, windows)
        results[name] = AgingResult(
            trace=name, savings=curve,
            reference_bytes=curve[REFERENCE_WINDOW])
    return results


def format_table(results, windows=AGING_WINDOWS):
    table = Table(
        "Figure 4: Effect of Aging on Optimizations "
        "(savings normalized to A = 4 h)",
        ["Trace", "Savings@4h"] + ["A=%ds" % w for w in windows])
    for name in sorted(results):
        result = results[name]
        table.add(name, "%.0f MB" % (result.reference_bytes / 1e6),
                  *["%.2f" % result.normalized(w) for w in windows])
    return table
