"""Figure 1: SFTP vs TCP throughput over three networks.

The paper times "the disk-to-disk transfer of a 1MB file between a
DECpc 425SL laptop client and a DEC 5000/200 server on an isolated
network", five trials each, over Ethernet (10 Mb/s), WaveLan (2 Mb/s)
and a 9.6 Kb/s modem::

    Protocol  Network   Receive (Kb/s)  Send (Kb/s)
    TCP       Ethernet  1824 (64)       2400 (224)
              WaveLan    568 (136)       760 (80)
              Modem      6.8 (0.06)      6.4 (0.04)
    SFTP      Ethernet  1952 (104)      2744 (96)
              WaveLan   1152 (64)       1168 (48)
              Modem      6.6 (0.02)      6.9 (0.02)

SFTP transfers run as Fetch (receive) and Store (send) RPCs through
the full RPC2/SFTP stack; TCP runs the simplified Reno sender.
WaveLan is wireless and lossy — that loss is what collapses TCP's
window while SFTP's selective retransmission shrugs it off.
"""

import statistics
from dataclasses import dataclass

from repro.bench.results import Table
from repro.net import ETHERNET, MODEM, WAVELAN, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.rpc2 import Rpc2Endpoint, tcp_transfer
from repro.sim import RandomStreams, Simulator

TRANSFER_BYTES = 1_000_000
TRIALS = 5

#: Loss rates used for the transport experiment; WaveLan radios of the
#: era dropped a percent or two of packets even in good conditions.
LOSS = {"Ethernet": 0.0, "WaveLan": 0.025, "Modem": 0.002}


@dataclass
class TransportResult:
    protocol: str
    network: str
    receive_kbps: float
    receive_sd: float
    send_kbps: float
    send_sd: float


def _sftp_trial(profile, loss, direction, seed):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    net.add_link("laptop", "server", profile=profile, loss_rate=loss)
    client = Rpc2Endpoint(sim, net, "laptop", 2432, LAPTOP_1995,
                          default_bps=profile.bandwidth_bps)
    server = Rpc2Endpoint(sim, net, "server", 2432, SERVER_1995,
                          default_bps=profile.bandwidth_bps)
    server.register("Fetch", lambda ctx, args: (None, args["n"]))
    server.register("Store", lambda ctx, args: {"got": ctx.received_bytes})
    conn = client.connect("server")

    def transfer():
        start = sim.now
        if direction == "receive":
            yield conn.call("Fetch", {"n": TRANSFER_BYTES})
        else:
            yield conn.call("Store", {}, send_size=TRANSFER_BYTES)
        return sim.now - start

    elapsed = sim.run(sim.process(transfer()))
    return TRANSFER_BYTES * 8.0 / elapsed


def _tcp_trial(profile, loss, direction, seed):
    sim = Simulator()
    net = Network(sim, rng=RandomStreams(seed).stream("net"))
    net.add_link("laptop", "server", profile=profile, loss_rate=loss)
    if direction == "send":
        process = tcp_transfer(sim, net, "laptop", "server",
                               TRANSFER_BYTES, LAPTOP_1995, SERVER_1995)
    else:
        process = tcp_transfer(sim, net, "server", "laptop",
                               TRANSFER_BYTES, SERVER_1995, LAPTOP_1995)
    elapsed = sim.run(process)
    return TRANSFER_BYTES * 8.0 / elapsed


def run_transport_comparison(trials=TRIALS):
    """Run the Figure 1 grid; returns a list of TransportResult."""
    results = []
    for protocol, trial in (("TCP", _tcp_trial), ("SFTP", _sftp_trial)):
        for profile in (ETHERNET, WAVELAN, MODEM):
            loss = LOSS[profile.name]
            rows = {}
            for direction in ("receive", "send"):
                speeds = [trial(profile, loss, direction, seed)
                          for seed in range(trials)]
                rows[direction] = (statistics.mean(speeds),
                                   statistics.pstdev(speeds))
            results.append(TransportResult(
                protocol=protocol, network=profile.name,
                receive_kbps=rows["receive"][0] / 1000,
                receive_sd=rows["receive"][1] / 1000,
                send_kbps=rows["send"][0] / 1000,
                send_sd=rows["send"][1] / 1000))
    return results


def format_table(results):
    table = Table(
        "Figure 1: Transport Protocol Performance "
        "(1 MB transfer, mean of %d trials, Kb/s)" % TRIALS,
        ["Protocol", "Network", "Receive (Kb/s)", "Send (Kb/s)"])
    for row in results:
        table.add(row.protocol, row.network,
                  "%.1f (%.2f)" % (row.receive_kbps, row.receive_sd),
                  "%.1f (%.2f)" % (row.send_kbps, row.send_sd))
    return table
