"""Figures 12, 13 and 14: trickle reintegration under trace replay.

The paper's central experiment: replay the four segments on a
write-disconnected client over four networks, for two aging windows
(A = 300, 600 s) and two think thresholds (lambda = 1, 10 s), with a
10-minute warming period.  The headline result is *insulation*:
"Bandwidth varies over three orders of magnitude, yet elapsed time
remains almost unchanged" — on average only ~2% slower at 9.6 Kb/s
than at 10 Mb/s, worst case 11%.

Figure 14's companion table accounts for where update data went at
each bandwidth: still in the CML, shipped over the wire, or cancelled
by log optimizations.  Its shape: as bandwidth falls, less data is
shipped, more remains in the CML, and optimizations save slightly
more (records live longer in the log).
"""

from dataclasses import dataclass

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.bench.results import Table
from repro.net import ETHERNET, ISDN, MODEM, WAVELAN
from repro.trace.replay import TraceReplayer
from repro.trace.segments import segment_by_name
from repro.venus import VenusConfig

NETWORKS = (ETHERNET, WAVELAN, ISDN, MODEM)
SEGMENTS = ("purcell", "holst", "messiaen", "concord")
AGING_WINDOWS = (300.0, 600.0)
THINK_THRESHOLDS = (1.0, 10.0)
WARM_SECONDS = 600.0


@dataclass
class ReplayCell:
    segment: str
    network: str
    aging_window: float
    think_threshold: float
    elapsed: float
    begin_cml_kb: float
    end_cml_kb: float
    shipped_kb: float
    optimized_kb: float
    misses: int


def run_replay_cell(segment, network, aging_window, think_threshold,
                    venus_config=None):
    """Run one cell of the Figure 12 grid; returns a ReplayCell."""
    if isinstance(segment, str):
        segment = segment_by_name(segment)
    config = venus_config or VenusConfig(
        aging_window=aging_window,
        force_write_disconnected=True)
    config.aging_window = aging_window
    testbed = make_testbed(network, venus_config=config)
    volume = populate_volume(testbed.server, "/coda/usr/trace",
                             segment.tree)
    warm_cache(testbed.venus, testbed.server, volume)
    replayer = TraceReplayer(testbed.venus,
                             think_threshold=think_threshold,
                             warm_seconds=WARM_SECONDS)

    def scenario():
        connected = yield from testbed.venus.connect()
        assert connected, "client failed to reach the server"
        report = yield from replayer.run(segment)
        return report

    report = testbed.run(scenario())
    return ReplayCell(
        segment=segment.name, network=network.name,
        aging_window=aging_window, think_threshold=think_threshold,
        elapsed=report.elapsed,
        begin_cml_kb=report.begin_cml_bytes / 1024.0,
        end_cml_kb=report.end_cml_bytes / 1024.0,
        shipped_kb=report.shipped_bytes / 1024.0,
        optimized_kb=report.optimized_bytes / 1024.0,
        misses=report.misses)


def run_replay_grid(segments=SEGMENTS, networks=NETWORKS,
                    aging_windows=AGING_WINDOWS,
                    think_thresholds=THINK_THRESHOLDS):
    """The full 2x2x4x4 grid; returns a list of ReplayCell.

    Segments are generated once and reused; each cell runs in a fresh
    simulated testbed, so cells are independent.
    """
    cells = []
    cached_segments = {name: segment_by_name(name) for name in segments}
    for think in think_thresholds:
        for window in aging_windows:
            for name in segments:
                for network in networks:
                    cells.append(run_replay_cell(
                        cached_segments[name], network, window, think))
    return cells


def elapsed_tables(cells):
    """Figure 12 style: one table per (lambda, A) combination."""
    tables = []
    combos = sorted({(c.think_threshold, c.aging_window) for c in cells})
    for think, window in combos:
        table = Table(
            "Figure 12 (lambda = %g s, A = %g s): elapsed seconds"
            % (think, window),
            ["Segment"] + ["%s %s" % (n.name, _rate(n)) for n in NETWORKS])
        for name in SEGMENTS:
            row = [name.capitalize()]
            for network in NETWORKS:
                match = [c for c in cells
                         if c.segment == name
                         and c.network == network.name
                         and c.think_threshold == think
                         and c.aging_window == window]
                row.append("%.0f" % match[0].elapsed if match else "-")
            if len(row) == len(NETWORKS) + 1:
                table.add(*row)
        tables.append(table)
    return tables


def cml_data_table(cells, think=1.0, window=600.0):
    """Figure 14 style: CML accounting for one (lambda, A) combination."""
    table = Table(
        "Figure 14 (lambda = %g s, A = %g s): data generated during "
        "replay (KB)" % (think, window),
        ["Segment", "Network", "Begin CML", "End CML", "Shipped",
         "Optimized"])
    for name in SEGMENTS:
        for network in NETWORKS:
            match = [c for c in cells
                     if c.segment == name and c.network == network.name
                     and c.think_threshold == think
                     and c.aging_window == window]
            if match:
                cell = match[0]
                table.add(name.capitalize(), network.name,
                          "%.0f" % cell.begin_cml_kb,
                          "%.0f" % cell.end_cml_kb,
                          "%.0f" % cell.shipped_kb,
                          "%.0f" % cell.optimized_kb)
    return table


def slowdown_summary(cells):
    """Modem-vs-Ethernet slowdown stats across the grid (the ~2% claim)."""
    ratios = []
    for think in THINK_THRESHOLDS:
        for window in AGING_WINDOWS:
            for name in SEGMENTS:
                by_net = {c.network: c.elapsed for c in cells
                          if c.segment == name
                          and c.think_threshold == think
                          and c.aging_window == window}
                if "Ethernet" in by_net and "Modem" in by_net \
                        and by_net["Ethernet"]:
                    ratios.append(by_net["Modem"] / by_net["Ethernet"])
    if not ratios:
        return 0.0, 0.0
    mean = sum(ratios) / len(ratios)
    worst = max(ratios)
    return mean - 1.0, worst - 1.0


def _rate(profile):
    if profile.bandwidth_bps >= 1e6:
        return "%g Mb/s" % (profile.bandwidth_bps / 1e6)
    return "%g Kb/s" % (profile.bandwidth_bps / 1e3)
