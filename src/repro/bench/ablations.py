"""Ablation studies of the design choices the paper argues for.

These go beyond the paper's tables: each sweeps one design parameter
the paper fixes after qualitative argument, and measures the quantity
the argument is about.

* **Chunk time budget** (section 4.3.5): the 30-second budget bounds
  how long a chunk can monopolize a slow link.  We measure foreground
  cache-miss latency on a modem while trickle reintegration runs, for
  several budgets (and for whole-log chunks, the no-chunking strawman).
* **Aging window at replay time** (section 4.3.4): A trades
  reintegration data volume against propagation promptness; we sweep A
  on one segment and report shipped bytes and end-of-run CML.
* **Log optimizations on/off** (section 4.3.3): how much wire traffic
  the optimizer saves during a weakly-connected session.
* **Volume callback false sharing** (section 4.2.2): validation
  success rates as cross-client updates are spread over fewer, larger
  volumes — the "page size" effect the paper warns about.
"""

from dataclasses import dataclass

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.bench.results import Table
from repro.fs.content import SyntheticContent
from repro.net import ETHERNET, MODEM
from repro.sim.rand import derive_rng
from repro.trace.replay import TraceReplayer
from repro.trace.segments import segment_by_name
from repro.venus import VenusConfig


# ----------------------------------------------------------------------
# Chunk-size ablation

@dataclass
class ChunkAblationRow:
    chunk_seconds: object      # float or "whole log"
    miss_latency: float        # foreground fetch under reintegration
    drain_seconds: float       # time to fully drain the backlog


def run_chunk_ablation(budgets=(5.0, 30.0, 300.0, None),
                       backlog_files=6, file_kb=120, miss_kb=40):
    """Foreground miss latency on a modem during reintegration.

    ``None`` means whole-log chunks (no adaptive sizing).  A backlog of
    aged updates exists when a foreground cache miss arrives; with
    small chunks the trickle daemon yields the link quickly, with huge
    chunks the miss waits behind megabytes of reintegration data.
    """
    rows = []
    for budget in budgets:
        config = VenusConfig(aging_window=0.0,
                             force_write_disconnected=True,
                             daemon_period=1.0)
        if budget is None:
            config.whole_chunk_mode = True
        else:
            config.chunk_seconds = budget
        testbed = make_testbed(MODEM, venus_config=config)
        tree = {"/coda/usr/w/d": ("dir", 0),
                "/coda/usr/w/d/miss.bin": ("file", miss_kb * 1024)}
        volume = populate_volume(testbed.server, "/coda/usr/w", tree)
        warm_cache(testbed.venus, testbed.server, volume)
        venus = testbed.venus
        # The miss target must not be cached.
        for fid, vnode in volume.vnodes.items():
            entry = venus.cache.get(fid)
            if entry is not None and entry.path and \
                    entry.path.endswith("miss.bin"):
                venus.cache.remove(fid)
        outcome = {}

        def scenario():
            yield from venus.connect()
            venus.hoard("/coda/usr/w/d/miss.bin", 900)
            # Build the backlog of aged updates.
            for index in range(backlog_files):
                yield from venus.write_file(
                    "/coda/usr/w/d/out%02d" % index,
                    SyntheticContent(file_kb * 1024))
            # Let reintegration get going, then take a foreground miss.
            yield venus.sim.timeout(30.0)
            start = venus.sim.now
            yield from venus.read_file("/coda/usr/w/d/miss.bin")
            outcome["miss_latency"] = venus.sim.now - start
            # How long until the whole backlog is gone?
            while len(venus.cml):
                yield venus.sim.timeout(5.0)
            outcome["drain"] = venus.sim.now

        testbed.run(scenario())
        rows.append(ChunkAblationRow(
            chunk_seconds=budget if budget is not None else "whole log",
            miss_latency=outcome["miss_latency"],
            drain_seconds=outcome["drain"]))
    return rows


def chunk_table(rows):
    table = Table(
        "Ablation (section 4.3.5): chunk time budget vs foreground miss "
        "latency at 9.6 Kb/s",
        ["Chunk budget", "Foreground miss latency (s)",
         "Backlog drained by (s)"])
    for row in rows:
        label = ("%gs" % row.chunk_seconds
                 if isinstance(row.chunk_seconds, float)
                 else str(row.chunk_seconds))
        table.add(label, "%.1f" % row.miss_latency,
                  "%.0f" % row.drain_seconds)
    return table


# ----------------------------------------------------------------------
# Aging window at replay time

@dataclass
class AgingReplayRow:
    aging_window: float
    shipped_kb: float
    end_cml_kb: float
    optimized_kb: float
    elapsed: float


def run_aging_replay_ablation(segment_name="holst",
                              windows=(0.0, 60.0, 300.0, 600.0, 1800.0),
                              network=MODEM):
    """Sweep A during live replay of one segment on one network."""
    segment = segment_by_name(segment_name)
    rows = []
    for window in windows:
        config = VenusConfig(aging_window=window,
                             force_write_disconnected=True)
        testbed = make_testbed(network, venus_config=config)
        volume = populate_volume(testbed.server, "/coda/usr/trace",
                                 segment.tree)
        warm_cache(testbed.venus, testbed.server, volume)
        replayer = TraceReplayer(testbed.venus, think_threshold=1.0,
                                 warm_seconds=0.0)

        def scenario():
            yield from testbed.venus.connect()
            report = yield from replayer.run(segment)
            return report

        report = testbed.run(scenario())
        rows.append(AgingReplayRow(
            aging_window=window,
            shipped_kb=report.shipped_bytes / 1024.0,
            end_cml_kb=report.end_cml_bytes / 1024.0,
            optimized_kb=report.optimized_bytes / 1024.0,
            elapsed=report.elapsed))
    return rows


def aging_replay_table(rows, segment_name="holst"):
    table = Table(
        "Ablation (section 4.3.4): aging window vs traffic, "
        "%s segment on a 9.6 Kb/s modem" % segment_name,
        ["A (s)", "Shipped (KB)", "End CML (KB)", "Optimized (KB)",
         "Elapsed (s)"])
    for row in rows:
        table.add("%g" % row.aging_window, "%.0f" % row.shipped_kb,
                  "%.0f" % row.end_cml_kb, "%.0f" % row.optimized_kb,
                  "%.0f" % row.elapsed)
    return table


# ----------------------------------------------------------------------
# Log optimizations on/off

def run_logopt_ablation(segment_name="concord", network=MODEM):
    """Replay with and without the CML optimizer; returns two reports."""
    segment = segment_by_name(segment_name)
    reports = {}
    for enabled in (True, False):
        config = VenusConfig(aging_window=600.0,
                             force_write_disconnected=True,
                             log_optimizations=enabled)
        testbed = make_testbed(network, venus_config=config)
        volume = populate_volume(testbed.server, "/coda/usr/trace",
                                 segment.tree)
        warm_cache(testbed.venus, testbed.server, volume)
        replayer = TraceReplayer(testbed.venus, think_threshold=1.0,
                                 warm_seconds=0.0)

        def scenario():
            yield from testbed.venus.connect()
            report = yield from replayer.run(segment)
            return report

        reports[enabled] = testbed.run(scenario())
    return reports


def logopt_table(reports, segment_name="concord"):
    table = Table(
        "Ablation (section 4.3.3): log optimizations on/off, "
        "%s segment at 9.6 Kb/s" % segment_name,
        ["Optimizations", "Shipped (KB)", "End CML (KB)",
         "Optimized (KB)"])
    for enabled in (True, False):
        report = reports[enabled]
        table.add("on" if enabled else "off",
                  "%.0f" % (report.shipped_bytes / 1024.0),
                  "%.0f" % (report.end_cml_bytes / 1024.0),
                  "%.0f" % (report.optimized_bytes / 1024.0))
    return table


# ----------------------------------------------------------------------
# Volume granularity / false sharing

@dataclass
class FalseSharingRow:
    volumes: int
    success_fraction: float
    objects_saved: int


def run_false_sharing_ablation(volume_counts=(1, 2, 4, 8, 16),
                               total_files=160, updates=8, seed=3):
    """Spread the same cross-client update load over 1..16 volumes.

    With one giant volume every stamp is invalidated by any update
    (false sharing); with many volumes most stamps survive.
    """
    rows = []
    for n_volumes in volume_counts:
        rng = derive_rng("false-sharing", n_volumes, seed)
        config = VenusConfig(start_daemons=False)
        testbed = make_testbed(ETHERNET, venus_config=config)
        per_volume = total_files // n_volumes
        volumes = []
        for v in range(n_volumes):
            mount = "/coda/fs/v%02d" % v
            tree = {mount + "/d": ("dir", 0)}
            for i in range(per_volume):
                tree["%s/d/f%03d" % (mount, i)] = ("file", 4096)
            volume = populate_volume(testbed.server, mount, tree)
            warm_cache(testbed.venus, testbed.server, volume)
            volumes.append(volume)
        venus = testbed.venus

        def scenario():
            yield from venus.connect()
            venus.handle_disconnection()
            # Another client updates a few files while we are away.
            for _ in range(updates):
                volume = rng.choice(volumes)
                fids = [fid for fid, vn in volume.vnodes.items()
                        if vn.is_file()]
                fid = rng.choice(fids)
                vnode = volume.require(fid)
                vnode.content = SyntheticContent(4096)
                volume.bump(vnode, venus.sim.now)
                testbed.server.callbacks.drop_client(venus.node)
            yield from venus.validator.validate_all()

        testbed.run(scenario())
        stats = venus.validator.stats
        rows.append(FalseSharingRow(
            volumes=n_volumes,
            success_fraction=stats.success_fraction,
            objects_saved=stats.objects_saved))
    return rows


def false_sharing_table(rows):
    table = Table(
        "Ablation (section 4.2.2): volume granularity vs validation "
        "success (same update load, fewer/larger volumes)",
        ["Volumes", "Stamp validations successful", "Objects saved"])
    for row in rows:
        table.add(row.volumes, "%.0f%%" % (row.success_fraction * 100),
                  row.objects_saved)
    return table


# ----------------------------------------------------------------------
# Header compression (section 4.1's deliberately-unimplemented option)

@dataclass
class CompressionRow:
    header_savings: int
    goodput_kbps: float


def run_header_compression_ablation(savings=(0, 23),
                                    transfer_bytes=200_000):
    """SFTP goodput on a modem with and without VJ-style compression.

    The paper lists header compression among possible transport
    improvements but "deliberately tried to minimize efforts at the
    transport level"; this ablation quantifies what was left on the
    table: a few percent on a modem, nothing anywhere else.
    """
    from repro.net import MODEM, Network
    from repro.net.host import LAPTOP_1995, SERVER_1995
    from repro.rpc2 import Rpc2Endpoint
    from repro.sim import RandomStreams, Simulator
    rows = []
    for saving in savings:
        sim = Simulator()
        net = Network(sim, rng=RandomStreams(0).stream("net"))
        net.add_link("laptop", "server", profile=MODEM,
                     header_savings=saving)
        client = Rpc2Endpoint(sim, net, "laptop", 2432, LAPTOP_1995,
                              default_bps=MODEM.bandwidth_bps)
        server = Rpc2Endpoint(sim, net, "server", 2432, SERVER_1995,
                              default_bps=MODEM.bandwidth_bps)
        server.register("Fetch", lambda ctx, args: (None, args["n"]))
        conn = client.connect("server")

        def transfer():
            start = sim.now
            yield conn.call("Fetch", {"n": transfer_bytes})
            return sim.now - start

        elapsed = sim.run(sim.process(transfer()))
        rows.append(CompressionRow(
            header_savings=saving,
            goodput_kbps=transfer_bytes * 8.0 / elapsed / 1000.0))
    return rows


def compression_table(rows):
    table = Table(
        "Ablation (section 4.1): VJ-style header compression on a "
        "9.6 Kb/s modem",
        ["Header bytes saved/packet", "SFTP goodput (Kb/s)"])
    for row in rows:
        table.add(row.header_savings, "%.2f" % row.goodput_kbps)
    return table


# ----------------------------------------------------------------------
# Cost-aware adaptation (section 8's future work)

@dataclass
class CostRow:
    tariff: str
    shipped_kb: float
    optimized_kb: float
    cml_left_kb: float
    money_spent: float


def run_cost_ablation():
    """The same weakly-connected session on three tariffs.

    Free: the stock aging window.  Cellular (per-MB): the stretched
    window lets more overwrites cancel, so fewer megabytes are paid
    for.  Long distance (per-minute): everything drains promptly so
    the call can end.
    """
    from repro.core.cost import CELLULAR, FREE, LONG_DISTANCE
    from repro.fs import SyntheticContent
    from repro.net import MODEM
    from repro.venus import VenusConfig
    rows = []
    for tariff in (FREE, CELLULAR, LONG_DISTANCE):
        config = VenusConfig(aging_window=300.0, daemon_period=5.0,
                             tariff=tariff)
        testbed = make_testbed(MODEM, venus_config=config)
        volume = populate_volume(testbed.server, "/coda/usr/c",
                                 {"/coda/usr/c/d": ("dir", 0)})
        warm_cache(testbed.venus, testbed.server, volume)
        venus = testbed.venus

        def session():
            yield from venus.connect()
            # Overwrite the same file every two minutes for a while:
            # a longer aging window cancels more of these stores.
            for index in range(8):
                yield from venus.write_file(
                    "/coda/usr/c/d/draft", SyntheticContent(25_000))
                yield venus.sim.timeout(120.0)
            yield venus.sim.timeout(600.0)

        testbed.run(session())
        rows.append(CostRow(
            tariff=tariff.name,
            shipped_kb=venus.trickle.stats.bytes_shipped / 1024.0,
            optimized_kb=venus.cml.stats.optimized_bytes / 1024.0,
            cml_left_kb=venus.cml.size_bytes / 1024.0,
            money_spent=venus.network_cost()))
    return rows


def cost_table(rows):
    table = Table(
        "Extension (section 8): cost-aware adaptation of the same "
        "session on three tariffs",
        ["Tariff", "Shipped (KB)", "Optimized (KB)", "CML left (KB)",
         "Money spent"])
    for row in rows:
        table.add(row.tariff, "%.0f" % row.shipped_kb,
                  "%.0f" % row.optimized_kb, "%.0f" % row.cml_left_kb,
                  "%.2f" % row.money_spent)
    return table


# ----------------------------------------------------------------------
# Shared keepalives (the section 4.1 fix itself)

@dataclass
class KeepaliveRow:
    scheme: str
    packets_per_hour: int
    bytes_per_hour: int


def run_keepalive_ablation(idle_hours=1.0):
    """Idle-link keepalive traffic: original layering vs shared.

    The original code had RPC2, SFTP, and Venus each running their own
    keepalive stream ("this isolation ... generated duplicate keepalive
    traffic").  The fix shares one pool of liveness information.  Both
    schemes are measured on an idle modem connection.
    """
    from repro.net import MODEM
    from repro.venus import VenusConfig
    rows = []
    for scheme in ("shared", "duplicated"):
        # Suppress periodic bandwidth probes: this ablation isolates
        # keepalive traffic.
        config = VenusConfig(keepalive_interval=60.0,
                             bandwidth_probe_interval=10 * 3600.0)
        testbed = make_testbed(MODEM, venus_config=config)
        volume = populate_volume(testbed.server, "/coda/usr/k",
                                 {"/coda/usr/k/d": ("dir", 0)})
        warm_cache(testbed.venus, testbed.server, volume)
        venus = testbed.venus
        sim = testbed.sim

        def connect():
            yield from venus.connect()

        testbed.run(connect())
        if scheme == "duplicated":
            # The pre-fix layering: two extra independent keepalive
            # streams (RPC2's and SFTP's), each blind to the other's
            # traffic and to Venus's.
            def layer_keepalive(period):
                while True:
                    yield sim.sleep(period)
                    try:
                        yield venus.endpoint.ping(venus.server_node)
                    except Exception:
                        return

            sim.process(layer_keepalive(30.0), name="rpc2-keepalive")
            sim.process(layer_keepalive(45.0), name="sftp-keepalive")
        start_packets = venus.endpoint.packets_out
        start_bytes = venus.endpoint.bytes_out
        sim.run(until=sim.now + idle_hours * 3600.0)
        rows.append(KeepaliveRow(
            scheme=scheme,
            packets_per_hour=int((venus.endpoint.packets_out
                                  - start_packets) / idle_hours),
            bytes_per_hour=int((venus.endpoint.bytes_out
                                - start_bytes) / idle_hours)))
    return rows


def keepalive_table(rows):
    table = Table(
        "Ablation (section 4.1): idle keepalive traffic, original "
        "layering vs shared liveness (9.6 Kb/s modem)",
        ["Scheme", "Packets/hour", "Bytes/hour"])
    for row in rows:
        table.add(row.scheme, row.packets_per_hour, row.bytes_per_hour)
    return table
