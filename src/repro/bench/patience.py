"""Figure 7: patience threshold versus hoard priority.

tau(P) = alpha + beta * e**(gamma P) is converted into "the size of the
largest file that can be fetched in that time at a given bandwidth"
(e.g. 60 s at 64 Kb/s is 480 KB).  Superimposed on the curves are
files of various sizes hoarded at priorities 100, 500, and 900; the
caption's classification:

* at 9.6 Kb/s only the priority-900 files and the 1 KB file at
  priority 500 are below tau;
* at 64 Kb/s the 1 MB file at priority 500 is also below;
* at 2 Mb/s everything except the 4 MB and 8 MB files at priority 100
  is below.

Also reproduced: section 4.4's motivating service-time example — a
1 MB cache miss takes a few seconds at 10 Mb/s but nearly 20 minutes
at 9.6 Kb/s.
"""

from dataclasses import dataclass

from repro.bench.results import Table
from repro.core.patience import PatienceModel

KB = 1024
MB = 1024 * 1024

CURVE_BANDWIDTHS = (9_600.0, 64_000.0, 2_000_000.0)

#: The file points of Figure 7: (priority, size).
FILE_POINTS = (
    (100, 1 * MB), (100, 4 * MB), (100, 8 * MB),
    (500, 1 * KB), (500, 1 * MB),
    (900, 1 * MB), (900, 8 * MB),
)


@dataclass
class PatiencePoint:
    priority: int
    size: int
    below: dict      # bandwidth -> bool


def run_patience_analysis(model=None):
    """Classify the Figure 7 file points under each bandwidth."""
    model = model or PatienceModel()
    points = []
    for priority, size in FILE_POINTS:
        below = {bw: size <= model.max_file_bytes(priority, bw)
                 for bw in CURVE_BANDWIDTHS}
        points.append(PatiencePoint(priority=priority, size=size,
                                    below=below))
    return model, points


def curve_table(model=None, priorities=None):
    model = model or PatienceModel()
    if priorities is None:
        priorities = range(0, 1001, 100)
    table = Table(
        "Figure 7: Patience Threshold (largest transparently fetched "
        "file, by priority and bandwidth)",
        ["Priority", "tau (s)"] + ["%g Kb/s" % (bw / 1000)
                                   for bw in CURVE_BANDWIDTHS])
    for priority in priorities:
        row = [str(priority), "%.1f" % model.threshold(priority)]
        for bw in CURVE_BANDWIDTHS:
            size = model.max_file_bytes(priority, bw)
            row.append("%.0f KB" % (size / KB) if size < MB
                       else "%.1f MB" % (size / MB))
        table.add(*row)
    return table


def miss_service_times(size=1 * MB):
    """Section 4.4's example: miss service time by bandwidth."""
    return {
        "10 Mb/s": size * 8 / 10e6,
        "9.6 Kb/s": size * 8 / 9600.0,
    }
