"""Figure 8: cache validation time under ideal conditions.

Cache contents come from five synthetic hoard profiles shaped like
typical Coda users (a few hundred to a few thousand objects across
many volumes).  For each profile and each of the four networks, the
client disconnects with fresh volume stamps, no server updates occur,
and reconnection validation is timed twice: with volume callbacks
(one batched ValidateVolumes RPC) and without (batched per-object
ValidateAttrs, the original scheme).

Paper conclusions this reproduces: volume callbacks always reduce
validation time; the reduction is modest at 10 Mb/s and dramatic at
9.6 Kb/s, where volume validation takes "only about 25% longer than
at 10 Mb/s".
"""

from dataclasses import dataclass

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.bench.results import Table
from repro.net import ETHERNET, ISDN, MODEM, WAVELAN
from repro.sim.rand import derive_rng
from repro.venus import VenusConfig


@dataclass(frozen=True)
class HoardProfile:
    """Shape of one user's cache: volumes and objects per volume."""

    user: str
    volumes: int
    files_per_volume: int
    mean_file_size: int

    @property
    def total_objects(self):
        # files plus one directory per volume
        return self.volumes * (self.files_per_volume + 1)


#: Five users, spanning the range of real hoard profile sizes.
PROFILES = (
    HoardProfile("user1", volumes=8, files_per_volume=40,
                 mean_file_size=12_000),
    HoardProfile("user2", volumes=14, files_per_volume=75,
                 mean_file_size=9_000),
    HoardProfile("user3", volumes=22, files_per_volume=90,
                 mean_file_size=14_000),
    HoardProfile("user4", volumes=30, files_per_volume=65,
                 mean_file_size=8_000),
    HoardProfile("user5", volumes=18, files_per_volume=130,
                 mean_file_size=10_000),
)

NETWORKS = (ETHERNET, WAVELAN, ISDN, MODEM)


def _profile_tree(profile, volume_index):
    rng = derive_rng("hoard", profile.user, volume_index)
    mount = "/coda/%s/v%02d" % (profile.user, volume_index)
    tree = {mount + "/files": ("dir", 0)}
    for i in range(profile.files_per_volume):
        size = max(256, int(rng.expovariate(1.0 / profile.mean_file_size)))
        tree["%s/files/f%04d" % (mount, i)] = ("file", size)
    return mount, tree


def _build_client(profile, network, use_volume_callbacks):
    config = VenusConfig(start_daemons=False,
                         use_volume_callbacks=use_volume_callbacks)
    testbed = make_testbed(network, venus_config=config)
    for v in range(profile.volumes):
        mount, tree = _profile_tree(profile, v)
        volume = populate_volume(testbed.server, mount, tree)
        warm_cache(testbed.venus, testbed.server, volume)
    return testbed


@dataclass
class ValidationResult:
    user: str
    network: str
    objects: int
    volume_seconds: float
    object_seconds: float

    @property
    def speedup(self):
        if not self.volume_seconds:
            return float("inf")
        return self.object_seconds / self.volume_seconds


def _timed_validation(profile, network, use_volume_callbacks):
    testbed = _build_client(profile, network, use_volume_callbacks)
    venus = testbed.venus

    def reconnect_and_validate():
        # Simulate a disconnection (stamps survive, callbacks do not).
        venus.handle_disconnection()
        start = venus.sim.now
        yield from venus.validator.validate_all()
        return venus.sim.now - start

    # Enter a connected state first so the transition is legal.
    def scenario():
        yield from venus.connect()
        elapsed = yield from reconnect_and_validate()
        return elapsed

    return testbed.run(scenario())


def run_validation_comparison(profiles=PROFILES, networks=NETWORKS):
    """Run the Figure 8 grid; returns a list of ValidationResult."""
    results = []
    for profile in profiles:
        for network in networks:
            with_volumes = _timed_validation(profile, network, True)
            without = _timed_validation(profile, network, False)
            results.append(ValidationResult(
                user=profile.user, network=network.name,
                objects=profile.total_objects,
                volume_seconds=with_volumes,
                object_seconds=without))
    return results


def format_table(results):
    table = Table(
        "Figure 8: Validation Time Under Ideal Conditions (seconds)",
        ["User", "Objects", "Network", "Volume CBs", "Object CBs",
         "Speedup"])
    for row in results:
        table.add(row.user, row.objects, row.network,
                  "%.2f" % row.volume_seconds,
                  "%.2f" % row.object_seconds,
                  "%.1fx" % row.speedup)
    return table
