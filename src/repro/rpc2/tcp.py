"""A simplified TCP (Reno-style) bulk transfer, the Figure 1 baseline.

This models the aspects of 4.3BSD-era TCP that determine Figure 1's
outcome: slow start, AIMD congestion avoidance, *cumulative-only*
acknowledgements (no SACK), fast retransmit on three duplicate acks,
and go-back-N on retransmission timeout.  Against SFTP's selective
retransmission and sparser acks, these are precisely the behaviours
that cost TCP throughput on lossy wireless links and slow modems.
"""

from repro.rpc2.rtt import RttEstimator
from repro.sim.resources import Store

TCP_HEADER = 40          # TCP/IP headers
MSS = 1024               # segment payload, bytes
INITIAL_SSTHRESH = 64    # segments


class _TcpReceiver:
    """Receives segments, delivers cumulative acks (delayed-ack policy)."""

    def __init__(self, sim, socket, peer, peer_port, host, total_segments):
        self.sim = sim
        self.socket = socket
        self.peer = peer
        self.peer_port = peer_port
        self.host = host
        self.total = total_segments
        self.received = set()
        self.next_expected = 0
        self.finished = sim.event()
        self._unacked_count = 0

    def run(self):
        while self.next_expected < self.total:
            datagram = yield self.socket.recv()
            cost = self.host.recv_cost(datagram.size)
            if cost > 0:
                yield self.sim.sleep(cost)
            seq = datagram.payload["seq"]
            self.socket.release(datagram)
            out_of_order = seq != self.next_expected
            self.received.add(seq)
            while self.next_expected in self.received:
                self.next_expected += 1
            self._unacked_count += 1
            # Delayed ack: every second in-order segment; immediately on
            # out-of-order data (dupack) and on the final segment.
            if (out_of_order or self._unacked_count >= 2
                    or self.next_expected >= self.total):
                yield self._send_ack()
        if not self.finished.triggered:
            self.finished.succeed(self.sim.now)

    def _send_ack(self):
        size = TCP_HEADER
        cost = self.host.send_cost(size)
        done = self.sim.timeout(cost)
        self._unacked_count = 0
        self.socket.send(self.peer, self.peer_port,
                         {"ack": self.next_expected}, size)
        return done


class _TcpSender:
    """Slow start / congestion avoidance / fast retransmit sender."""

    MAX_RTO_BACKOFFS = 8

    def __init__(self, sim, socket, peer, peer_port, host, total_segments,
                 last_segment_bytes):
        self.sim = sim
        self.socket = socket
        self.peer = peer
        self.peer_port = peer_port
        self.host = host
        self.total = total_segments
        self.last_segment_bytes = last_segment_bytes
        self.rtt = RttEstimator(initial_rto=3.0)
        self.cwnd = 1.0
        self.ssthresh = float(INITIAL_SSTHRESH)
        self.acked = 0
        self.next_seq = 0
        self.dupacks = 0
        self._send_times = {}
        self._acks = Store(sim)
        self.retransmissions = 0

    def _segment_size(self, seq):
        payload = self.last_segment_bytes if seq == self.total - 1 else MSS
        return TCP_HEADER + payload

    def _ack_pump(self):
        while self.acked < self.total:
            datagram = yield self.socket.recv()
            cost = self.host.recv_cost(datagram.size)
            if cost > 0:
                yield self.sim.sleep(cost)
            ack = datagram.payload["ack"]
            self.socket.release(datagram)
            self._acks.put(ack)

    def run(self):
        self.sim.process(self._ack_pump(), name="tcp-ack-pump")
        backoff = 0
        pending = self._acks.get()
        while self.acked < self.total:
            # Fill the congestion window.
            while (self.next_seq < self.total
                   and self.next_seq - self.acked < int(self.cwnd)):
                yield self._transmit(self.next_seq)
                self.next_seq += 1
            timeout = self.sim.timeout(self.rtt.rto * (2 ** backoff))
            yield self.sim.any_of([pending, timeout])
            if not pending.triggered:
                # Retransmission timeout: shrink to one segment and
                # go back to the first unacked segment.
                backoff += 1
                if backoff > self.MAX_RTO_BACKOFFS:
                    raise RuntimeError("tcp transfer stalled")
                self.ssthresh = max(2.0, self.cwnd / 2.0)
                self.cwnd = 1.0
                self.next_seq = self.acked
                self._send_times.clear()
                continue
            ack = pending.value
            pending = self._acks.get()
            backoff = 0
            if ack > self.acked:
                sent_at = self._send_times.pop(ack - 1, None)
                if sent_at is not None:
                    self.rtt.observe(self.sim.now - sent_at)
                newly = ack - self.acked
                self.acked = ack
                self.dupacks = 0
                for _ in range(newly):
                    if self.cwnd < self.ssthresh:
                        self.cwnd += 1.0
                    else:
                        self.cwnd += 1.0 / self.cwnd
            elif ack == self.acked and ack < self.total:
                self.dupacks += 1
                if self.dupacks == 3:
                    # Fast retransmit of the missing segment.
                    self.ssthresh = max(2.0, self.cwnd / 2.0)
                    self.cwnd = self.ssthresh
                    self.dupacks = 0
                    yield self._transmit(self.acked, retransmit=True)

    def _transmit(self, seq, retransmit=False):
        size = self._segment_size(seq)
        cost = self.sim.timeout(self.host.send_cost(size))
        if retransmit:
            self.retransmissions += 1
            # Karn's rule: never time a retransmitted segment.
            self._send_times.pop(seq, None)
        else:
            self._send_times[seq] = self.sim.now
        self.socket.send(self.peer, self.peer_port, {"seq": seq}, size)
        return cost


def tcp_transfer(sim, network, src, dst, nbytes, src_host, dst_host,
                 src_port=5001, dst_port=5002):
    """Run a one-shot TCP bulk transfer; process returns elapsed seconds.

    Sockets are bound fresh for each transfer, so repeated transfers in
    one simulation need distinct port pairs.
    """
    total = max(1, (nbytes + MSS - 1) // MSS)
    last = nbytes - MSS * (total - 1) or MSS
    src_sock = network.socket(src, src_port)
    dst_sock = network.socket(dst, dst_port)
    sender = _TcpSender(sim, src_sock, dst, dst_port, src_host, total, last)
    receiver = _TcpReceiver(sim, dst_sock, src, src_port, dst_host, total)

    def transfer():
        start = sim.now
        recv_proc = sim.process(receiver.run(), name="tcp-recv")
        yield sim.process(sender.run(), name="tcp-send")
        yield recv_proc
        src_sock.close()
        dst_sock.close()
        return sim.now - start

    return sim.process(transfer(), name="tcp-transfer")
