"""Shared liveness tracking.

The original Coda layering generated three independent keepalive
streams (RPC2, SFTP, and Venus's own probes).  The paper's fix is to
share one pool of liveness information across all layers.  A
:class:`LivenessRegistry` is exactly that pool: every arriving packet
refreshes it, so an active SFTP transfer keeps the RPC2 connection and
Venus equally convinced the peer is alive without extra traffic.
"""


class PeerLiveness:
    """What one endpoint knows about one peer."""

    def __init__(self):
        self.last_heard = None
        self.reachable = None  # None = never contacted

    def heard(self, now):
        self.last_heard = now
        self.reachable = True

    def silent_for(self, now):
        """Seconds since the peer was last heard from (inf if never)."""
        if self.last_heard is None:
            return float("inf")
        return now - self.last_heard


class LivenessRegistry:
    """Per-endpoint registry of peer liveness, shared by all layers."""

    def __init__(self, sim):
        self.sim = sim
        self._peers = {}

    def peer(self, name):
        info = self._peers.get(name)
        if info is None:
            info = PeerLiveness()
            self._peers[name] = info
        return info

    def heard_from(self, name):
        """Record that any packet (RPC, SFTP, ping) arrived from ``name``."""
        self.peer(name).heard(self.sim.now)

    def mark_unreachable(self, name):
        self.peer(name).reachable = False

    def is_reachable(self, name):
        return self.peer(name).reachable is True

    def silent_for(self, name):
        return self.peer(name).silent_for(self.sim.now)
