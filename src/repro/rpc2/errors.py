"""Transport-level failures."""


class ConnectionDead(Exception):
    """The peer stopped responding; retransmissions were exhausted.

    Venus reacts to this by treating the server as disconnected and
    entering the emulating state.
    """


class TransferAborted(Exception):
    """A bulk (SFTP) transfer could not be completed."""
