"""Wire formats for RPC2 and SFTP.

Packets are plain Python objects; only their declared byte sizes touch
the simulated wire.  Header sizes approximate the real protocols:
28 bytes of UDP/IP, 32 bytes of RPC2 header, 32 bytes of SFTP header.
Every packet carries a send timestamp and echoes the most recently
received one, implementing the timestamp-echo RTT measurement the
paper adopts from Jacobson.
"""

from dataclasses import dataclass, field
from typing import Optional

UDP_IP_HEADER = 28
RPC2_HEADER = 32
SFTP_HEADER = 32

#: Default SFTP data payload per packet, bytes.
SFTP_DATA_SIZE = 1024

#: Default size modelled for RPC argument/result blocks, bytes.
SMALL_ARGS = 64

#: Size of a status (attribute) block, per the paper's section 4.4.1
#: ("status information is only about 100 bytes long").
STATUS_BLOCK = 100

#: Modelled bytes for a (fid, version) pair in validation requests.
FID_VERSION_BYTES = 16

#: Well-known RPC2 port bound by every Coda endpoint in the simulation.
CODA_PORT = 2432


@dataclass
class Rpc2Packet:
    """Common base: connection id, call sequence, timestamp echo."""

    conn: int
    seq: int
    ts: float = 0.0
    ts_echo: Optional[float] = None


@dataclass
class Request(Rpc2Packet):
    """A procedure call request."""

    proc: str = ""
    args: object = None
    args_size: int = SMALL_ARGS
    send_size: int = 0      # bytes the client wants to ship via SFTP

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER + self.args_size


@dataclass
class Busy(Rpc2Packet):
    """Server is working on this call; quench client retransmission."""

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER


@dataclass
class Go(Rpc2Packet):
    """Server invites the client to begin its SFTP upload."""

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER


@dataclass
class Reply(Rpc2Packet):
    """Completion of a call, carrying its result."""

    result: object = None
    result_size: int = SMALL_ARGS
    error: Optional[str] = None

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER + self.result_size


@dataclass
class Ping(Rpc2Packet):
    """Keepalive / network probe; ``pad`` inflates size for BW probes."""

    pad: int = 0

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER + self.pad


@dataclass
class Pong(Rpc2Packet):
    pad: int = 0

    @property
    def wire_size(self):
        return UDP_IP_HEADER + RPC2_HEADER + self.pad


@dataclass
class SftpData:
    """One SFTP data packet of a bulk transfer."""

    transfer_id: tuple
    seq: int
    total: int            # total packets in this transfer
    data_size: int
    ts: float = 0.0

    @property
    def wire_size(self):
        return UDP_IP_HEADER + SFTP_HEADER + self.data_size


@dataclass
class SftpAck:
    """Selective acknowledgement of SFTP data packets."""

    transfer_id: tuple
    received: frozenset = field(default_factory=frozenset)
    complete: bool = False
    ts: float = 0.0
    ts_echo: Optional[float] = None

    @property
    def wire_size(self):
        # Real SFTP acks carry a fixed-size bitmask.
        return UDP_IP_HEADER + SFTP_HEADER + 8
