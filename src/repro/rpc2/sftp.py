"""SFTP: the windowed bulk-transfer engine.

SFTP ships file contents as a side effect of RPC2 calls.  The sender
streams windows of data packets; the receiver returns selective
acknowledgements, so a single lost packet costs one retransmission
rather than a window (the behaviour that lets SFTP beat TCP on lossy
wireless links in Figure 1).  Retransmission timeouts adapt to the
RTT/bandwidth estimates shared with RPC2 (section 4.1).
"""

import math

from repro.rpc2.errors import TransferAborted
from repro.rpc2.packets import SftpAck, SftpData, SFTP_DATA_SIZE
from repro.sim.resources import Store

#: Packets in flight per burst.
WINDOW = 16
#: Receiver acks after this many new packets (twice per full burst).
ACK_EVERY = 8
#: Sender gives up after this many consecutive timeouts...
MAX_RETRIES = 8
#: ...or after this much silence, whichever comes first.  Failure
#: detection must not scale with transfer size: a dead modem link is
#: declared dead in ~2 minutes regardless of how big the file was.
DEAD_INTERVAL = 120.0
#: A round whose deadline exceeds this resends its lowest outstanding
#: packet this often.  Round deadlines scale with the (possibly badly
#: underestimated) link bandwidth and the retry backoff, so a round can
#: legitimately outlast the receiver's data-idle limit; the probe keeps
#: data flowing under that limit, and — because receivers acknowledge
#: duplicates and holes promptly — solicits an ack that reveals a lost
#: burst *tail*, which selective repair alone can never recover (it
#: only refills holes below the highest sequence the receiver has seen).
KEEPALIVE = 45.0


def packet_count(size, data_size=SFTP_DATA_SIZE):
    """Number of data packets needed for ``size`` bytes (min 1)."""
    return max(1, math.ceil(size / data_size))


class SftpSender:
    """Transmits ``size`` bytes to a peer as transfer ``transfer_id``.

    ``run()`` is a simulation process body; it completes when the
    receiver acknowledges the full transfer and raises
    :class:`TransferAborted` when retries are exhausted.
    """

    def __init__(self, sim, endpoint, peer, transfer_id, size,
                 data_size=SFTP_DATA_SIZE, window=WINDOW):
        self.sim = sim
        self.endpoint = endpoint
        self.peer = peer
        self.transfer_id = transfer_id
        self.size = size
        self.data_size = data_size
        self.window = window
        self.inbox = Store(sim)
        self.total = packet_count(size, data_size)
        self.bytes_acked = 0

    def _packet_size(self, seq):
        if seq < self.total - 1:
            return self.data_size
        return self.size - self.data_size * (self.total - 1) or self.data_size

    def _burst_timeout(self, nbytes):
        estimator = self.endpoint.estimator(self.peer)
        expected = estimator.expected_transfer_time(
            nbytes, default_bps=self.endpoint.default_bps)
        return 2.0 * expected + estimator.rtt.rto

    def _send_data(self, seq, sent):
        """Queue data packet ``seq``; returns its payload size.

        ``sent`` is the set of sequence numbers already transmitted at
        least once — a membership hit means this send is a
        retransmission, which the observability layer counts.
        """
        data_size = self._packet_size(seq)
        obs = self.sim.obs
        if obs.enabled and seq in sent:
            obs.metrics.counter("sftp.retransmits",
                                node=self.endpoint.node).inc()
            obs.event("retransmit", node=self.endpoint.node,
                      peer=self.peer, layer="sftp", seq=seq,
                      transfer=str(self.transfer_id))
        sent.add(seq)
        self.endpoint._send(self.peer, SftpData(
            transfer_id=self.transfer_id, seq=seq, total=self.total,
            data_size=data_size, ts=self.sim.now))
        return data_size

    def run(self):
        start = self.sim.now
        unacked = set(range(self.total))
        sent = set()
        retries = 0
        backoff = 1.0
        last_progress = self.sim.now
        pending_ack = self.inbox.get()
        while True:
            # One round: send a burst, then wait until the whole burst
            # is acknowledged or the round times out.  Duplicate and
            # partial acks merely update state — they never trigger an
            # early resend, so a lossy link cannot amplify traffic.
            burst = sorted(unacked)[:self.window] if unacked \
                else [self.total - 1]   # probe to solicit the final ack
            burst_set = set(burst)
            burst_bytes = 0
            round_start = self.sim.now
            for seq in burst:
                burst_bytes += self._send_data(seq, sent)
            round_length = self._burst_timeout(
                max(burst_bytes, self.data_size)) * backoff
            deadline = self.sim.timeout(round_length)
            keepalive = self.sim.timeout(KEEPALIVE) \
                if round_length > KEEPALIVE else None
            progressed = False
            while True:
                waiting = [pending_ack, deadline]
                if keepalive is not None:
                    waiting.append(keepalive)
                yield self.sim.any_of(waiting)
                if pending_ack.triggered:
                    ack = pending_ack.value
                    pending_ack = self.inbox.get()
                    if ack.ts_echo is not None:
                        ts, hold = ack.ts_echo
                        self.endpoint.estimator(self.peer).observe_rtt(
                            self.sim.now - ts - hold)
                    if ack.complete:
                        elapsed = self.sim.now - start
                        self.endpoint.estimator(self.peer) \
                            .observe_transfer(self.size, elapsed)
                        return elapsed
                    newly_acked = unacked & ack.received
                    if newly_acked:
                        progressed = True
                        unacked -= newly_acked
                        # Mid-transfer bandwidth sample: this is what
                        # keeps round deadlines tracking the link, so a
                        # lost ack costs a short stall, not a guess
                        # based on stale estimates (section 4.1).
                        acked_bytes = sum(self._packet_size(seq)
                                          for seq in newly_acked)
                        self.endpoint.estimator(self.peer).observe_transfer(
                            acked_bytes, self.sim.now - round_start)
                        # Selective repair: a hole below the highest
                        # sequence the receiver reports is provably
                        # lost (the link is FIFO); packets above it may
                        # simply still be in flight.  Bounded — each
                        # repair needs an ack that carried new
                        # information.
                        horizon = max(ack.received) if ack.received else -1
                        missing = {seq for seq in burst_set & unacked
                                   if seq < horizon}
                        if missing:
                            for seq in sorted(missing):
                                self._send_data(seq, sent)
                    if not (burst_set & unacked):
                        break   # burst fully delivered: next round
                    continue    # partial/duplicate ack: keep waiting
                if keepalive is not None and keepalive.triggered \
                        and not deadline.triggered:
                    probe = min(unacked) if unacked else self.total - 1
                    self._send_data(probe, sent)
                    keepalive = self.sim.timeout(KEEPALIVE)
                    continue
                break           # round timed out
            if progressed:
                retries = 0
                backoff = 1.0
                last_progress = self.sim.now
            else:
                retries += 1
                backoff = min(backoff * 2.0, 8.0)
                silent = self.sim.now - last_progress
                if retries > MAX_RETRIES or silent > DEAD_INTERVAL:
                    raise TransferAborted(
                        "sftp send %r to %s stalled" %
                        (self.transfer_id, self.peer))


class SftpReceiver:
    """Collects a transfer's data packets and acknowledges them.

    The endpoint routes arriving :class:`SftpData` packets here via
    :meth:`on_data`; ``done`` is an event that fires with the received
    byte count once the transfer completes, or fails with
    :class:`TransferAborted` if the sender goes silent.
    """

    #: Seconds of silence after which an in-progress receive is abandoned.
    IDLE_LIMIT = 120.0

    def __init__(self, sim, endpoint, peer, transfer_id):
        self.sim = sim
        self.endpoint = endpoint
        self.peer = peer
        self.transfer_id = transfer_id
        self.received = set()
        self.total = None
        self.bytes_received = 0
        self.done = sim.event()
        self._aborted = False
        self._new_since_ack = 0
        self._last_data_at = sim.now
        self._last_ts = None
        self._gap_ewma = 0.05
        self._watchdog = sim.process(self._watch(), name="sftp-recv-watchdog",
                                     owner=endpoint.node)
        self._flusher = sim.process(self._flush_loop(),
                                    name="sftp-recv-flush",
                                    owner=endpoint.node)

    @property
    def complete(self):
        return self.total is not None and len(self.received) >= self.total

    def on_data(self, packet):
        """Handle one arriving data packet (called by the endpoint)."""
        if self._aborted:
            # The owning call already gave up on this transfer.  Going
            # silent (rather than acking data nobody will consume) is
            # what lets the sender's own failure detection fire.
            return
        gap = self.sim.now - self._last_data_at
        if 0 < gap < 60.0:
            self._gap_ewma += 0.3 * (gap - self._gap_ewma)
        self._last_data_at = self.sim.now
        self._last_ts = (packet.ts, self.sim.now)
        self.total = packet.total
        duplicate = packet.seq in self.received
        if not duplicate:
            self.received.add(packet.seq)
            self.bytes_received += packet.data_size
            self._new_since_ack += 1
        if self.complete:
            self._ack(complete=True)
            if not self.done.triggered:
                self.done.succeed(self.bytes_received)
            return
        # Ack on: a full window of new data, the transfer's last packet
        # (burst boundary), or a duplicate (the sender is probing).
        if (self._new_since_ack >= ACK_EVERY or duplicate
                or packet.seq == packet.total - 1):
            self._ack()

    def _ack(self, complete=False):
        ts_echo = None
        if self._last_ts is not None:
            ts, heard_at = self._last_ts
            ts_echo = (ts, self.sim.now - heard_at)
        self._new_since_ack = 0
        self.endpoint._send(self.peer, SftpAck(
            transfer_id=self.transfer_id,
            received=frozenset(self.received),
            complete=complete, ts=self.sim.now, ts_echo=ts_echo))

    def _flush_loop(self):
        """Ack a stalled transfer from the receiving side.

        Two cases: a lost packet inside a burst leaves the receiver
        below its ack-every count with the sender waiting (flush the
        partial count); or the receiver's own ack was lost *after* it
        absorbed everything sent so far, leaving both sides silent
        (re-ack periodically while incomplete).  Receiver-driven
        recovery turns a lost ack into a few seconds' hiccup instead
        of a full sender timeout.
        """
        while not self.done.triggered:
            delay = max(4.0 * self._gap_ewma, 0.01)
            yield self.sim.sleep(delay)
            if self.done.triggered:
                return
            idle = self.sim.now - self._last_data_at
            if self._new_since_ack and idle >= delay:
                self._ack()
            elif (not self.complete and self.total is not None
                  and idle >= max(10.0 * self._gap_ewma, 2.0)):
                self._ack()

    def _watch(self):
        """Abort the receive if the sender goes silent; re-ack stragglers."""
        while not self.done.triggered:
            yield self.sim.sleep(self.IDLE_LIMIT / 4.0)
            if self.done.triggered:
                return
            idle = self.sim.now - self._last_data_at
            if idle >= self.IDLE_LIMIT:
                self._aborted = True
                self.done.fail(TransferAborted(
                    "sftp receive %r from %s stalled" %
                    (self.transfer_id, self.peer)))
                # Pre-defuse: an abandoned fetch may have no waiter left.
                self.done.defuse()
                return
