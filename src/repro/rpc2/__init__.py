"""RPC2 and SFTP: Coda's transport protocols, plus a TCP baseline.

This package reimplements the transport behaviour the paper describes
in section 4.1:

* RPC2 remote procedure calls with retransmission and BUSY quenching;
* SFTP, the windowed streaming bulk-transfer protocol that carries
  file contents as a side effect of Fetch/Store RPCs;
* adaptive retransmission driven by round-trip-time estimation using
  timestamp echoing (Jacobson), working from 1.2 Kb/s to 10 Mb/s;
* shared keepalive state between RPC2, SFTP, and the client cache
  manager, replacing the duplicated keepalive traffic of the original
  layering;
* a simplified TCP (slow start, AIMD, cumulative acks, fast
  retransmit) used as the Figure 1 comparison baseline.
"""

from repro.rpc2.endpoint import Rpc2Endpoint, RemoteError
from repro.rpc2.errors import ConnectionDead, TransferAborted
from repro.rpc2.keepalive import LivenessRegistry
from repro.rpc2.rtt import BandwidthEstimator, NetworkEstimator, RttEstimator
from repro.rpc2.tcp import tcp_transfer

__all__ = [
    "BandwidthEstimator",
    "ConnectionDead",
    "LivenessRegistry",
    "NetworkEstimator",
    "RemoteError",
    "Rpc2Endpoint",
    "RttEstimator",
    "TransferAborted",
    "tcp_transfer",
]
