"""The RPC2 endpoint: one socket, one host, both client and server roles.

An endpoint owns a datagram socket and two pacing loops (send and
receive) that charge the host's CPU costs for every packet — on 1995
hardware this, not the Ethernet, is the fast-network bottleneck.
Incoming packets are dispatched to: pending client calls (replies,
busies, go-aheads), SFTP transfers (data and acks), the server
dispatcher (requests), or the keepalive responder (pings).

Everything that arrives also refreshes the shared
:class:`~repro.rpc2.keepalive.LivenessRegistry` — the paper's fix for
the duplicated keepalive traffic of the original layering.
"""

from itertools import count

from repro.rpc2.errors import ConnectionDead, TransferAborted
from repro.rpc2.keepalive import LivenessRegistry
from repro.rpc2.packets import (
    Busy,
    Go,
    Ping,
    Pong,
    Reply,
    Request,
    SftpAck,
    SftpData,
    SMALL_ARGS,
)
from repro.rpc2.rtt import NetworkEstimator
from repro.rpc2.sftp import SftpReceiver, SftpSender
from repro.sim.resources import Lock, Store

#: Client retransmission policy.
MAX_CALL_RETRIES = 7
#: Patience granted after a BUSY before probing again.
BUSY_PATIENCE = 15.0


class RemoteError(Exception):
    """The remote handler reported an application-level error."""


class CallResult:
    """Outcome of an RPC: the handler's result plus any fetched bytes."""

    def __init__(self, result, bulk_bytes=0):
        self.result = result
        self.bulk_bytes = bulk_bytes


class _CallContext:
    """What a server-side handler can see about the call it is serving."""

    def __init__(self, endpoint, peer, send_size):
        self.endpoint = endpoint
        self.peer = peer
        self.send_size = send_size       # bytes the client is uploading
        self.received_bytes = 0          # filled once the upload completes
        self.sim = endpoint.sim


class Rpc2Endpoint:
    """An RPC2/SFTP protocol engine bound to ``(node, port)``."""

    def __init__(self, sim, network, node, port, host,
                 default_bps=9600.0, rng=None, cpu=None, first_conn_id=1):
        from repro.net.cpu import HostCpu
        self.sim = sim
        self.network = network
        self.node = node
        self.port = port
        self.host = host
        self.cpu = cpu or HostCpu(sim, host)
        self.default_bps = default_bps
        self.socket = network.socket(node, port)
        self.liveness = LivenessRegistry(sim)
        self._estimators = {}
        self._handlers = {}
        # Connection ids start at ``first_conn_id`` so an endpoint
        # rebuilt after a crash never reuses ids from its previous
        # incarnation — a peer's at-most-once cache would swallow the
        # new connection's calls as duplicates otherwise.
        self._next_conn_id = first_conn_id
        self._calls = {}            # (peer, conn, seq) -> call state
        self._server_conns = {}     # (peer, conn) -> per-connection state
        self._sftp_senders = {}     # transfer_id -> SftpSender
        self._sftp_receivers = {}   # transfer_id -> SftpReceiver
        self._outbox = Store(sim)
        self._ping_waiters = {}     # seq -> event
        self._ping_seq = count(1)
        self.packets_out = 0
        self.bytes_out = 0
        sim.process(self._send_loop(), name="%s-send" % node, owner=node)
        sim.process(self._recv_loop(), name="%s-recv" % node, owner=node)

    def shutdown(self):
        """Tear the endpoint down as a crash would: the socket closes
        and every process owned by this node dies mid-flight.  In-flight
        transfers, pending calls, and server-side handler state are all
        volatile and vanish with them.  Returns the kill count."""
        if not self.socket.closed:
            self.socket.close()
        return self.sim.kill_owned(self.node)

    # ------------------------------------------------------------------
    # Shared infrastructure

    def estimator(self, peer):
        """The per-peer network quality estimate (shared with Venus)."""
        est = self._estimators.get(peer)
        if est is None:
            est = NetworkEstimator()
            self._estimators[peer] = est
        return est

    def _send(self, peer, packet):
        """Queue ``packet`` for paced transmission to ``peer``."""
        self._outbox.put((peer, packet))

    def _send_loop(self):
        while True:
            peer, packet = yield self._outbox.get()
            size = packet.wire_size
            yield from self.cpu.use(self.host.send_cost(size))
            self.packets_out += 1
            self.bytes_out += size
            obs = self.sim.obs
            if obs.enabled:
                kind = type(packet).__name__
                obs.metrics.counter("rpc.packets_out", node=self.node,
                                    kind=kind).inc()
                obs.metrics.counter("rpc.bytes_out", node=self.node,
                                    kind=kind).inc(size)
            # Endpoints bind the same well-known port on every node.
            self.socket.send(peer, self.port, packet, size)

    def _recv_loop(self):
        while True:
            datagram = yield self.socket.recv()
            yield from self.cpu.use(self.host.recv_cost(datagram.size))
            self.liveness.heard_from(datagram.src)
            src, payload = datagram.src, datagram.payload
            # The wrapper is dead once src/payload are extracted; hand
            # it back to the pool before dispatch can suspend us.
            self.socket.release(datagram)
            self._dispatch(src, payload)

    def _observe_echo(self, peer, packet):
        echo = getattr(packet, "ts_echo", None)
        if echo is not None:
            ts, hold = echo
            self.estimator(peer).observe_rtt(self.sim.now - ts - hold)

    def _dispatch(self, peer, packet):
        if isinstance(packet, SftpData):
            tid = packet.transfer_id
            receiver = self._sftp_receivers.get(tid)
            if receiver is None and tid[3] == "fetch" and tid[0] == self.node:
                # First data packet of an RPC fetch: create the receiver
                # on demand, but only if the owning call is still live.
                call_key = (peer, tid[1], tid[2])
                if call_key in self._calls:
                    receiver = SftpReceiver(self.sim, self, peer, tid)
                    self._sftp_receivers[tid] = receiver
            if receiver is not None:
                receiver.on_data(packet)
            call = self._calls.get((peer, tid[1], tid[2]))
            if call is not None:
                call["progress"] = self.sim.now
            return
        if isinstance(packet, SftpAck):
            sender = self._sftp_senders.get(packet.transfer_id)
            if sender is not None:
                sender.inbox.put(packet)
            return
        if isinstance(packet, Request):
            self._observe_echo(peer, packet)
            self._on_request(peer, packet)
            return
        if isinstance(packet, (Reply, Busy, Go)):
            self._observe_echo(peer, packet)
            call = self._calls.get((peer, packet.conn, packet.seq))
            if call is not None:
                call["inbox"].put(packet)
            return
        if isinstance(packet, Ping):
            # The pad travels one way only: a padded ping measures the
            # forward path without paying the cost twice.
            self._send(peer, Pong(conn=packet.conn, seq=packet.seq,
                                  ts=self.sim.now,
                                  ts_echo=(packet.ts, 0.0)))
            return
        if isinstance(packet, Pong):
            self._observe_echo(peer, packet)
            waiter = self._ping_waiters.pop(packet.seq, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(packet)
            return

    # ------------------------------------------------------------------
    # Client role

    def connect(self, peer):
        """Open a logical connection to ``peer``'s endpoint."""
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        return Rpc2Connection(self, peer, conn_id)

    def ping(self, peer, pad=0, timeout=None):
        """Process: round-trip a ping; returns RTT or raises ConnectionDead."""
        return self.sim.process(self._ping(peer, pad, timeout),
                                name="ping-%s" % peer, owner=self.node)

    def _ping(self, peer, pad, timeout):
        estimator = self.estimator(peer)
        if timeout is None:
            if pad:
                # A padded ping is a bandwidth probe: it must not time
                # out just because the line is slow.  Budget for the
                # slowest supported link (1.2 Kb/s SLIP, 10 bits/byte);
                # plain pings already provide fast dead-peer detection.
                timeout = pad * 10.0 / 1200.0 * 1.5 \
                    + estimator.rtt.rto + 1.0
            else:
                timeout = max(estimator.rtt.rto,
                              estimator.expected_transfer_time(
                                  pad, default_bps=self.default_bps)
                              * 2 + 1.0)
        seq = next(self._ping_seq)
        waiter = self.sim.event()
        self._ping_waiters[seq] = waiter
        started = self.sim.now
        self._send(peer, Ping(conn=0, seq=seq, ts=started, pad=pad))
        expiry = self.sim.timeout(timeout)
        yield self.sim.any_of([waiter, expiry])
        if not waiter.triggered:
            self._ping_waiters.pop(seq, None)
            raise ConnectionDead("ping to %s timed out" % peer)
        rtt = self.sim.now - started
        if pad:
            estimator.observe_transfer(pad, rtt)
        return rtt

    # ------------------------------------------------------------------
    # Server role

    def register(self, procedure, handler):
        """Expose ``handler(ctx, args)`` as RPC ``procedure``.

        The handler may be a plain function or a generator (so it can
        yield simulation events, e.g. disk delays).  It returns either
        ``result`` or ``(result, reply_bulk_size)`` — a positive bulk
        size triggers an SFTP transfer of that many bytes back to the
        caller before the reply.
        """
        self._handlers[procedure] = handler

    def _on_request(self, peer, request):
        conn_key = (peer, request.conn)
        state = self._server_conns.get(conn_key)
        if state is None:
            state = {"done_seq": 0, "reply": None, "active": None}
            self._server_conns[conn_key] = state
        if request.seq <= state["done_seq"]:
            # Duplicate of a completed call: resend the cached reply.
            if state["reply"] is not None and request.seq == state["done_seq"]:
                self._send(peer, state["reply"])
            return
        if state["active"] == request.seq:
            # Retransmission of the call in progress.
            if request.send_size > 0 and not state.get("upload_started"):
                self._send(peer, Go(conn=request.conn, seq=request.seq,
                                    ts=self.sim.now))
            else:
                self._send(peer, Busy(conn=request.conn, seq=request.seq,
                                      ts=self.sim.now))
            return
        state["active"] = request.seq
        state["upload_started"] = False
        self.sim.process(self._serve(peer, request, state),
                         name="serve-%s-%s" % (request.proc, request.seq),
                         owner=self.node)

    def _serve(self, peer, request, state):
        ctx = _CallContext(self, peer, request.send_size)
        error = None
        result = None
        bulk_size = 0
        try:
            if request.send_size > 0:
                # Invite the upload and wait for it to land.
                transfer_id = (peer, request.conn, request.seq, "store")
                receiver = SftpReceiver(self.sim, self, peer, transfer_id)
                self._sftp_receivers[transfer_id] = receiver
                self._send(peer, Go(conn=request.conn, seq=request.seq,
                                    ts=self.sim.now))
                state["upload_started"] = True
                try:
                    ctx.received_bytes = yield receiver.done
                finally:
                    self._expire_transfer(transfer_id, receiver=True)
            handler = self._handlers.get(request.proc)
            if handler is None:
                error = "no such procedure: %s" % request.proc
            else:
                outcome = handler(ctx, request.args)
                if hasattr(outcome, "__next__"):
                    outcome = yield self.sim.process(
                        outcome, name="handler-%s" % request.proc,
                        owner=self.node)
                if isinstance(outcome, tuple) and len(outcome) == 2:
                    result, bulk_size = outcome
                else:
                    result = outcome
            if not error and bulk_size:
                transfer_id = (peer, request.conn, request.seq, "fetch")
                sender = SftpSender(self.sim, self, peer, transfer_id,
                                    bulk_size)
                self._sftp_senders[transfer_id] = sender
                try:
                    yield self.sim.process(sender.run(),
                                           name="sftp-send-reply",
                                           owner=self.node)
                finally:
                    self._expire_transfer(transfer_id, receiver=False)
        except TransferAborted:
            # Bulk data never made it; drop the call. The client's own
            # timeout machinery will declare the connection dead.
            state["active"] = None
            return
        reply = Reply(conn=request.conn, seq=request.seq,
                      ts=self.sim.now, result=result, error=error,
                      result_size=getattr(result, "wire_size", SMALL_ARGS)
                      if result is not None else SMALL_ARGS)
        state["done_seq"] = request.seq
        state["reply"] = reply
        state["active"] = None
        self._send(peer, reply)

    def _expire_transfer(self, transfer_id, receiver, grace=300.0):
        """Drop transfer state after a grace period for late duplicates."""
        def expire():
            yield self.sim.sleep(grace)
            if receiver:
                self._sftp_receivers.pop(transfer_id, None)
            else:
                self._sftp_senders.pop(transfer_id, None)
        self.sim.process(expire(), name="sftp-expire", owner=self.node)


class Rpc2Connection:
    """Client-side handle for calls to one peer.

    Calls on one connection are *serialized*, as in real RPC2: a fetch
    issued while a long reintegration RPC is outstanding waits for it.
    This serialization is exactly why trickle reintegration bounds its
    chunk transmission time (section 4.3.5) — an unbounded chunk would
    make a concurrent high-priority call wait arbitrarily long.
    """

    def __init__(self, endpoint, peer, conn_id):
        self.endpoint = endpoint
        self.peer = peer
        self.conn_id = conn_id
        self._seq = count(1)
        self._lock = Lock(endpoint.sim)

    @property
    def sim(self):
        return self.endpoint.sim

    def call(self, procedure, args=None, args_size=SMALL_ARGS,
             send_size=0, max_retries=MAX_CALL_RETRIES):
        """Start the RPC as a process; yield it to get a CallResult.

        Raises :class:`ConnectionDead` if the server stops responding
        and :class:`RemoteError` if the handler reports failure.
        """
        return self.sim.process(
            self._serialized_call(procedure, args, args_size, send_size,
                                  max_retries),
            name="call-%s" % procedure, owner=self.endpoint.node)

    def _serialized_call(self, procedure, args, args_size, send_size,
                         max_retries):
        yield self._lock.acquire()
        try:
            result = yield from self._call(procedure, args, args_size,
                                           send_size, max_retries)
            return result
        finally:
            self._lock.release()

    def _call(self, procedure, args, args_size, send_size, max_retries):
        sim = self.sim
        endpoint = self.endpoint
        seq = next(self._seq)
        key = (self.peer, self.conn_id, seq)
        inbox = Store(sim)
        call_state = {"inbox": inbox, "progress": None}
        endpoint._calls[key] = call_state
        estimator = endpoint.estimator(self.peer)
        request = Request(conn=self.conn_id, seq=seq, proc=procedure,
                          args=args, args_size=args_size,
                          send_size=send_size, ts=sim.now)
        fetch_tid = (endpoint.node, self.conn_id, seq, "fetch")
        store_tid = (endpoint.node, self.conn_id, seq, "store")
        started = sim.now
        try:
            attempts = 0
            patience = (estimator.rtt.rto +
                        estimator.expected_transfer_time(
                            args_size, default_bps=endpoint.default_bps))
            endpoint._send(self.peer, request)
            obs = sim.obs
            if obs.enabled:
                obs.event("rpc_send", node=endpoint.node, peer=self.peer,
                          proc=procedure, seq=seq, conn=self.conn_id,
                          send_size=send_size)
            pending = inbox.get()
            upload_done = False
            while True:
                timeout = sim.timeout(patience)
                yield sim.any_of([pending, timeout])
                if pending.triggered:
                    packet = pending.value
                    pending = inbox.get()
                    attempts = 0
                    if isinstance(packet, Reply):
                        if packet.error is not None:
                            raise RemoteError(packet.error)
                        receiver = endpoint._sftp_receivers.pop(
                            fetch_tid, None)
                        bulk = receiver.bytes_received if receiver else 0
                        obs = sim.obs
                        if obs.enabled:
                            latency = sim.now - started
                            obs.metrics.histogram(
                                "rpc.latency_seconds", node=endpoint.node,
                                proc=procedure).observe(latency)
                            obs.event("rpc_reply", node=endpoint.node,
                                      peer=self.peer, proc=procedure,
                                      seq=seq, latency=latency, bulk=bulk)
                        return CallResult(packet.result, bulk)
                    if isinstance(packet, Busy):
                        # The server is working; poll again after a few
                        # RTTs rather than a long fixed wait, so a lost
                        # Reply costs little.
                        patience = min(BUSY_PATIENCE,
                                       max(1.0, 4 * estimator.rtt.rto))
                        continue
                    if isinstance(packet, Go) and send_size and not upload_done:
                        sender = SftpSender(sim, endpoint, self.peer,
                                            store_tid, send_size)
                        endpoint._sftp_senders[store_tid] = sender
                        try:
                            yield sim.process(sender.run(),
                                              name="sftp-send-store",
                                              owner=endpoint.node)
                        except TransferAborted as aborted:
                            endpoint.liveness.mark_unreachable(self.peer)
                            raise ConnectionDead(str(aborted)) from aborted
                        finally:
                            endpoint._expire_transfer(store_tid,
                                                      receiver=False)
                        upload_done = True
                        patience = min(BUSY_PATIENCE,
                                       max(1.0, 4 * estimator.rtt.rto))
                        continue
                    continue
                # Timed out without hearing anything for this call.
                progress = call_state.get("progress")
                if progress is not None and sim.now - progress < patience:
                    # SFTP data is flowing; the server is alive.
                    continue
                attempts += 1
                if attempts > max_retries:
                    endpoint.liveness.mark_unreachable(self.peer)
                    raise ConnectionDead(
                        "call %s to %s timed out" % (procedure, self.peer))
                request.ts = sim.now
                endpoint._send(self.peer, request)
                obs = sim.obs
                if obs.enabled:
                    obs.metrics.counter("rpc.retransmits",
                                        node=endpoint.node).inc()
                    obs.event("retransmit", node=endpoint.node,
                              peer=self.peer, proc=procedure, seq=seq,
                              attempt=attempts, layer="rpc2")
                patience = min(60.0, estimator.rtt.rto * (2 ** attempts))
        finally:
            endpoint._calls.pop(key, None)
            endpoint._sftp_receivers.pop(fetch_tid, None)
