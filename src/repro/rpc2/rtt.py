"""Round-trip-time and bandwidth estimation.

The paper (section 4.1) modifies RPC2 and SFTP to "monitor network
speed by estimating round trip times using an adaptation of the
timestamp echoing technique proposed by Jacobson", and uses the
estimates to adapt retransmission parameters.  The bandwidth estimate
additionally drives higher-level adaptation: trickle-reintegration
chunk sizing (section 4.3.5) and cache-miss service-time prediction
(section 4.4.1).
"""


class RttEstimator:
    """Jacobson/Karels smoothed RTT with variance-based RTO."""

    def __init__(self, initial_rto=2.0, min_rto=0.3, max_rto=60.0):
        self.srtt = None
        self.rttvar = None
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.samples = 0

    def observe(self, sample):
        """Fold one RTT measurement (seconds) into the estimate."""
        if sample < 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            delta = sample - self.srtt
            self.srtt += delta / 8.0
            self.rttvar += (abs(delta) - self.rttvar) / 4.0
        self.samples += 1

    @property
    def rto(self):
        """Current retransmission timeout, seconds."""
        if self.srtt is None:
            return self.initial_rto
        return min(self.max_rto, max(self.min_rto, self.srtt + 4.0 * self.rttvar))


class BandwidthEstimator:
    """Exponentially weighted estimate of usable bytes/second.

    Samples come from completed bulk transfers and from size-differential
    probes.  A missing estimate reports ``None``; callers fall back to a
    configured initial guess.
    """

    def __init__(self, gain=0.4):
        self.gain = gain
        self._bytes_per_sec = None
        self.samples = 0

    def observe(self, nbytes, seconds):
        """Fold in one transfer observation.

        A sample wildly different from the current estimate (the
        client moved between networks whose speeds differ by orders of
        magnitude) is trusted quickly; ordinary jitter is smoothed.
        """
        if seconds <= 0 or nbytes <= 0:
            return
        sample = nbytes / seconds
        if self._bytes_per_sec is None:
            self._bytes_per_sec = sample
        else:
            gain = self.gain
            if sample > 4 * self._bytes_per_sec \
                    or sample < self._bytes_per_sec / 4:
                gain = 0.8
            self._bytes_per_sec += gain * (sample - self._bytes_per_sec)
        self.samples += 1

    @property
    def bytes_per_sec(self):
        return self._bytes_per_sec

    @property
    def bits_per_sec(self):
        if self._bytes_per_sec is None:
            return None
        return self._bytes_per_sec * 8.0


class NetworkEstimator:
    """Per-peer view of network quality, shared by RPC2, SFTP and Venus.

    This object *is* the paper's "export this information to Venus":
    one estimator instance per (endpoint, peer) pair is updated by every
    packet exchange and read by the cache manager when it sizes
    reintegration chunks or predicts miss service times.
    """

    def __init__(self, initial_rto=2.0):
        self._initial_rto = initial_rto
        self.rtt = RttEstimator(initial_rto=initial_rto)
        self.bandwidth = BandwidthEstimator()

    def reset(self):
        """Forget everything — after a disconnection the client may
        reappear on a network four orders of magnitude slower, and
        stale estimates would poison probe timeouts and classification.
        """
        self.rtt = RttEstimator(initial_rto=self._initial_rto)
        self.bandwidth = BandwidthEstimator()

    def observe_rtt(self, sample):
        self.rtt.observe(sample)

    def observe_transfer(self, nbytes, seconds):
        self.bandwidth.observe(nbytes, seconds)

    def expected_transfer_time(self, nbytes, default_bps=9600.0):
        """Predicted seconds to move ``nbytes``, using current estimates."""
        bps = self.bandwidth.bits_per_sec
        if bps is None:
            bps = default_bps
        latency = self.rtt.srtt or 0.0
        return nbytes * 8.0 / bps + latency
