"""Canned macro-scenarios for ``repro perf``.

Each scenario is a deterministic, benchmark-scale workload: the same
name and seed always run the same simulation, so wall-clock numbers
from different checkouts are comparable and the obs timeline of the
instrumented variants can be pinned by golden digests
(:mod:`repro.analysis.golden`).

Scenario master seeds are derived through the one sanctioned
scenario-seed helper (:mod:`repro.spec.seeds`, kind ``"perf"`` — seed
string ``"perf::<name>::<seed>"``, 32 bits, exactly what this module
derived by hand before the spec DSL) so ``perf`` seeds can never
collide with (or perturb) another subsystem's streams.  The fleet
population tables live in the shipped spec catalogue
(:mod:`repro.spec.catalog`); this module compiles those specs.
"""

from repro.spec.seeds import scenario_seed as _spec_scenario_seed


def scenario_seed(name, seed=0):
    """The per-scenario master seed for ``(name, seed)``.

    Routed through :func:`repro.spec.seeds.scenario_seed` with kind
    ``"perf"`` and the legacy 32-bit width, so every scenario family
    draws from its own reproducible universe and historical seeds stay
    byte-identical.
    """
    return _spec_scenario_seed("perf", name, seed, bits=32)


# ---------------------------------------------------------------------------
# Fleet scenarios (the Figure 9 machinery at three population scales)


def _run_fleet(name, days, seed, observatory):
    from repro.bench import fleet
    from repro.spec.catalog import get
    from repro.spec.compile import fleet_config

    config = fleet_config(get(name), master=scenario_seed(name, seed),
                          days=days)
    desks, laps = fleet.run_fleet_study(config, observatory=observatory)
    reports = desks + laps
    n = len(reports) or 1
    return {
        "clients": len(reports),
        "days": days,
        "validation_attempts": sum(r.attempts for r in reports),
        "mean_success_pct": sum(r.success_pct for r in reports) / n,
        "mean_missing_pct": sum(r.missing_pct for r in reports) / n,
    }


def _fleet_scenario(days):
    def run(name, seed=0, observatory=None):
        return _run_fleet(name, days, seed, observatory)
    return run


# ---------------------------------------------------------------------------
# Sharded fleet scenarios (repro.fleetd): the same Figure 9 machinery
# partitioned into shared-nothing shards and fanned out over a worker
# pool.  These run *uninstrumented* (instrument=False) so their wall
# numbers stay comparable with the bare single-process scenarios;
# equivalence to the single-process schedule is proven separately by
# `repro fleetd --verify`, not re-proven inside every timing run.
# Seeds pass straight to the shard planner, which derives per-shard
# masters via derive_rng("fleetd", scenario, seed, shard).


def _sharded_fleet(fleetd_scenario):
    def run(name, seed=0, observatory=None, workers=1):
        # An observatory cannot cross the process boundary; sharded
        # timing runs are bare by design (see the comment above).
        from repro.fleetd.executor import run_sharded

        report = run_sharded(fleetd_scenario, workers=workers, seed=seed,
                             instrument=False)
        return {
            "clients": report.clients,
            "days": report.days,
            "shards": len(report.shards),
            "workers": workers,
            "dispatched": report.dispatched,
            "sim_seconds": report.sim_seconds,
            "validation_attempts": report.validation_attempts,
            "mean_success_pct": report.mean_success_pct,
            "mean_missing_pct": report.mean_missing_pct,
        }
    return run


#: Scenario names executed through repro.fleetd; only these accept a
#: worker count.
SHARDED_SCENARIOS = frozenset({"fleetd-64", "fleet-256", "fleet-1024"})


# ---------------------------------------------------------------------------
# Checkpointed fleet scenarios (repro.ckpt): the sharded fleet run
# through the segmented day driver, streamed vs resident.  Each row is
# measured in a fresh subprocess (see repro.ckpt.bench) so its peak
# RSS reflects one buffering strategy only; the pair demonstrates the
# streamed path's memory envelope sitting below the collect-then-write
# baseline on an identical-bytes workload.


def _ckpt_fleet(fleet_scenario, stream):
    def run(name, seed=0, observatory=None):
        # The workload runs in a child process; an observatory cannot
        # cross that boundary, and the child's ru_maxrss is the datum.
        from repro.ckpt.bench import (
            BENCH_DAY_SECONDS,
            BENCH_DAYS,
            measure_subprocess,
        )

        return measure_subprocess(fleet_scenario, BENCH_DAYS,
                                  BENCH_DAY_SECONDS, stream, seed=seed)
    return run


#: Scenario names measured in a fresh subprocess.  Like the sharded
#: set they skip the profiled rerun (a parent-side profile would rank
#: subprocess plumbing, not simulation work), but they do not take a
#: worker count: the memory rows are only comparable in-process.
SUBPROCESS_SCENARIOS = frozenset({"ckpt-fleet-256",
                                  "ckpt-fleet-256-resident"})


# ---------------------------------------------------------------------------
# Weak-connectivity micro-fleet: the obs scenarios back to back


def _trickle_outage(name, seed=0, observatory=None):
    from repro.obs.scenarios import fingerprint, run_scenario

    detail = {}
    for scenario in ("trickle", "outage"):
        testbed = run_scenario(scenario, observatory=observatory)
        digest = fingerprint(testbed)
        detail[scenario] = {
            "end_time": digest["end_time"],
            "link_packets_sent": digest["link_packets_sent"],
            "cml_reintegrated": digest["cml_reintegrated"],
        }
    return detail


# ---------------------------------------------------------------------------
# Transport sweep: the Figure 1 grid at reduced trial count


def _transport_sweep(name, seed=0, observatory=None):
    from repro.bench import transport

    rows = transport.run_transport_comparison(trials=2)
    return {
        "cells": len(rows),
        "throughput_kbps": {
            "%s/%s" % (r.protocol, r.network): round(r.send_kbps, 3)
            for r in rows
        },
    }


# ---------------------------------------------------------------------------
# The golden micro-fleet: small enough for fixtures and CI determinism
# probes, big enough to exercise the multi-client scheduling paths.


def fleet_golden(observatory=None, seed=0):
    """Tiny instrumented fleet for golden digests and divergence probes.

    Importable as ``mod:repro.perf.scenarios:fleet_golden`` by
    ``repro check-determinism``; the golden-timeline fixtures hash the
    obs timeline of exactly this run.
    """
    return _run_fleet("fleet-golden", days=0.5, seed=seed,
                      observatory=observatory)


def _fleet_golden(name, seed=0, observatory=None):
    return fleet_golden(observatory=observatory, seed=seed)


#: name -> callable(name, seed=, observatory=) returning a detail dict.
SCENARIOS = {
    "fleet-8": _fleet_scenario(days=2.0),
    "fleet-32": _fleet_scenario(days=1.0),
    "fleet-64": _fleet_scenario(days=1.0),
    "fleet-golden": _fleet_golden,
    "trickle-outage": _trickle_outage,
    "transport-sweep": _transport_sweep,
    "fleetd-64": _sharded_fleet("fleet-64"),
    "fleet-256": _sharded_fleet("fleet-256"),
    "fleet-1024": _sharded_fleet("fleet-1024"),
    "ckpt-fleet-256": _ckpt_fleet("fleet-256", stream=True),
    "ckpt-fleet-256-resident": _ckpt_fleet("fleet-256", stream=False),
}


def run_macro_scenario(name, seed=0, observatory=None, workers=None):
    """Run macro-scenario ``name``; returns its detail dict.

    ``workers`` sizes the process pool for the sharded scenarios
    (default 1) and is rejected for single-process ones — a silently
    ignored worker count would corrupt cross-row comparisons in
    BENCH_perf.json.  Raises ValueError listing the choices for
    unknown names, like the obs/faults scenario runners.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError("unknown perf scenario %r (have %s)"
                         % (name, ", ".join(sorted(SCENARIOS)))) from None
    if name in SHARDED_SCENARIOS:
        return scenario(name, seed=seed, observatory=observatory,
                        workers=workers or 1)
    if workers:
        raise ValueError(
            "--workers only applies to sharded scenarios (%s), not %r"
            % (", ".join(sorted(SHARDED_SCENARIOS)), name))
    return scenario(name, seed=seed, observatory=observatory)
