"""cProfile capture and hot-frame extraction for ``repro perf``.

A profiled run answers *where the time goes*; the unprofiled timed run
in :mod:`repro.perf.runner` answers *how much time there is*.  Keeping
them separate means profiler overhead (roughly 2x on this workload)
never contaminates the headline events/sec numbers.
"""

import cProfile
import os
import pstats
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class HotFrame:
    """One hot code location from a profiled run."""

    file: str           # repo-relative where possible
    line: int
    function: str
    calls: int
    tottime: float      # seconds inside the frame itself
    cumtime: float      # seconds including callees

    def to_dict(self):
        return asdict(self)

    def format(self):
        return "%8.3fs self %8.3fs cum %10d calls  %s:%d %s" % (
            self.tottime, self.cumtime, self.calls,
            self.file, self.line, self.function)


def _trim_path(path):
    """Shorten an absolute source path to something report-friendly."""
    for marker in ("/src/repro/", "/repro/"):
        index = path.rfind(marker)
        if index >= 0:
            return "repro/" + path[index + len(marker):]
    return os.path.basename(path)


def capture_profile(thunk, top=12):
    """Run ``thunk()`` under cProfile; return (value, [HotFrame...]).

    Frames are ranked by ``tottime`` (time inside the frame itself) —
    the ranking that names optimization targets rather than the call
    roots above them.  Built-in frames keep their ``~`` file with the
    builtin name as the function.
    """
    profile = cProfile.Profile()
    value = profile.runcall(thunk)
    stats = pstats.Stats(profile)
    frames = []
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():
        frames.append(HotFrame(
            file=_trim_path(path) if path != "~" else "~builtin",
            line=line, function=func, calls=ncalls,
            tottime=round(tottime, 6), cumtime=round(cumtime, 6)))
    frames.sort(key=lambda f: (-f.tottime, f.file, f.line, f.function))
    return value, frames[:top]
