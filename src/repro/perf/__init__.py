"""Fleet-scale performance measurement (``repro perf``).

The subsystem has three parts:

* :mod:`repro.perf.scenarios` — canned macro-scenarios (client fleets
  of 8/32/64, trickle-under-outage, a transport sweep) that exercise
  the simulator at benchmark scale with deterministic seeds;
* :mod:`repro.perf.profiler` — cProfile capture and hot-frame
  extraction, so the output names the frames worth optimizing;
* :mod:`repro.perf.runner` — the wall-clock harness that times a
  scenario, computes events/sec and sim-seconds per wall-second, and
  emits machine-readable ``BENCH_perf.json`` for trajectory tracking
  across PRs.

Wall-clock reads live in :mod:`repro.perf.runner` only (DET001
allowlists it): the harness *measures* real time but never feeds it
into simulation behaviour, so perf runs remain schedule-deterministic.
"""

from repro.perf.profiler import HotFrame, capture_profile
from repro.perf.runner import (
    PerfResult,
    format_result,
    results_to_bench,
    run_perf,
    write_bench,
)
from repro.perf.scenarios import SCENARIOS, scenario_seed

__all__ = [
    "HotFrame",
    "PerfResult",
    "SCENARIOS",
    "capture_profile",
    "format_result",
    "results_to_bench",
    "run_perf",
    "scenario_seed",
    "write_bench",
]
