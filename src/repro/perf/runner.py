"""Wall-clock harness for ``repro perf``.

This module is the only place in the tree that reads a wall clock
(``time.perf_counter``); ``repro lint`` allowlists it for DET001.
Real time is *measured* here but never fed back into simulation
behaviour, so a perf run is schedule-identical to an unmeasured one.

Each scenario is run twice by default: once bare for honest timing
(events/sec, sim-seconds per wall-second) and once under cProfile for
the hot-frame ranking.  Profiler overhead roughly doubles this
workload's runtime, so mixing the two would corrupt the headline
numbers that CHANGES.md tracks across PRs.

The cyclic garbage collector is paused for the duration of the timed
run.  The simulation graph is reference-counted garbage only (a
fleet-64 run peaks under 50 MB of RSS with the collector off), so
generational scans contribute ~10% of wall time while never freeing
anything — pure measurement noise.  The pause is scoped to the timed
thunk and always undone, and numbers recorded in CHANGES.md are only
comparable with ones measured through this same harness.
"""

import gc
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field

from repro.perf.profiler import capture_profile
from repro.perf.scenarios import (
    SCENARIOS,
    SHARDED_SCENARIOS,
    SUBPROCESS_SCENARIOS,
    run_macro_scenario,
)
from repro.sim import kernel
from repro.sim.pool import default_pooling, use_pooling
from repro.sim.queue import default_kind, use_kind

BENCH_SCHEMA = "repro.perf/5"


def peak_rss_kb():
    """This process's lifetime peak RSS in kilobytes (children included).

    ``ru_maxrss`` is a high-water mark for the whole process lifetime,
    so per-row values from one interpreter share a floor; rows that
    need an isolated envelope (the ``ckpt-*`` scenarios) measure in a
    fresh subprocess and carry their own ``max_rss_kb`` in the detail
    dict, which :func:`run_perf` prefers over this reading.
    """
    import resource

    return max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
               resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)


class KernelTally:
    """Collects every :class:`Simulator` created inside a ``with`` block.

    Scenarios like the transport sweep build one simulator per trial;
    patching ``Simulator.__init__`` for the duration of the run is the
    least invasive way to aggregate ``dispatched``/``now`` across all
    of them without changing any scenario's return type.
    """

    def __init__(self):
        self.sims = []
        self._original = None

    def __enter__(self):
        self._original = kernel.Simulator.__init__
        sims, original = self.sims, self._original

        def tracking_init(sim, *args, **kwargs):
            original(sim, *args, **kwargs)
            sims.append(sim)

        kernel.Simulator.__init__ = tracking_init
        return self

    def __exit__(self, *exc_info):
        kernel.Simulator.__init__ = self._original
        return False

    @property
    def events(self):
        return sum(sim.dispatched for sim in self.sims)

    @property
    def sim_seconds(self):
        return sum(sim.now for sim in self.sims)


@dataclass
class PerfResult:
    """One scenario's measurements, ready for ``BENCH_perf.json``."""

    scenario: str
    seed: int
    wall_seconds: float
    events: int
    sim_seconds: float
    events_per_sec: float
    sim_seconds_per_wall_second: float
    simulators: int
    queue: str = "heap"     # scheduler kind (repro.sim.queue)
    pooling: str = "on"     # object-pool mode (repro.sim.pool)
    workers: int = 0        # 0 = single-process scenario
    max_rss_kb: int = 0     # peak RSS attributable to this row
    detail: dict = field(default_factory=dict)
    hot_frames: list = field(default_factory=list)   # [HotFrame]

    def to_dict(self):
        row = {
            "scenario": self.scenario,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "sim_seconds": self.sim_seconds,
            "events_per_sec": self.events_per_sec,
            "sim_seconds_per_wall_second": self.sim_seconds_per_wall_second,
            "simulators": self.simulators,
            "queue": self.queue,
            "pooling": self.pooling,
            "workers": self.workers,
            "max_rss_kb": self.max_rss_kb,
            "detail": self.detail,
        }
        if self.hot_frames:
            row["hot_frames"] = [f.to_dict() for f in self.hot_frames]
        return row


def run_perf(name, seed=0, profile=True, top=12, workers=None, queue=None,
             pooling=None):
    """Measure macro-scenario ``name``; returns a :class:`PerfResult`.

    ``queue`` selects the scheduler kind (:mod:`repro.sim.queue`) the
    scenario's simulators are built with; None measures the session
    default.  The choice is installed as the default kind for the
    run's duration — and mirrored into ``REPRO_QUEUE`` — so worker and
    subprocess scenarios build the same scheduler as the parent.
    Schedulers are schedule-identical by contract (the golden digests
    enforce it), so rows differing only in ``queue`` measure the same
    simulation.

    ``pooling`` selects the object-pool mode (:mod:`repro.sim.pool`)
    the same way: installed as the session default and mirrored into
    ``REPRO_POOL`` for the run's duration, so workers and subprocesses
    inherit it.  Pooling is schedule-identical by contract too, so
    rows differing only in ``pooling`` measure the same schedule with
    different allocation machinery.

    ``workers`` sizes the process pool for sharded scenarios (see
    :data:`repro.perf.scenarios.SHARDED_SCENARIOS`).  Their simulators
    live in worker processes where the parent's :class:`KernelTally`
    cannot see them, so event and sim-time totals come from the merged
    shard results instead; the profiled rerun is skipped because a
    parent-side profile would only rank pool bookkeeping and pickle
    frames, not simulation work.  Subprocess-measured scenarios
    (:data:`repro.perf.scenarios.SUBPROCESS_SCENARIOS`) skip the
    profiled rerun for the same reason and report the child's own
    ``ru_maxrss`` as ``max_rss_kb``; every other row records this
    process's lifetime peak.  Unknown names raise ValueError with
    the available listing (from
    :func:`repro.perf.scenarios.run_macro_scenario`).
    """
    sharded = name in SHARDED_SCENARIOS
    kind = queue or default_kind()
    pool_mode = pooling or default_pooling()
    gc_was_enabled = gc.isenabled()
    with use_kind(kind), use_pooling(pool_mode):
        with KernelTally() as tally:
            gc.disable()
            try:
                start = time.perf_counter()
                detail = run_macro_scenario(name, seed=seed,
                                            workers=workers)
                wall = time.perf_counter() - start
            finally:
                if gc_was_enabled:
                    gc.enable()
                gc.collect()
        if tally.sims:
            events = tally.events
            sim_seconds = tally.sim_seconds
            simulators = len(tally.sims)
        else:
            events = detail.get("dispatched", 0)
            sim_seconds = detail.get("sim_seconds", 0.0)
            simulators = detail.get("shards", 0)
        frames = []
        if profile and not sharded and name not in SUBPROCESS_SCENARIOS:
            _, frames = capture_profile(
                lambda: run_macro_scenario(name, seed=seed), top=top)
    rss = detail.get("max_rss_kb") or peak_rss_kb()
    return PerfResult(
        scenario=name,
        seed=seed,
        queue=kind,
        pooling=pool_mode,
        wall_seconds=round(wall, 6),
        events=events,
        sim_seconds=round(sim_seconds, 6),
        events_per_sec=round(events / wall, 3) if wall > 0 else 0.0,
        sim_seconds_per_wall_second=(
            round(sim_seconds / wall, 3) if wall > 0 else 0.0),
        simulators=simulators,
        workers=(workers or 1) if sharded else 0,
        max_rss_kb=rss,
        detail=detail,
        hot_frames=frames)


def results_to_bench(results):
    """Wrap PerfResults in the machine-readable BENCH_perf envelope.

    ``cpus`` records the box's core count because sharded rows are
    meaningless without it: a 4-worker run on one core measures pool
    overhead, not parallel speedup.
    """
    return {
        "schema": BENCH_SCHEMA,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "max_rss_kb": peak_rss_kb(),
        "scenarios": sorted(SCENARIOS),
        "results": [r.to_dict() for r in results],
    }


def write_bench(results, path="BENCH_perf.json"):
    """Write ``BENCH_perf.json``; returns the path written."""
    with open(path, "w") as fh:
        json.dump(results_to_bench(results), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_result(result):
    """Human-readable report for one :class:`PerfResult`."""
    lines = [
        "scenario %s (seed %d, %s queue, pooling %s%s)"
        % (result.scenario, result.seed, result.queue, result.pooling,
           ", %d worker(s)" % result.workers if result.workers else ""),
        "  wall           %10.3f s" % result.wall_seconds,
        "  events         %10d   (%s/sec)"
        % (result.events, _si(result.events_per_sec)),
        "  sim time       %10.1f s  (%.1fx real time)"
        % (result.sim_seconds, result.sim_seconds_per_wall_second),
        "  simulators     %10d" % result.simulators,
        "  peak rss       %10.1f MB" % (result.max_rss_kb / 1024.0),
    ]
    for key, value in sorted(result.detail.items()):
        lines.append("  %-14s %10s" % (key, _compact(value)))
    if result.hot_frames:
        lines.append("  hot frames (by self time, profiled rerun):")
        for frame in result.hot_frames:
            lines.append("    " + frame.format())
    return "\n".join(lines)


def _si(value):
    if value >= 1e6:
        return "%.2fM" % (value / 1e6)
    if value >= 1e3:
        return "%.1fk" % (value / 1e3)
    return "%.0f" % value


def _compact(value):
    if isinstance(value, float):
        return "%.2f" % value
    if isinstance(value, dict):
        return "{%d keys}" % len(value)
    return str(value)
