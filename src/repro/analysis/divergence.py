"""Schedule-divergence detection: a race detector for hidden nondeterminism.

The linter proves the *source* honors the contract; this module probes
the *runtime*.  A scenario is executed several times in child
interpreters, each under a different perturbation that a correct run
must be invisible to:

* ``PYTHONHASHSEED`` — str/bytes hashing, and therefore ``set`` (and
  legacy dict) iteration order, changes between children.  Code that
  schedules out of a set survives one run but disagrees across runs.
* **global-random reseeding** — the child reseeds the process-global
  ``random`` generator before the scenario; code drawing from it
  (instead of ``sim.rand``) produces different values per child.
* **decoy-stream perturbation** — every :class:`RandomStreams` built
  in the child immediately materializes a ``analysis.decoy`` stream
  and burns a child-specific number of draws from it.  Named streams
  are independent by construction, so a correct run is unaffected;
  code that shares streams or depends on the stream table's contents
  diverges.

The obs event timeline is the witness: two perturbed runs of a
deterministic scenario must produce byte-identical timelines.  On
disagreement the report pinpoints the first divergent event with
surrounding context from both runs — the simulation analogue of a
race detector naming the first conflicting access.
"""

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field

#: (hash seed, decoy draws) for the default pair of probe runs.  The
#: hash seeds are fixed so the probe itself is reproducible.
DEFAULT_PERTURBATIONS = ((1, 0), (4242, 7))

_GLOBAL_RESEED = 0x5EED


# ---------------------------------------------------------------------------
# Scenario resolution


def resolve_scenario(spec):
    """``kind:name`` -> a callable taking ``observatory=``.

    Kinds: ``obs:<name>`` (repro.obs.scenarios), ``faults:<name>``
    (repro.faults.scenarios), and ``mod:<module>:<function>`` for
    arbitrary importable scenarios (used by the self-tests).
    """
    kind, _, rest = spec.partition(":")
    if kind == "obs" and rest:
        from repro.obs.scenarios import run_scenario
        return lambda observatory: run_scenario(rest,
                                                observatory=observatory)
    if kind == "faults" and rest:
        from repro.faults.scenarios import run_fault_scenario
        return lambda observatory: run_fault_scenario(
            rest, observatory=observatory)
    if kind == "mod" and rest:
        module_name, _, func_name = rest.rpartition(":")
        if module_name and func_name:
            import importlib
            try:
                module = importlib.import_module(module_name)
                func = getattr(module, func_name)
            except (ImportError, AttributeError) as exc:
                raise ValueError(
                    "cannot load scenario %r: %s" % (spec, exc)) from exc
            return lambda observatory: func(observatory=observatory)
    raise ValueError(
        "scenario spec %r is not obs:<name>, faults:<name>, or "
        "mod:<module>:<function>" % spec)


def capture_timeline(spec):
    """Run ``spec`` with a fresh Observatory; returns event dicts."""
    from repro.obs import Observatory
    observatory = Observatory()
    resolve_scenario(spec)(observatory)
    return [dict(event.to_row()) for event in observatory.trace.events]


def _canonical(event):
    """One event as a canonical comparable line."""
    return json.dumps(event, sort_keys=True, default=repr)


# ---------------------------------------------------------------------------
# Child-side perturbations


def _install_decoy_stream(draws):
    """Make every RandomStreams burn ``draws`` decoy values at birth."""
    from repro.sim.rand import RandomStreams
    original_init = RandomStreams.__init__

    def perturbed_init(self, seed=0):
        original_init(self, seed)
        decoy = self.stream("analysis.decoy")
        for _ in range(draws):
            decoy.random()

    RandomStreams.__init__ = perturbed_init


def _child_main(argv):
    import argparse
    import random
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", required=True)
    parser.add_argument("--decoy", type=int, default=0)
    args = parser.parse_args(argv)
    # repro: allow[DET002] this IS the perturbation: reseeding the process
    # global generator is how the detector exposes code that draws from it.
    random.seed(_GLOBAL_RESEED + args.decoy)
    if args.decoy:
        _install_decoy_stream(args.decoy)
    for event in capture_timeline(args.scenario):
        sys.stdout.write(_canonical(event) + "\n")
    return 0


def _run_child(spec, hash_seed, decoy):
    """One perturbed run in a child interpreter; returns event lines."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    command = [sys.executable, "-m", "repro.analysis.divergence",
               "--child", "--scenario", spec, "--decoy", str(decoy)]
    proc = subprocess.run(command, env=env, capture_output=True,
                          text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            "divergence child failed (hash seed %s, decoy %s):\n%s"
            % (hash_seed, decoy, proc.stderr.strip()))
    return [line for line in proc.stdout.splitlines() if line.strip()]


# ---------------------------------------------------------------------------
# Comparison and reporting


@dataclass
class DivergenceReport:
    """Outcome of comparing perturbed timelines of one scenario."""

    scenario: str
    perturbations: tuple
    identical: bool
    events_a: int
    events_b: int
    first_divergence: int = None
    context_a: list = field(default_factory=list)
    context_b: list = field(default_factory=list)

    def format(self):
        runs = " vs ".join("(hashseed=%d, decoy=%d)" % p
                           for p in self.perturbations)
        if self.identical:
            return ("check-determinism %s: %d events byte-identical "
                    "across %s" % (self.scenario, self.events_a, runs))
        lines = [
            "check-determinism %s: DIVERGENCE at event %d (%s)"
            % (self.scenario, self.first_divergence, runs),
            "  run A: %d events; run B: %d events"
            % (self.events_a, self.events_b),
            "  --- run A context ---",
        ]
        lines += ["  " + line for line in self.context_a]
        lines.append("  --- run B context ---")
        lines += ["  " + line for line in self.context_b]
        return "\n".join(lines)


def compare_timelines(lines_a, lines_b, context=3):
    """First index where two canonical timelines disagree, or None."""
    for index, (line_a, line_b) in enumerate(zip(lines_a, lines_b)):
        if line_a != line_b:
            return index, _context(lines_a, index, context), \
                _context(lines_b, index, context)
    if len(lines_a) != len(lines_b):
        index = min(len(lines_a), len(lines_b))
        return index, _context(lines_a, index, context), \
            _context(lines_b, index, context)
    return None, [], []


def _context(lines, index, context):
    lo = max(0, index - context)
    out = []
    for position in range(lo, min(len(lines), index + context + 1)):
        marker = ">>" if position == index else "  "
        out.append("%s [%d] %s" % (marker, position, lines[position]))
    if index >= len(lines):
        out.append(">> [%d] <end of timeline>" % index)
    return out


def check_determinism(spec, perturbations=DEFAULT_PERTURBATIONS,
                      context=3):
    """Run ``spec`` under each perturbation; compare the timelines.

    Returns a :class:`DivergenceReport`.  Only the first two runs are
    compared pairwise against each other today (more perturbations
    fold into run B's slot sequentially, stopping at the first
    divergence).
    """
    resolve_scenario(spec)   # validate here, not via a child traceback
    baseline_seed, baseline_decoy = perturbations[0]
    lines_a = _run_child(spec, baseline_seed, baseline_decoy)
    for hash_seed, decoy in perturbations[1:]:
        lines_b = _run_child(spec, hash_seed, decoy)
        index, ctx_a, ctx_b = compare_timelines(lines_a, lines_b,
                                                context=context)
        if index is not None:
            return DivergenceReport(
                scenario=spec,
                perturbations=((baseline_seed, baseline_decoy),
                               (hash_seed, decoy)),
                identical=False, events_a=len(lines_a),
                events_b=len(lines_b), first_divergence=index,
                context_a=ctx_a, context_b=ctx_b)
    return DivergenceReport(
        scenario=spec, perturbations=tuple(perturbations),
        identical=True, events_a=len(lines_a), events_b=len(lines_a))


def main(argv=None):
    """``repro check-determinism`` entry point.

    Exit status: 0 timelines identical, 1 divergence, 2 usage error.
    """
    import argparse
    argv = sys.argv[1:] if argv is None else argv
    if "--child" in argv:
        argv = [a for a in argv if a != "--child"]
        return _child_main(argv)
    parser = argparse.ArgumentParser(
        prog="repro check-determinism",
        description="Detect schedule divergence under hash-seed and "
                    "decoy-stream perturbation")
    parser.add_argument("--scenario", default="obs:trickle",
                        help="obs:<name> | faults:<name> | "
                             "mod:<module>:<function> "
                             "(default: obs:trickle)")
    parser.add_argument("--context", type=int, default=3,
                        help="events of context around a divergence")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report")
    args = parser.parse_args(argv)
    try:
        report = check_determinism(args.scenario, context=args.context)
    except (ValueError, RuntimeError) as exc:
        parser.exit(2, "%s\n" % exc)
    if args.json:
        print(json.dumps({
            "scenario": report.scenario,
            "identical": report.identical,
            "events": [report.events_a, report.events_b],
            "first_divergence": report.first_divergence,
            "context_a": report.context_a,
            "context_b": report.context_b,
        }, indent=2))
    else:
        print(report.format())
    return 0 if report.identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
