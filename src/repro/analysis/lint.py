"""The determinism linter: AST rules over the simulation source.

The contract the rules encode (see DESIGN.md, "Determinism contract"):

* **DET001** — no wall-clock reads.  ``time.time``, ``time.monotonic``,
  ``time.perf_counter`` (and their ``_ns`` variants), ``datetime.now``,
  ``datetime.utcnow``, ``datetime.today``, ``date.today``.  Simulation
  time is ``sim.now``; real time must never leak into behaviour.
* **DET002** — no unmanaged randomness.  Module-level ``random.*``
  draws use the process-global generator; bare ``random.Random(...)``
  invents a private sequence invisible to the seed.  Stochastic code
  draws from ``sim.rand`` named streams; pre-simulation seed
  derivation goes through :func:`repro.sim.rand.derive_rng` (whose
  home, ``sim/rand.py``, is the one allowlisted construction site).
* **DET003** — no iteration over hash-ordered collections (``set``
  literals/calls/comprehensions, set algebra, ``dict`` views) that
  feeds the scheduler (``sim.process``/``timeout``/``schedule``).
  Set order follows ``PYTHONHASHSEED``; two identical runs would
  schedule in different orders.  Sort first.
* **DET004** — no ``==``/``!=`` against simulation timestamps
  (``.now``).  Float equality on derived times is a latent
  platform/optimization hazard; compare with tolerances or ordering.
* **SIM001** — only the scheduler layer (``sim/queue.py`` and the
  kernel files) touches the event queue (``heapq``, ``_queue``, the
  raw ``_push`` entry-tuple hook).  Everything else schedules through
  the kernel API, which is what makes the dispatch order auditable.
* **SIM002** — only the kernel and net layers touch the object pool
  (``sim._pool`` and its alloc/recycle primitives).  Pooled objects
  are recycled the moment they dispatch; code above the net layer
  that allocated one could observe it mid-recycle, and code that
  recycled one by hand could free an object the kernel still holds.
  Upper layers use the safe wrappers: ``sim.sleep()``,
  ``Lock(pooled=True)``, ``Socket.release()``.
* **OBS001** — trace-event kinds must be literal members of the closed
  taxonomy in :mod:`repro.obs.events`, so the linter (not just a
  runtime raise deep in a scenario) catches typos.

Suppression: an inline ``repro: allow[RULE] reason`` comment on the
offending line (or a comment-only line directly above) suppresses the
finding; the reason is mandatory — a reasonless pragma is itself an
error (**PRG001**) and cannot be suppressed.  Per-rule file allowlists
(:data:`FILE_ALLOWLISTS`) exempt the sanctioned homes of each
mechanism.
"""

import ast
import json
import os
import re
from dataclasses import dataclass

#: Rule id -> one-line description (shown in ``repro lint --rules``).
RULES = {
    "DET001": "wall-clock read; simulation code must use sim.now",
    "DET002": "unmanaged randomness; draw from sim.rand named streams "
              "(or derive_rng for pre-simulation seeds)",
    "DET003": "iteration over a hash-ordered collection feeds the "
              "scheduler; sort before scheduling",
    "DET004": "==/!= on a simulation timestamp; compare with ordering "
              "or an explicit tolerance",
    "SIM001": "event-queue access outside the scheduler layer "
              "(sim/queue.py + kernel files)",
    "SIM002": "object-pool access outside the kernel/net layer; use "
              "the safe wrappers (sim.sleep, Lock(pooled=True), "
              "Socket.release)",
    "OBS001": "trace-event kind outside the closed taxonomy",
    "PRG001": "malformed suppression pragma (unknown rule or missing "
              "reason)",
}

#: Rule id -> path suffixes (package-relative, ``/``-separated) where
#: the rule is structurally satisfied and findings are suppressed.
FILE_ALLOWLISTS = {
    # The perf harness measures wall-clock time but never feeds it
    # back into simulation behaviour; all its clock reads live here.
    "DET001": ("perf/runner.py",),
    # The one sanctioned random.Random construction site: the named
    # stream family and derive_rng live here.
    "DET002": ("sim/rand.py",),
    # The scheduler layer, file by file:
    #   sim/queue.py  — the queue implementations themselves (heapq is
    #                   their storage primitive);
    #   sim/kernel.py — owns the queue object and the run loop,
    #                   including the per-kind inlined fast loops;
    #   sim/events.py — Event.succeed and Timeout.__init__ push the
    #                   identical (time, priority, seq, event) tuple
    #                   the kernel would, through the scheduler's bound
    #                   _push, inlined as the two hottest trigger
    #                   sites;
    #   sim/process.py — Process bootstrap and interrupt kicks push
    #                   the same tuple shape for the same reason;
    #   sim/pool.py   — pooled allocation primitives push recycled
    #                   events through the same bound _push at the
    #                   same program points as the unpooled code.
    "SIM001": ("sim/queue.py", "sim/kernel.py", "sim/events.py",
               "sim/process.py", "sim/pool.py"),
    # The object-pool layer, file by file:
    #   sim/pool.py      — the pool itself;
    #   sim/kernel.py    — owns the pool, recycles after dispatch,
    #                      wraps pool.sleep/stub behind public API;
    #   sim/process.py   — bootstrap stubs and interrupt kicks;
    #   sim/resources.py — the pooled Lock acquire path;
    #   net/link.py      — delivery lanes and drop-path recycling;
    #   net/network.py   — pooled datagram birth, Socket.release, and
    #                      the no-route / closed-socket release points.
    "SIM002": ("sim/pool.py", "sim/kernel.py", "sim/process.py",
               "sim/resources.py", "net/link.py", "net/network.py"),
}

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")

_WALL_CLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Functions of the random module that draw from the process-global
#: generator when called at module level.
_GLOBAL_RANDOM_FNS = {
    "random", "seed", "randint", "randrange", "uniform", "choice",
    "choices", "sample", "shuffle", "expovariate", "gauss",
    "lognormvariate", "normalvariate", "betavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate",
    "gammavariate", "getrandbits", "randbytes",
}

#: Constructors of the random module that mint private generators.
_RANDOM_CONSTRUCTORS = {"Random", "SystemRandom"}

#: The object pool's alloc/recycle primitives (repro.sim.pool).  A
#: call to any of these outside the SIM002 allowlist is a lifecycle
#: hazard; ``Socket.release`` is deliberately absent — it is the
#: blessed net-layer API for handing a received datagram back.
_POOL_PRIMITIVES = {
    "stub", "kick", "acquire_event", "timeout_at", "delivery_lane",
    "recycle", "recycle_datagram",
}

#: Method names whose call inside a hash-ordered loop body counts as
#: feeding the scheduler.
_SCHEDULING_CALLS = {
    "process", "schedule", "timeout", "_schedule_event", "_call_soon",
}

#: Dict/set methods returning hash-ordered or insertion-ordered views.
_VIEW_METHODS = {
    "keys", "values", "items", "union", "intersection", "difference",
    "symmetric_difference",
}


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self):
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col,
                                    self.rule, self.message)

    def to_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


# ---------------------------------------------------------------------------
# Pragma handling


def _parse_pragmas(source, path):
    """Scan for suppression pragmas.

    Returns ``(covered, errors)`` where ``covered`` maps a line number
    to the frozenset of rule ids suppressed there, and ``errors`` are
    PRG001 findings for malformed pragmas.  A pragma on a code line
    covers that line; a pragma on a comment-only line covers the next
    line carrying code (so multi-line explanations can sit above the
    construct they excuse).
    """
    lines = source.splitlines()
    covered = {}
    errors = []

    def code_line_after(index):
        for later in range(index + 1, len(lines)):
            stripped = lines[later].strip()
            if stripped and not stripped.startswith("#"):
                return later + 1
        return None

    for index, text in enumerate(lines):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        lineno = index + 1
        rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        reason = match.group(2).strip()
        bad = [r for r in rules if r not in RULES or r == "PRG001"]
        if not rules or bad:
            errors.append(Finding(
                "PRG001", path, lineno, text.index("#"),
                "pragma names %s; allow[...] needs known rule ids"
                % (", ".join(repr(b) for b in bad) or "no rules")))
            continue
        if not reason:
            errors.append(Finding(
                "PRG001", path, lineno, text.index("#"),
                "pragma for %s carries no reason; suppressions must "
                "say why" % ", ".join(rules)))
            continue
        target = lineno
        if text.strip().startswith("#"):
            target = code_line_after(index)
            if target is None:
                errors.append(Finding(
                    "PRG001", path, lineno, text.index("#"),
                    "pragma covers no code line"))
                continue
        covered[target] = covered.get(target, frozenset()) | frozenset(rules)
    return covered, errors


# ---------------------------------------------------------------------------
# The AST visitor


def _dotted(node):
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _is_hash_ordered(node):
    """Does evaluating ``node`` yield a hash/insertion-ordered view?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return _is_hash_ordered(node.left) or _is_hash_ordered(node.right)
    return False


def _body_schedules(body):
    """Does any statement in ``body`` call into the scheduler?"""
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in _SCHEDULING_CALLS:
                    return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path, event_kinds):
        self.path = path
        self.event_kinds = event_kinds
        self.findings = []
        # local name -> canonical module, for `import time as t`.
        self._module_aliases = {}
        # local name -> (module, attr), for `from time import time`.
        self._from_imports = {}

    def _flag(self, rule, node, message):
        self.findings.append(Finding(
            rule, self.path, node.lineno, node.col_offset, message))

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("time", "datetime", "random"):
                self._module_aliases[alias.asname or root] = root
            if root == "heapq":
                self._flag("SIM001", node,
                           "import heapq: heap storage belongs to the "
                           "scheduler layer (sim/queue.py)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        module = (node.module or "").split(".")[0]
        if module == "heapq":
            self._flag("SIM001", node,
                       "import from heapq: heap storage belongs to the "
                       "scheduler layer (sim/queue.py)")
        if module in ("time", "datetime", "random"):
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = \
                    (module, alias.name)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def _call_target(self, node):
        """(module_hint, attr) for the call, best effort."""
        func = node.func
        if isinstance(func, ast.Name):
            origin = self._from_imports.get(func.id)
            if origin is not None:
                return origin
            return (None, func.id)
        chain = _dotted(func)
        if chain and len(chain) >= 2:
            head = self._module_aliases.get(chain[0], chain[-2])
            return (head, chain[-1])
        if isinstance(func, ast.Attribute):
            return (None, func.attr)
        return (None, None)

    def visit_Call(self, node):
        module, attr = self._call_target(node)
        if (module, attr) in _WALL_CLOCK_ATTRS:
            self._flag("DET001", node,
                       "%s.%s() reads the wall clock; use sim.now"
                       % (module, attr))
        if module == "random":
            if attr in _RANDOM_CONSTRUCTORS:
                self._flag("DET002", node,
                           "random.%s() mints an unmanaged generator; "
                           "use sim.rand streams or derive_rng" % attr)
            elif attr in _GLOBAL_RANDOM_FNS:
                self._flag("DET002", node,
                           "random.%s() draws from the process-global "
                           "generator; use sim.rand streams" % attr)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "event" and node.args:
            self._check_event_kind(node)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _POOL_PRIMITIVES:
            self._flag("SIM002", node,
                       "pool primitive %s() called outside the "
                       "kernel/net layer" % node.func.attr)
        self.generic_visit(node)

    def _check_event_kind(self, node):
        first = node.args[0]
        candidates = []
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            candidates = [first.value]
        elif isinstance(first, ast.IfExp) \
                and isinstance(first.body, ast.Constant) \
                and isinstance(first.orelse, ast.Constant):
            candidates = [first.body.value, first.orelse.value]
        else:
            self._flag("OBS001", node,
                       "event kind is not a string literal; the closed "
                       "taxonomy cannot be checked statically")
            return
        for kind in candidates:
            if kind not in self.event_kinds:
                self._flag("OBS001", node,
                           "event kind %r is not in the closed taxonomy "
                           "(repro.obs.events.EVENT_KINDS)" % kind)

    # -- hash-order hazards ---------------------------------------------

    def visit_For(self, node):
        if _is_hash_ordered(node.iter) and _body_schedules(node.body):
            self._flag("DET003", node,
                       "loop over a hash-ordered collection schedules "
                       "events; iterate sorted(...) instead")
        self.generic_visit(node)

    # -- timestamp equality ---------------------------------------------

    def visit_Compare(self, node):
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in [node.left] + list(node.comparators):
                if (isinstance(operand, ast.Attribute)
                        and operand.attr == "now") \
                        or (isinstance(operand, ast.Name)
                            and operand.id == "now"):
                    self._flag("DET004", node,
                               "==/!= against a simulation timestamp; "
                               "compare with ordering or a tolerance")
                    break
        self.generic_visit(node)

    # -- heap access -----------------------------------------------------

    def visit_Attribute(self, node):
        if node.attr in ("_queue", "_push"):
            self._flag("SIM001", node,
                       "direct event-queue (%s) access outside the "
                       "scheduler layer" % node.attr)
        if node.attr == "_pool":
            self._flag("SIM002", node,
                       "direct object-pool (_pool) access outside the "
                       "kernel/net layer")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Engine


def _relative_path(path, root):
    if root is None:
        return path
    try:
        rel = os.path.relpath(path, root)
    except ValueError:
        return path
    return rel.replace(os.sep, "/")


def _allowlisted(rule, rel_path, allowlists):
    for suffix in allowlists.get(rule, ()):
        if rel_path.endswith(suffix):
            return True
    return False


def lint_source(source, path, root=None, allowlists=None,
                event_kinds=None):
    """Lint one unit of source text; returns surviving findings.

    ``root`` anchors the package-relative path used for allowlist
    matching; ``allowlists`` and ``event_kinds`` default to the
    repository's contract (:data:`FILE_ALLOWLISTS` and the closed
    taxonomy).
    """
    if allowlists is None:
        allowlists = FILE_ALLOWLISTS
    if event_kinds is None:
        from repro.obs.events import EVENT_KINDS
        event_kinds = EVENT_KINDS
    rel = _relative_path(path, root)
    covered, findings = _parse_pragmas(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(
            "PRG001", path, exc.lineno or 1, exc.offset or 0,
            "file does not parse: %s" % exc.msg))
        return findings
    visitor = _Visitor(path, event_kinds)
    visitor.visit(tree)
    for finding in visitor.findings:
        if _allowlisted(finding.rule, rel, allowlists):
            continue
        if finding.rule in covered.get(finding.line, ()):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths, root=None, allowlists=None):
    """Lint files and directory trees; returns combined findings."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            files.append(path)
    findings = []
    for path in sorted(files):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, path, root=root,
                                    allowlists=allowlists))
    return findings


def package_root():
    """The installed ``repro`` package directory (…/src/repro)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_package():
    """Lint the whole simulation package against the contract."""
    root = package_root()
    return lint_paths([root], root=root)


def format_text(findings):
    if not findings:
        return "determinism lint: clean"
    lines = [finding.format() for finding in findings]
    lines.append("determinism lint: %d finding(s)" % len(findings))
    return "\n".join(lines)


def format_json(findings):
    return json.dumps([finding.to_dict() for finding in findings],
                      indent=2, sort_keys=True)


def main(argv=None):
    """``repro lint`` / ``python -m repro.analysis.lint`` entry point.

    Exit status: 0 clean, 1 findings, 2 usage error.
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism linter for the simulation source")
    parser.add_argument("paths", nargs="*",
                        help="files/directories (default: the repro "
                             "package source)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings")
    parser.add_argument("--rules", action="store_true",
                        help="list the rules and exit")
    args = parser.parse_args(argv)
    if args.rules:
        for rule in sorted(RULES):
            print("%s  %s" % (rule, RULES[rule]))
        return 0
    if args.paths:
        missing = [p for p in args.paths if not os.path.exists(p)]
        if missing:
            parser.exit(2, "no such path: %s\n" % ", ".join(missing))
        findings = lint_paths(args.paths, root=package_root())
    else:
        findings = lint_package()
    print(format_json(findings) if args.json else format_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
