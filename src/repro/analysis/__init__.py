"""Static and dynamic enforcement of the determinism contract.

Every figure and table this repository reproduces rests on one claim:
the simulator is a pure function of ``(seed, scenario)``.  PR 1 and
PR 2 each added schedule-identity regression tests, but the contract
itself — no wall clock, all randomness through named ``sim.rand``
streams, kernel-only heap access — was enforced only by convention.
This package enforces it mechanically, in three layers:

* :mod:`repro.analysis.lint` — an AST rule engine (``repro lint``)
  that rejects wall-clock reads, unmanaged randomness, hash-order
  hazards that feed the scheduler, float-timestamp equality, event-heap
  access outside the kernel, and trace-event kinds outside the closed
  taxonomy.
* :mod:`repro.analysis.divergence` — a schedule-divergence detector
  (``repro check-determinism``) that runs a scenario twice under
  perturbed ``PYTHONHASHSEED`` and decoy random streams and reports the
  first event where the two timelines disagree — a race detector for
  hidden nondeterminism the linter cannot see.
* :mod:`repro.analysis.invariants` — a runtime checker that asserts
  cross-component invariants (CML seqno monotonicity across
  crash/restore, store version monotonicity, link byte conservation,
  callback volatility) from the existing observability hook points.
"""

from repro.analysis.lint import Finding, lint_package, lint_paths, lint_source
from repro.analysis.divergence import DivergenceReport, check_determinism
from repro.analysis.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "DivergenceReport",
    "Finding",
    "InvariantChecker",
    "InvariantViolation",
    "check_determinism",
    "lint_package",
    "lint_paths",
    "lint_source",
]
