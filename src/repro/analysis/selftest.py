"""Toy scenarios that exercise the analysis tooling on itself.

``clean_scenario`` honors the determinism contract and must survive
any perturbation; ``divergent_scenario`` deliberately schedules out of
a ``set`` of strings, the canonical hash-order hazard, so the
divergence detector has a guaranteed positive to find (and the test
suite can assert it pinpoints the first divergent event).  Both run in
child interpreters via ``mod:repro.analysis.selftest:<name>``.
"""

from repro.obs import Observatory
from repro.sim import Simulator

#: Enough names that two hash seeds almost surely order them apart.
_LINKS = tuple("probe-%s" % token for token in
               ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
                "golf", "hotel", "india", "juliet", "kilo", "lima"))


def _emit(sim, name, delay):
    def probe():
        yield sim.sleep(delay)
        obs = sim.obs
        if obs.enabled:
            obs.event("packet_drop", link=name, reason="loss", bytes=1)
    sim.process(probe(), name=name)


def clean_scenario(observatory=None):
    """Schedules from a sorted view: identical under any hash seed."""
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    for delay, name in enumerate(sorted(set(_LINKS))):
        _emit(sim, name, 1.0 + delay)
    sim.run()
    return sim


def divergent_scenario(observatory=None):
    """Schedules straight out of a set: hash-order dependent."""
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    delay = 0
    # repro: allow[DET003] deliberate hash-order hazard: this is the planted
    # nondeterminism the divergence-detector self-test must locate.
    for name in set(_LINKS):
        delay += 1
        _emit(sim, name, float(delay))
    sim.run()
    return sim
