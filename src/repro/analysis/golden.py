"""Golden-schedule regression fixtures: pinned obs-timeline digests.

``repro check-determinism`` proves a scenario's timeline is stable
*across perturbations of one tree*; this module pins the timeline
*across trees*.  Each golden scenario's obs timeline is hashed
(sha256 over the canonical event lines from
:mod:`repro.analysis.divergence`) and compared against a committed
fixture.  Any change to scheduling order, event payloads, or event
counts — including "harmless" performance work — flips the digest and
fails the check.

That makes the fixtures the enforcement mechanism for this repo's
optimization rule: a fast path is only admissible if it is
*schedule-identical*, i.e. every golden digest is unchanged.

Regenerating after an intentional semantic change::

    python -m repro golden --regen

and commit the updated ``tests/golden/timelines.json`` alongside the
change that justified it.
"""

import hashlib
import json
import os
from dataclasses import dataclass

from repro.analysis.divergence import _canonical, capture_timeline

#: The pinned scenarios: every obs/faults canned scenario, the perf
#: micro-fleet, and two fleetd shards, so kernel, transport, cache,
#: multi-client, and sharded-fleet scheduling paths are all covered.
#: The fleetd entries pin what a worker process simulates — a sharded
#: run is only provably equivalent to the single-process schedule if
#: that schedule itself cannot drift silently.
GOLDEN_SCENARIOS = (
    "obs:trickle",
    "obs:outage",
    "faults:smoke",
    "faults:client-crash",
    "faults:server-crash",
    "mod:repro.perf.scenarios:fleet_golden",
    "mod:repro.fleetd.scenarios:golden_shard0",
    "mod:repro.fleetd.scenarios:golden_shard1",
    "mod:repro.spec.golden:commuter_golden",
    "mod:repro.spec.golden:conflict_storm_golden",
    "mod:repro.spec.golden:doc_archive_golden",
)

#: Repo-relative fixture location (the CLI runs from the repo root;
#: tests resolve it from their own path instead).
DEFAULT_FIXTURE = os.path.join("tests", "golden", "timelines.json")

FIXTURE_SCHEMA = "repro.golden/1"


def timeline_digest(spec):
    """``(sha256 hexdigest, event count)`` of ``spec``'s obs timeline."""
    lines = [_canonical(event) for event in capture_timeline(spec)]
    blob = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(blob).hexdigest(), len(lines)


@dataclass
class GoldenMismatch:
    """One scenario whose live digest disagrees with the fixture."""

    scenario: str
    expected: str       # fixture sha256, or None if the spec is new
    actual: str
    expected_events: int
    actual_events: int

    def format(self):
        if self.expected is None:
            return ("%s: not in fixture (live digest %s, %d events) — "
                    "regen required" % (self.scenario, self.actual[:16],
                                        self.actual_events))
        return ("%s: digest %s… != fixture %s… (%d vs %d events)"
                % (self.scenario, self.actual[:16], self.expected[:16],
                   self.actual_events, self.expected_events))


def capture_digests(scenarios=GOLDEN_SCENARIOS):
    """{spec: {"sha256": ..., "events": N}} for each scenario, live."""
    digests = {}
    for spec in scenarios:
        sha, events = timeline_digest(spec)
        digests[spec] = {"sha256": sha, "events": events}
    return digests


def load_fixture(path=DEFAULT_FIXTURE):
    """The committed digest table; raises FileNotFoundError if absent."""
    with open(path) as fh:
        fixture = json.load(fh)
    if fixture.get("schema") != FIXTURE_SCHEMA:
        raise ValueError("unexpected golden fixture schema %r in %s"
                         % (fixture.get("schema"), path))
    return fixture


def write_fixture(path=DEFAULT_FIXTURE, scenarios=GOLDEN_SCENARIOS):
    """Re-capture every golden digest and rewrite the fixture."""
    fixture = {
        "schema": FIXTURE_SCHEMA,
        "regen": "python -m repro golden --regen",
        "digests": capture_digests(scenarios),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(fixture, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return fixture


def check_golden(path=DEFAULT_FIXTURE, scenarios=None):
    """Compare live digests against the fixture; returns mismatches.

    ``scenarios`` defaults to the fixture's own key set so a stale
    checkout never silently skips a pinned scenario.
    """
    fixture = load_fixture(path)
    pinned = fixture["digests"]
    specs = tuple(scenarios) if scenarios else tuple(sorted(pinned))
    mismatches = []
    for spec in specs:
        sha, events = timeline_digest(spec)
        want = pinned.get(spec)
        if want is None:
            mismatches.append(GoldenMismatch(
                scenario=spec, expected=None, actual=sha,
                expected_events=0, actual_events=events))
        elif want["sha256"] != sha or want["events"] != events:
            mismatches.append(GoldenMismatch(
                scenario=spec, expected=want["sha256"], actual=sha,
                expected_events=want["events"], actual_events=events))
    return mismatches


def diff_digests(old, new):
    """Human-readable lines describing ``old`` -> ``new`` digest changes.

    ``old``/``new`` are digest tables ({spec: {"sha256", "events"}});
    returns one line per changed, added, or removed scenario so a
    ``--regen`` states exactly which pins it moved — the reviewer of a
    re-pin should never have to diff the fixture JSON by hand.
    """
    lines = []
    for spec in sorted(set(old) | set(new)):
        was, fresh = old.get(spec), new.get(spec)
        if was == fresh:
            continue
        if was is None:
            lines.append("added   %-44s %s… (%d events)"
                         % (spec, fresh["sha256"][:16], fresh["events"]))
        elif fresh is None:
            lines.append("removed %-44s was %s… (%d events)"
                         % (spec, was["sha256"][:16], was["events"]))
        else:
            lines.append("changed %-44s %s… -> %s… (%d -> %d events)"
                         % (spec, was["sha256"][:16],
                            fresh["sha256"][:16],
                            was["events"], fresh["events"]))
    return lines


def main(argv=None):
    """``repro golden`` entry point.

    ``--check`` (the default) exits 0 when every live digest matches
    the fixture, 1 otherwise; ``--regen`` rewrites the fixture from
    the current tree, prints a digest diff against the previous
    fixture (old -> new, by scenario), and exits 0.
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro golden",
        description="Check or regenerate the golden obs-timeline "
                    "digest fixtures")
    parser.add_argument("--check", action="store_true",
                        help="verify live digests against the fixture "
                             "(the default action)")
    parser.add_argument("--regen", action="store_true",
                        help="rewrite the fixture from the current tree")
    parser.add_argument("--fixture", default=DEFAULT_FIXTURE,
                        help="fixture path (default %s)" % DEFAULT_FIXTURE)
    parser.add_argument("--scenario", action="append", default=None,
                        help="limit to specific scenario specs "
                             "(repeatable; default: all pinned)")
    args = parser.parse_args(argv)
    if args.regen:
        try:
            previous = load_fixture(args.fixture)["digests"]
        except (FileNotFoundError, ValueError):
            previous = {}
        fixture = write_fixture(args.fixture,
                                args.scenario or GOLDEN_SCENARIOS)
        for spec, entry in sorted(fixture["digests"].items()):
            print("pinned %-44s %s… (%d events)"
                  % (spec, entry["sha256"][:16], entry["events"]))
        changes = diff_digests(previous, fixture["digests"])
        if changes:
            print("%d pin(s) moved:" % len(changes))
            for line in changes:
                print("  " + line)
        else:
            print("no pins moved")
        print("wrote %s" % args.fixture)
        return 0
    try:
        mismatches = check_golden(args.fixture, scenarios=args.scenario)
    except FileNotFoundError:
        print("no golden fixture at %s (run: python -m repro golden "
              "--regen)" % args.fixture)
        return 1
    if mismatches:
        print("golden: %d scenario(s) diverged from the fixture:"
              % len(mismatches))
        for mismatch in mismatches:
            print("  " + mismatch.format())
        print("if the schedule change is intentional, regen with: "
              "python -m repro golden --regen")
        return 1
    fixture = load_fixture(args.fixture)
    print("golden: %d scenario timeline(s) match the fixture"
          % len(fixture["digests"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
