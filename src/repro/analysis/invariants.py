"""Runtime invariant checking across component boundaries.

Single-component state is easy to assert locally; the bugs worth a
checker live *between* components: a CML sequence number reused after
a crash, a server vnode whose version moves backwards during replay, a
restored client resurrecting callback promises that died with its
previous incarnation, link byte accounting that quietly leaks.  The
:class:`InvariantChecker` attaches to a testbed through the existing
observability hook points — every recorded trace event doubles as a
check point, and the CML's ``on_change`` hook drives the seqno
invariant — so checking perturbs nothing the obs layer didn't already
touch (observation never schedules events or draws randomness).

Invariants enforced:

* **CML seqnos** are strictly increasing in log order, and a sequence
  number once observed for a node is never re-issued — including
  across crash/restore, where the restored log must carry only
  already-seen seqnos and new appends must continue above the
  pre-crash high water mark.
* **Store version monotonicity**: a server vnode's version never
  decreases, across reintegration replay, connected updates, and
  server crash/restart (the store is persistent).
* **Callback volatility**: callback promises die with the process.  A
  restarted client holds no object or volume callbacks until it
  revalidates; a restarted server's callback registry is empty.
* **Link byte conservation**: per direction,
  ``sent == delivered + lost + dropped_down + dropped + in_flight``.
"""

from dataclasses import dataclass


class InvariantViolation(AssertionError):
    """A cross-component invariant failed during a run."""


@dataclass
class Violation:
    """One recorded violation (collect mode)."""

    invariant: str
    time: float
    message: str

    def format(self):
        return "[%s @%.3f] %s" % (self.invariant, self.time, self.message)


class InvariantChecker:
    """Watches one testbed through its observatory.

    ``strict`` raises :class:`InvariantViolation` at the moment an
    invariant fails (the default: tests want the failing schedule
    point); ``strict=False`` collects into :attr:`violations` so a CLI
    run can report them all.

    Usage::

        observatory = Observatory()
        checker = InvariantChecker()
        run_scenario("trickle", observatory=observatory,
                     checker=checker)   # scenario calls attach()
        checker.check_all()             # final sweep
    """

    def __init__(self, strict=True):
        self.strict = strict
        self.testbed = None
        self.violations = []
        self.checks = 0
        self._seen_seqnos = {}       # node -> set of seqnos ever seen
        self._versions = {}          # fid -> highest version seen
        self._wrapped = None

    # -- wiring ----------------------------------------------------------

    def attach(self, testbed):
        """Hook the testbed's observatory and CML; returns self."""
        observatory = testbed.obs
        if observatory is None or not observatory.enabled:
            raise ValueError(
                "invariant checking needs an installed Observatory "
                "(make_testbed(observatory=...))")
        self.testbed = testbed
        original_event = observatory.event

        def checked_event(kind, /, **fields):
            original_event(kind, **fields)
            self.on_event(kind, fields)

        observatory.event = checked_event
        self._wrapped = (observatory, original_event)
        self._hook_cml(testbed.venus)
        return self

    def detach(self):
        if self._wrapped is not None:
            observatory, original_event = self._wrapped
            observatory.event = original_event
            self._wrapped = None

    def _hook_cml(self, venus):
        previous = venus.cml.on_change

        def chained(log):
            if previous is not None:
                previous(log)
            self.check_cml(venus.node, log)

        venus.cml.on_change = chained
        # Capture the seqnos already present (e.g. a restored log).
        self.check_cml(venus.node, venus.cml)

    # -- event dispatch --------------------------------------------------

    def on_event(self, kind, fields):
        """One check point: the obs layer just recorded ``kind``."""
        self.check_link_conservation()
        if kind in ("reintegration_apply", "reintegration_chunk",
                    "reintegration_validate", "validation_rpc",
                    "node_restart"):
            self.check_store_versions()
        if kind == "node_restart":
            if fields.get("role") == "client":
                # The injector swapped in the restored incarnation
                # before emitting the event; re-hook its fresh CML.
                self._hook_cml(self.testbed.venus)
                self.check_client_callbacks_cleared()
            elif fields.get("role") == "server":
                self.check_server_registry_empty()

    # -- the invariants --------------------------------------------------

    def check_cml(self, node, log):
        """Seqnos strictly increasing; none ever re-issued."""
        self.checks += 1
        seqnos = [record.seqno for record in log]
        for earlier, later in zip(seqnos, seqnos[1:]):
            if later <= earlier:
                self._violation(
                    "cml_seqno_order",
                    "CML of %s not strictly increasing: %d then %d"
                    % (node, earlier, later))
        seen = self._seen_seqnos.setdefault(node, set())
        high_water = max(seen) if seen else 0
        for seqno in seqnos:
            if seqno not in seen and seqno <= high_water:
                self._violation(
                    "cml_seqno_reuse",
                    "CML of %s issued seqno %d at or below the high "
                    "water mark %d (reuse across crash/restore?)"
                    % (node, seqno, high_water))
        seen.update(seqnos)

    def check_store_versions(self):
        """No server vnode's version ever decreases."""
        self.checks += 1
        server = self.testbed.server
        for volume in server.registry.volumes():
            for fid, vnode in volume.vnodes.items():
                before = self._versions.get(fid)
                if before is not None and vnode.version < before:
                    self._violation(
                        "store_version_monotonic",
                        "vnode %s version went backwards: %d -> %d"
                        % (fid, before, vnode.version))
                self._versions[fid] = max(before or 0, vnode.version)

    def check_client_callbacks_cleared(self):
        """A just-restarted client holds no callback promises."""
        self.checks += 1
        venus = self.testbed.venus
        for entry in venus.cache.entries():
            if entry.callback:
                self._violation(
                    "callback_volatility",
                    "restored client %s holds an object callback on %s;"
                    " promises must die with the crashed incarnation"
                    % (venus.node, entry.fid))
        for volid, info in venus.cache.volume_infos().items():
            if info.callback:
                self._violation(
                    "callback_volatility",
                    "restored client %s holds a volume callback on %s"
                    % (venus.node, volid))

    def check_server_registry_empty(self):
        """A just-restarted server has an empty callback registry."""
        self.checks += 1
        promises = self.testbed.server.callbacks.total_promises()
        if promises:
            self._violation(
                "callback_volatility",
                "restarted server still records %d callback promise(s);"
                " the registry is volatile state" % promises)

    def check_link_conservation(self):
        """sent == delivered + lost + dropped_down + in_flight."""
        self.checks += 1
        for direction in (self.testbed.link.forward,
                          self.testbed.link.backward):
            stats = direction.stats
            accounted = (stats.bytes_delivered + stats.bytes_lost
                         + stats.bytes_dropped_down
                         + direction.bytes_in_flight)
            if stats.bytes_sent != accounted:
                self._violation(
                    "link_byte_conservation",
                    "%s: sent %d != delivered %d + lost %d + dropped %d"
                    " + in-flight %d"
                    % (direction.label, stats.bytes_sent,
                       stats.bytes_delivered, stats.bytes_lost,
                       stats.bytes_dropped_down,
                       direction.bytes_in_flight))

    def check_all(self):
        """Final sweep over every stateful invariant; returns self."""
        self.check_link_conservation()
        self.check_store_versions()
        venus = self.testbed.venus
        self.check_cml(venus.node, venus.cml)
        return self

    # -- bookkeeping -----------------------------------------------------

    def _violation(self, invariant, message):
        now = self.testbed.sim.now if self.testbed is not None else 0.0
        violation = Violation(invariant=invariant, time=now,
                              message=message)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(violation.format())

    def summary(self):
        return ("invariants: %d check(s), %d violation(s)"
                % (self.checks, len(self.violations)))
