"""Checkpoint verification: structural integrity + replay equivalence.

Two tiers, both offline-safe (nothing here mutates the store):

* **Structural** — every claim the manifest makes is recomputed from
  the raw files: the streamed full-timeline digest per shard, each
  day's slice digest (the concatenation property makes slice
  boundaries exact), the sha256 of every boundary state file, the
  chained fleet digest, and the bookkeeping (day numbering, record
  counts, schema versions).  A truncated timeline, a tampered state
  file, or an edited manifest all surface here as named failures.
* **Replay** — one sampled ``(shard, day)`` is re-executed in-process
  from its boundary state and must reproduce the recorded timeline
  digest, event count, and next-state sha256 byte-for-byte.  The
  sample is drawn deterministically from the checkpoint identity (via
  :func:`repro.sim.rand.derive_rng`), so two verifiers of the same
  store replay the same slice.

Failures accumulate into a verdict rather than raising on first
contact: a corrupted store should report everything wrong with it.
"""

from dataclasses import dataclass, field

from repro.ckpt.store import CheckpointError, CheckpointStore


@dataclass
class Check:
    """One named verification with its outcome."""

    name: str
    ok: bool
    detail: str = ""

    def format(self):
        mark = "ok  " if self.ok else "FAIL"
        return "%s %s%s" % (mark, self.name,
                            ": " + self.detail if self.detail else "")


@dataclass
class CkptVerdict:
    """Everything verification had to say about one checkpoint."""

    root: str
    checks: list = field(default_factory=list)

    @property
    def ok(self):
        return all(check.ok for check in self.checks)

    @property
    def failures(self):
        return [check for check in self.checks if not check.ok]

    def add(self, name, ok, detail=""):
        self.checks.append(Check(name, bool(ok), detail))
        return ok

    def format(self):
        lines = ["checkpoint %s: %s (%d check(s), %d failure(s))"
                 % (self.root, "OK" if self.ok else "CORRUPT",
                    len(self.checks), len(self.failures))]
        shown = self.failures if self.failures else self.checks
        lines += ["  " + check.format() for check in shown]
        return "\n".join(lines)


def verify_checkpoint(out, replay=True, replay_day=None,
                      replay_shard=None):
    """Verify checkpoint directory ``out``; returns a CkptVerdict.

    ``replay`` re-runs one sampled shard-day in-process (the expensive
    tier); ``replay_day``/``replay_shard`` pin the sample instead of
    drawing it from the checkpoint identity.
    """
    from repro.ckpt.runner import _check_identity, _fleet_digest

    verdict = CkptVerdict(root=out)
    store = CheckpointStore(out)
    try:
        manifest = store.read_manifest()
    except CheckpointError as exc:
        verdict.add("manifest", False, str(exc))
        return verdict
    verdict.add("manifest", True)
    try:
        _check_identity(manifest)
        verdict.add("schema-versions", True)
    except CheckpointError as exc:
        verdict.add("schema-versions", False, str(exc))
    days = manifest["days"]
    for entry in manifest["shards"]:
        try:
            _verify_shard(verdict, store, entry, days)
        except (CheckpointError, OSError, KeyError, ValueError) as exc:
            verdict.add("shard %02d" % entry.get("index", -1), False,
                        "%s: %s" % (type(exc).__name__, exc))
    verdict.add("fleet-digest",
                _fleet_digest(manifest["shards"])
                == manifest["fleet_digest"],
                "chained shard digests vs manifest")
    if replay and verdict.ok:
        _verify_replay(verdict, manifest, store, replay_day,
                       replay_shard)
    return verdict


def _verify_shard(verdict, store, entry, days):
    """Structural checks for one shard's slice of the store."""
    index = entry["index"]
    label = "shard %02d" % index
    files = store.shard(index)
    records = files.read_days()
    ok = (len(records) == days
          and [record["day"] for record in records] == list(range(days)))
    verdict.add(label + " day-records", ok,
                "%d record(s) for %d day(s)" % (len(records), days))
    if not ok:
        return
    verdict.add(label + " manifest-day-digests",
                entry["day_digests"]
                == [record["digest"] for record in records],
                "per-day digests vs day summaries")
    verdict.add(label + " events-total",
                entry["events"]
                == sum(record["events"] for record in records))
    verdict.add(label + " timeline-digest",
                files.timeline_digest() == entry["digest"],
                "streamed full-timeline sha256")
    try:
        slices = files.day_digests(
            [record["events"] for record in records])
        verdict.add(label + " day-slice-digests",
                    slices == [record["digest"] for record in records],
                    "re-sliced timeline vs day summaries")
    except CheckpointError as exc:
        verdict.add(label + " day-slice-digests", False, str(exc))
    metric_days = [record["day"] for record in files.read_metrics()]
    verdict.add(label + " metrics-records",
                metric_days == list(range(days)))
    import os
    if not os.path.exists(files.state_path(0)):
        verdict.add(label + " state-files", False,
                    "missing %s" % files.state_name(0))
        return
    bad = []
    for record in records:
        day = record["day"]
        try:
            digest = files.state_sha256(day + 1)
        except OSError:
            bad.append("missing %s" % record["state_file"])
            continue
        if digest != record["state_sha256"]:
            bad.append("%s sha256 mismatch" % record["state_file"])
    verdict.add(label + " state-files", not bad, "; ".join(bad))


def _verify_replay(verdict, manifest, store, replay_day, replay_shard):
    """Re-execute one sampled shard-day and compare byte-for-byte."""
    import hashlib
    import pickle

    from repro.ckpt.driver import CkptOptions, run_day
    from repro.ckpt.runner import PICKLE_PROTOCOL, _plan
    from repro.fleetd.executor import digest_rows, timeline_rows
    from repro.fleetd.plan import shard_config
    from repro.obs import Observatory
    from repro.sim.rand import derive_rng

    scenario, seed = manifest["scenario"], manifest["seed"]
    days = manifest["days"]
    shards = _plan(scenario, seed, days)
    rng = derive_rng("ckpt-verify", scenario, seed, days)
    index = (rng.randrange(len(shards)) if replay_shard is None
             else replay_shard)
    day = (rng.randrange(days) if replay_day is None else replay_day)
    shard = shards[index]
    files = store.shard(index)
    record = files.read_days()[day]
    options = CkptOptions(**manifest["options"])
    state = pickle.loads(files.read_state_bytes(day))
    observatory = Observatory()
    state, _summary = run_day(shard, shard_config(shard), options,
                              state, observatory)
    rows = timeline_rows(observatory)
    blob = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
    label = "replay s%02d day %d" % (index, day)
    verdict.add(label + " timeline", digest_rows(rows)
                == record["digest"],
                "%d event(s)" % len(rows))
    verdict.add(label + " events", len(rows) == record["events"])
    verdict.add(label + " state",
                hashlib.sha256(blob).hexdigest()
                == record["state_sha256"],
                "next boundary state sha256")
