"""repro.ckpt: resumable fleet simulation.

Whole-fleet checkpoint/restore with streamed results and byte-identical
incremental extension.  A checkpointed run segments a fleet scenario
into day units; each unit is a fresh simulation restored from the
previous boundary's :class:`~repro.ckpt.state.ShardState`, so resident
memory follows the *active* slice of the fleet (one shard-day, with
idle clients swapped out to PR-2 snapshots) instead of the whole run,
and ``repro ckpt extend`` continues a finished checkpoint with output
byte-identical to a from-scratch run of the total duration.

Layers (each its own module):

* :mod:`repro.ckpt.state` — what crosses a day boundary, picklable;
* :mod:`repro.ckpt.driver` — the segmented day driver (plans, swap
  in/out, the one capture/restore path both run and extend share);
* :mod:`repro.ckpt.store` — the versioned on-disk format;
* :mod:`repro.ckpt.runner` — run/extend orchestration and reporting
  through the standard fleetd merge;
* :mod:`repro.ckpt.verify` — structural integrity + sampled replay.
"""

from repro.ckpt.driver import CkptOptions
from repro.ckpt.runner import (
    default_options,
    extend_checkpointed,
    report_from_store,
    run_checkpointed,
)
from repro.ckpt.store import CheckpointError, CheckpointStore
from repro.ckpt.verify import verify_checkpoint

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "CkptOptions",
    "default_options",
    "extend_checkpointed",
    "report_from_store",
    "run_checkpointed",
    "verify_checkpoint",
]
