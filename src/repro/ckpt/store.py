"""The on-disk checkpoint format: one directory, versioned, verifiable.

::

    <root>/
      manifest.json            # identity + per-shard digests (last)
      shards/s00/
        state-d0000.pkl        # parked day-0 world (initial_state)
        state-d0001.pkl ...    # one boundary state per completed day
        timeline.txt           # canonical event lines, appended per day
        metrics.jsonl          # one {"day", "rows"} record per day
        days.jsonl             # one summary record per day (see runner)

Append-only by construction: running day *d* appends to the three
shard files and adds ``state-d<d+1>.pkl``; nothing earlier is ever
rewritten.  The manifest is written last (atomically, via rename) once
every shard has completed, so a crashed run leaves a directory without
a (current) manifest rather than a plausible-looking lie.

Byte-identity across from-scratch and extended runs falls out of the
format: every file is a concatenation of per-day units that are
themselves pure functions of ``(spec, seed, options, day)``, and the
manifest is a pure function of the directory content plus the identity
tuple.

The full-shard timeline digest is **streamed** from ``timeline.txt``
(the file is read in chunks, never loaded whole) and matches
:func:`repro.fleetd.executor.digest_rows` over the concatenated rows —
the same hashing the golden fixtures and fleetd equivalence proofs
use, so checkpointed runs are directly comparable with both.
"""

import hashlib
import json
import os

#: Version of the directory layout + manifest field set.
MANIFEST_SCHEMA = "repro.ckpt/1"


class CheckpointError(Exception):
    """A checkpoint directory that cannot be (safely) used."""


def _sha256_file(path):
    """Streamed sha256 of a file's raw bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ShardStore:
    """One shard's slice of the checkpoint directory."""

    def __init__(self, root):
        self.root = root
        self.timeline_path = os.path.join(root, "timeline.txt")
        self.metrics_path = os.path.join(root, "metrics.jsonl")
        self.days_path = os.path.join(root, "days.jsonl")

    def ensure(self):
        os.makedirs(self.root, exist_ok=True)
        return self

    def state_name(self, day):
        return "state-d%04d.pkl" % day

    def state_path(self, day):
        return os.path.join(self.root, self.state_name(day))

    def write_state(self, day, blob):
        path = self.state_path(day)
        with open(path + ".tmp", "wb") as fh:
            fh.write(blob)
        os.replace(path + ".tmp", path)
        return path

    def read_state_bytes(self, day):
        with open(self.state_path(day), "rb") as fh:
            return fh.read()

    def state_sha256(self, day):
        return _sha256_file(self.state_path(day))

    def append_day(self, lines, metrics_record, day_record):
        """Append one completed day unit to the three shard files.

        ``lines`` are the day's canonical timeline lines;
        ``metrics_record`` is the ``{"day", "rows"}`` payload;
        ``day_record`` the summary row.  Ordering matters for crash
        behaviour: the summary goes last, so a torn append leaves
        ``days.jsonl`` short — which verify flags — instead of a
        summary pointing at missing data.
        """
        with open(self.timeline_path, "a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line)
                fh.write("\n")
        with open(self.metrics_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(metrics_record, sort_keys=True))
            fh.write("\n")
        with open(self.days_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(day_record, sort_keys=True))
            fh.write("\n")

    def read_days(self):
        """All day summary records, in append (= day) order."""
        if not os.path.exists(self.days_path):
            return []
        with open(self.days_path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def read_metrics(self):
        """All per-day metrics records, in day order."""
        if not os.path.exists(self.metrics_path):
            return []
        with open(self.metrics_path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def iter_timeline(self):
        """Canonical timeline lines, streamed (never the whole file)."""
        if not os.path.exists(self.timeline_path):
            return
        with open(self.timeline_path, encoding="utf-8") as fh:
            for line in fh:
                yield line.rstrip("\n")

    def timeline_digest(self):
        """sha256 over the shard's full timeline, streamed from disk.

        Identical to :func:`repro.fleetd.executor.digest_rows` over the
        concatenated rows: the file stores one canonical line plus
        ``\\n`` per row, and digest_rows hashes lines joined by
        ``\\n`` — so we hash the raw bytes while holding back the
        file's final newline.
        """
        digest = hashlib.sha256()
        held = b""
        if os.path.exists(self.timeline_path):
            with open(self.timeline_path, "rb") as fh:
                for chunk in iter(lambda: fh.read(1 << 20), b""):
                    digest.update(held)
                    held = chunk[-1:]
                    digest.update(chunk[:-1])
        if held and held != b"\n":
            digest.update(held)
        return digest.hexdigest()

    def day_digests(self, events_per_day):
        """Recompute each day's digest by slicing the timeline stream.

        ``events_per_day`` gives the line count of every day in order
        (from the summary records); the concatenation property of the
        format makes the slice boundaries exact.
        """
        digests = []
        lines = self.iter_timeline()
        for count in events_per_day:
            chunk = []
            for _ in range(count):
                try:
                    chunk.append(next(lines))
                except StopIteration:
                    raise CheckpointError(
                        "timeline %s is shorter than its day summaries"
                        % self.timeline_path) from None
            blob = "\n".join(chunk).encode("utf-8")
            digests.append(hashlib.sha256(blob).hexdigest())
        leftover = sum(1 for _ in lines)
        if leftover:
            raise CheckpointError(
                "timeline %s has %d line(s) beyond its day summaries"
                % (self.timeline_path, leftover))
        return digests


class CheckpointStore:
    """The whole checkpoint directory: manifest + per-shard stores."""

    def __init__(self, root):
        self.root = root
        self.manifest_path = os.path.join(root, "manifest.json")

    def exists(self):
        return os.path.exists(self.manifest_path)

    def shard(self, index):
        return ShardStore(os.path.join(self.root, "shards",
                                       "s%02d" % index))

    def read_manifest(self):
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise CheckpointError(
                "no checkpoint manifest at %s" % self.manifest_path) \
                from None
        schema = manifest.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise CheckpointError(
                "checkpoint %s has manifest schema %r; this build "
                "reads only %r" % (self.root, schema, MANIFEST_SCHEMA))
        return manifest

    def write_manifest(self, manifest):
        """Atomic write: the manifest appears complete or not at all."""
        os.makedirs(self.root, exist_ok=True)
        blob = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        with open(self.manifest_path + ".tmp", "w",
                  encoding="utf-8") as fh:
            fh.write(blob)
        os.replace(self.manifest_path + ".tmp", self.manifest_path)
        return self.manifest_path
