"""Run, extend, and report checkpointed fleet simulations.

The runner owns the one loop everything goes through::

    state = pickle.loads(state-d<from>.pkl bytes)
    for day in from..to:
        state, summary = run_day(...)          # fresh world per day
        blob = pickle.dumps(state)
        append day unit to the shard store     # (or buffer: resident)
        state = pickle.loads(blob)             # resume from the BYTES

Resuming from the serialized bytes every single day — not from the
live object — is the load-bearing line: a from-scratch run *is* a
sequence of extends, so ``repro ckpt extend`` produces byte-identical
store files by construction rather than by careful matching of two
code paths.

Two buffering modes, identical final bytes:

* **streamed** (default): each day unit is appended as it completes
  and dropped from memory; resident cost is one day of one shard.
* **resident**: every day unit of every shard is held in memory and
  flushed at the end — the traditional collect-then-write shape,
  kept as the memory-envelope baseline ``repro perf`` compares
  against (satellite: peak-RSS accounting in BENCH_perf.json).

:func:`report_from_store` rebuilds a full
:class:`repro.fleetd.merge.FleetReport` from the directory alone —
metrics from ``metrics.jsonl``, Figure-9 client reports from the final
boundary state, digests from the manifest — and feeds them through the
same ``merge_results`` the sharded executor uses, so checkpointed runs
are first-class citizens of the fleet tooling.
"""

import hashlib
import os
import pickle

from repro.ckpt.driver import DAY, CkptOptions, initial_state, run_day
from repro.ckpt.state import SCHEMA_VERSION
from repro.ckpt.store import CheckpointError, CheckpointStore, \
    MANIFEST_SCHEMA
from repro.faults.persistence import SNAPSHOT_SCHEMA_VERSION

#: Pickle protocol pinned for state files: the bytes are part of the
#: checkpoint identity (state sha256s are compared across processes
#: and machines), so the protocol may never float with the interpreter.
PICKLE_PROTOCOL = 4


def default_options(day_seconds=None):
    """The standard options; ``REPRO_FAST`` shrinks the day 8x (the
    same convention the fleetd CI smoke uses for catalogue days)."""
    if day_seconds is None:
        day_seconds = DAY / 8.0 if os.environ.get("REPRO_FAST") else DAY
    return CkptOptions(day_seconds=day_seconds)


def _plan(scenario, seed, days):
    from repro.fleetd.plan import plan_shards
    return plan_shards(scenario, seed=seed, days=float(days))


def run_shard_days(shard, options, shard_root, from_day, to_day,
                   stream=True):
    """Run one shard from ``from_day`` to ``to_day`` (worker task).

    Streamed, every completed day unit is appended to the shard's
    store immediately and dropped from memory, and the shard's totals
    come back.  Resident (``stream=False``), nothing is written here:
    every day unit is returned to the caller, which flushes all shards
    only after the whole fleet has run — the traditional
    collect-then-write shape whose memory envelope scales with the
    fleet.  Safe to run in a pool: every worker touches only its own
    shard directory.
    """
    from repro.analysis.divergence import _canonical
    from repro.fleetd.executor import _stream_stats, digest_rows, \
        timeline_rows
    from repro.fleetd.plan import shard_config
    from repro.obs import Observatory

    from repro.ckpt.store import ShardStore
    files = ShardStore(shard_root).ensure()
    config = shard_config(shard)
    buffered = []
    if from_day == 0:
        state = initial_state(shard, config, options)
        blob = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
        if stream:
            files.write_state(0, blob)
        else:
            buffered.append((-1, None, None, None, blob))
    else:
        blob = files.read_state_bytes(from_day)
    for day in range(from_day, to_day):
        state = pickle.loads(blob)
        observatory = Observatory()
        state, summary = run_day(shard, config, options, state,
                                 observatory)
        rows = timeline_rows(observatory)
        blob = pickle.dumps(state, protocol=PICKLE_PROTOCOL)
        unit = (
            day,
            [_canonical(row) for row in rows],
            {"day": day, "rows": observatory.metrics.rows()},
            {"day": day,
             "digest": digest_rows(rows),
             "events": len(rows),
             "dispatched": summary.dispatched,
             "sim_seconds": summary.sim_seconds,
             "swap_out": summary.swap_out,
             "swap_in": summary.swap_in,
             "resident_max": summary.resident_max,
             "state_file": files.state_name(day + 1),
             "state_sha256": hashlib.sha256(blob).hexdigest(),
             "state_bytes": len(blob),
             "stream_stats": _stream_stats(rows, shard)},
            blob,
        )
        if stream:
            _flush_unit(files, unit)
        else:
            buffered.append(unit)
    if not stream:
        return {"units": buffered}
    return _shard_summary(files, shard)


def _shard_summary(files, shard):
    """A shard's manifest entry, from its (fully flushed) store."""
    records = files.read_days()
    return {
        "index": shard.index,
        "seed": shard.seed,
        "name_prefix": shard.name_prefix,
        "desktops": shard.desktops,
        "laptops": shard.laptops,
        "digest": files.timeline_digest(),
        "events": sum(record["events"] for record in records),
        "dispatched": sum(record["dispatched"] for record in records),
        "sim_seconds": sum(record["sim_seconds"] for record in records),
        "day_digests": [record["digest"] for record in records],
    }


def _flush_unit(files, unit):
    day, lines, metrics_record, day_record, blob = unit
    if day < 0:
        files.write_state(0, blob)      # resident-mode initial state
        return
    files.write_state(day + 1, blob)
    files.append_day(lines, metrics_record, day_record)


def _execute(shards, options, store, from_day, to_day, workers, stream):
    """Fan the day range out over the shards; summaries in shard order.

    Resident mode holds every shard's day units in memory until the
    whole fleet has simulated, then flushes in shard order — the
    resulting files are byte-identical to the streamed ones, only the
    memory envelope differs (which is the point of keeping the mode).
    """
    for shard in shards:
        store.shard(shard.index).ensure()
    if not workers:
        results = [run_shard_days(shard, options,
                                  store.shard(shard.index).root,
                                  from_day, to_day, stream)
                   for shard in shards]
    else:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(workers, len(shards))) \
                as pool:
            futures = [pool.submit(run_shard_days, shard, options,
                                   store.shard(shard.index).root,
                                   from_day, to_day, stream)
                       for shard in shards]
            results = [future.result() for future in futures]
    if stream:
        return results
    summaries = []
    for shard, result in zip(shards, results):
        files = store.shard(shard.index)
        for unit in result["units"]:
            _flush_unit(files, unit)
        summaries.append(_shard_summary(files, shard))
    return summaries


def _fleet_digest(summaries):
    blob = "\n".join("%d %s" % (summary["index"], summary["digest"])
                     for summary in summaries).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def build_manifest(scenario, seed, days, options, summaries):
    """The manifest: a pure function of identity + shard summaries."""
    from repro.spec.catalog import get
    return {
        "schema": MANIFEST_SCHEMA,
        "scenario": scenario,
        "seed": seed,
        "days": days,
        "options": options.to_dict(),
        "state_schema": SCHEMA_VERSION,
        "snapshot_schema": SNAPSHOT_SCHEMA_VERSION,
        "spec": get(scenario).to_dict(),
        "fleet_digest": _fleet_digest(summaries),
        "shards": summaries,
    }


def run_checkpointed(scenario, seed=0, days=1, out="ckpt-store",
                     workers=0, options=None, stream=True):
    """Run ``days`` day units of ``scenario`` into checkpoint ``out``.

    Refuses an existing checkpoint (extend instead: an accidental
    rerun must not silently append to foreign history).  Returns the
    merged :class:`~repro.fleetd.merge.FleetReport`, rebuilt purely
    from the directory.
    """
    if days < 1:
        raise CheckpointError("a checkpoint needs at least one day")
    options = options or default_options()
    store = CheckpointStore(out)
    if store.exists():
        raise CheckpointError(
            "checkpoint already exists at %s (use extend)" % out)
    shards = _plan(scenario, seed, days)
    summaries = _execute(shards, options, store, 0, days, workers,
                         stream)
    store.write_manifest(
        build_manifest(scenario, seed, days, options, summaries))
    return report_from_store(out)


def extend_checkpointed(out, add_days, workers=0, stream=True):
    """Extend checkpoint ``out`` by ``add_days`` more day units.

    The continuation is byte-identical to a from-scratch run of the
    total duration: it enters the same per-day loop at a later index,
    resuming from the same serialized state bytes that loop would have
    produced.  Identity (scenario, seed, shard seeds, options, schema
    versions) is validated against the manifest before anything runs.
    """
    if add_days < 1:
        raise CheckpointError("extend needs at least one day")
    store = CheckpointStore(out)
    manifest = store.read_manifest()
    _check_identity(manifest)
    scenario, seed = manifest["scenario"], manifest["seed"]
    done = manifest["days"]
    total = done + add_days
    options = CkptOptions(**manifest["options"])
    shards = _plan(scenario, seed, total)
    for shard, entry in zip(shards, manifest["shards"]):
        if shard.seed != entry["seed"] \
                or shard.name_prefix != entry["name_prefix"]:
            raise CheckpointError(
                "shard %d identity mismatch: checkpoint has seed %r "
                "prefix %r, plan derives seed %r prefix %r"
                % (shard.index, entry["seed"], entry["name_prefix"],
                   shard.seed, shard.name_prefix))
    summaries = _execute(shards, options, store, done, total, workers,
                         stream)
    store.write_manifest(
        build_manifest(scenario, seed, total, options, summaries))
    return report_from_store(out)


def _check_identity(manifest):
    """Refuse to touch a checkpoint written by a different schema."""
    if manifest.get("state_schema") != SCHEMA_VERSION:
        raise CheckpointError(
            "checkpoint has ckpt state schema %r; this build writes %d"
            % (manifest.get("state_schema"), SCHEMA_VERSION))
    if manifest.get("snapshot_schema") != SNAPSHOT_SCHEMA_VERSION:
        raise CheckpointError(
            "checkpoint has venus snapshot schema %r; this build "
            "writes %d" % (manifest.get("snapshot_schema"),
                           SNAPSHOT_SCHEMA_VERSION))


# ----------------------------------------------------------------------
# reporting: the directory is the source of truth


def _client_report(client):
    """A Figure-9 ClientReport dict from a parked client's stats."""
    stats = client.validation
    return {"name": client.name,
            "kind": client.kind,
            "missing_pct": 100.0 * stats.missing_stamp_fraction,
            "attempts": stats.attempts,
            "success_pct": 100.0 * stats.success_fraction,
            "objs_per_success": stats.objects_per_success}


def _merge_stream_stats(day_stats, prefix):
    """Fold per-day stream stats into one shard-level summary.

    Monotonicity across the fold needs each day internally monotone
    *and* the day boundaries ordered — exactly what per-day capture
    plus increasing day start times guarantees.
    """
    nodes = set()
    kinds = {}
    times = []
    monotone = True
    for stats in day_stats:
        monotone = monotone and stats["monotone"]
        nodes.update(stats["nodes"])
        for kind, count in stats["kinds"].items():
            kinds[kind] = kinds.get(kind, 0) + count
        if stats["first_time"] is not None:
            if times and times[-1] > stats["first_time"]:
                monotone = False
            times.append(stats["first_time"])
            times.append(stats["last_time"])
    return {"monotone": monotone,
            "nodes": sorted(nodes),
            "kinds": kinds,
            "first_time": times[0] if times else None,
            "last_time": times[-1] if times else None,
            "prefix": prefix}


def report_from_store(out):
    """Rebuild the merged FleetReport from a checkpoint directory.

    A pure function of the directory: metrics rows come from
    ``metrics.jsonl`` (merged with a ``day`` label, then the standard
    ``shard`` label), client reports from the final boundary state,
    digests and totals from the manifest/day summaries.  ``workers``
    is reported as 0 — how many processes wrote the store is not a
    property of the store.
    """
    from repro.fleetd.executor import ShardResult
    from repro.fleetd.merge import merge_results
    from repro.obs.metrics import merge_rows

    store = CheckpointStore(out)
    manifest = store.read_manifest()
    scenario, seed = manifest["scenario"], manifest["seed"]
    days = manifest["days"]
    shards = _plan(scenario, seed, days)
    results = []
    for shard, entry in zip(shards, manifest["shards"]):
        files = store.shard(shard.index)
        records = files.read_days()
        state = pickle.loads(files.read_state_bytes(days))
        results.append(ShardResult(
            index=shard.index, seed=shard.seed,
            desktops=shard.desktops, laptops=shard.laptops,
            dispatched=sum(r["dispatched"] for r in records),
            sim_seconds=sum(r["sim_seconds"] for r in records),
            digest=entry["digest"],
            events=sum(r["events"] for r in records),
            reports=[_client_report(client)
                     for client in state.clients.values()],
            metrics_rows=merge_rows(
                ((record["day"], record["rows"])
                 for record in files.read_metrics()), label="day"),
            stream_stats=_merge_stream_stats(
                [r["stream_stats"] for r in records],
                shard.name_prefix)))
    return merge_results(scenario, seed, 0, shards, results)
