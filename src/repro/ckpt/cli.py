"""``repro ckpt``: resumable fleet runs from a shell.

::

    repro ckpt run --scenario fleet-32 --days 2 --out ck/
    repro ckpt extend --out ck/ --days +1
    repro ckpt verify --out ck/
    repro ckpt info --out ck/

``run`` refuses an existing checkpoint and ``extend`` refuses a
missing one, so the two never silently swap roles.  ``extend`` output
is byte-identical to a from-scratch run of the total duration —
``verify`` (structural checks plus a sampled in-process replay) will
vouch for any store regardless of which command grew it.
"""

import argparse
import sys


def _cmd_run(args):
    from repro.ckpt.runner import default_options, run_checkpointed
    from repro.ckpt.store import CheckpointError
    from repro.fleetd.merge import format_report

    options = default_options(day_seconds=args.day_seconds)
    try:
        report = run_checkpointed(
            args.scenario, seed=args.seed, days=args.days, out=args.out,
            workers=args.workers, options=options,
            stream=not args.resident)
    except (CheckpointError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(format_report(report))
    print("checkpoint: %d day(s) of %gs at %s"
          % (args.days, options.day_seconds, args.out))


def _cmd_extend(args):
    from repro.ckpt.runner import extend_checkpointed
    from repro.ckpt.store import CheckpointError
    from repro.fleetd.merge import format_report

    try:
        report = extend_checkpointed(args.out, _added_days(args.days),
                                     workers=args.workers,
                                     stream=not args.resident)
    except (CheckpointError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(format_report(report))
    print("checkpoint extended to %g day(s) at %s"
          % (report.days, args.out))


def _added_days(spec):
    """``+N`` (or bare ``N``) -> int day count to add."""
    try:
        days = int(str(spec).lstrip("+"))
    except ValueError:
        raise SystemExit("--days wants +N, got %r" % spec) from None
    return days


def _cmd_verify(args):
    from repro.ckpt.verify import verify_checkpoint

    verdict = verify_checkpoint(args.out, replay=not args.no_replay,
                                replay_day=args.replay_day,
                                replay_shard=args.replay_shard)
    print(verdict.format())
    if not verdict.ok:
        raise SystemExit(1)


def _cmd_info(args):
    from repro.ckpt.store import CheckpointError, CheckpointStore

    store = CheckpointStore(args.out)
    try:
        manifest = store.read_manifest()
    except CheckpointError as exc:
        raise SystemExit(str(exc)) from None
    options = manifest["options"]
    print("checkpoint %s" % args.out)
    print("  scenario       %s (seed %d, %s)"
          % (manifest["scenario"], manifest["seed"],
             manifest["spec"].get("family", "figure9")))
    print("  days           %d x %gs (swap window %gs)"
          % (manifest["days"], options["day_seconds"],
             options["swap_window"]))
    print("  schemas        manifest %s, state %d, snapshot %d"
          % (manifest["schema"], manifest["state_schema"],
             manifest["snapshot_schema"]))
    print("  fleet digest   %s" % manifest["fleet_digest"])
    for entry in manifest["shards"]:
        print("    shard %02d: %2d client(s) %9d events  %s"
              % (entry["index"], entry["desktops"] + entry["laptops"],
                 entry["events"], entry["digest"][:16]))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro ckpt",
        description="resumable fleet simulation: checkpoint, extend, "
                    "verify")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a fleet into a new checkpoint")
    p.add_argument("--scenario", default="fleet-8",
                   help="any sharded fleet scenario (default: fleet-8)")
    p.add_argument("--days", type=int, default=1,
                   help="day units to simulate (default 1)")
    p.add_argument("--out", required=True,
                   help="checkpoint directory (must not exist yet)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool size (0 = in-process; default 0)")
    p.add_argument("--day-seconds", type=float, default=None,
                   help="sim seconds per day unit (default 86400; "
                        "REPRO_FAST=1 uses an eighth)")
    p.add_argument("--resident", action="store_true",
                   help="buffer all results in memory and flush at the "
                        "end instead of streaming per day (identical "
                        "bytes, larger memory envelope)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("extend",
                       help="resume a checkpoint for more days")
    p.add_argument("--out", required=True)
    p.add_argument("--days", default="+1",
                   help="days to add, e.g. +1 (default +1)")
    p.add_argument("--workers", type=int, default=0)
    p.add_argument("--resident", action="store_true")
    p.set_defaults(fn=_cmd_extend)

    p = sub.add_parser("verify",
                       help="structural checks + sampled replay; "
                            "exit 1 on corruption")
    p.add_argument("--out", required=True)
    p.add_argument("--no-replay", action="store_true",
                   help="structural checks only")
    p.add_argument("--replay-day", type=int, default=None,
                   help="pin the replayed day (default: sampled)")
    p.add_argument("--replay-shard", type=int, default=None,
                   help="pin the replayed shard (default: sampled)")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("info", help="print a checkpoint's manifest")
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_info)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
