"""Segmented day-by-day fleet driver: the resumable scenario family.

A checkpointed fleet run never holds a live world across a day
boundary.  Each day unit is its own simulation: restore the shard from
the previous boundary's :class:`~repro.ckpt.state.ShardState`, run one
day of planned activity, capture the next boundary state, tear down.
The from-scratch run and ``repro ckpt extend`` both execute exactly
this loop — extension merely starts it at a later day with a state
loaded from disk — so byte-identical output is a property of the
construction, not a hope.

Two things make the segmentation sound:

* **Plans are drawn, not improvised.**  Each client's day — wake time,
  op times, outage/commute windows — is drawn up-front from dedicated
  plan streams whose positions live in the checkpoint.  Knowing the
  whole day lets the driver hydrate a client only for the sessions in
  which something actually happens.
* **Clients park through the PR-2 snapshot path.**  A quiescent client
  (idle longer than ``swap_window``) is serialized with
  :func:`repro.faults.persistence.snapshot_venus`, crashed, and
  rehydrated just in time for its next scheduled event; resident state
  is O(active clients), and every rehydration goes through reconnection
  validation like any restarted Venus.

Every content payload the driver writes carries an explicit
deterministic tag — auto-tagged :class:`SyntheticContent` would leak a
process-global counter into the pickled state and break cross-process
state hashes.
"""

from dataclasses import dataclass, field

from repro.ckpt.state import (
    ShardState,
    capture_client,
    capture_server,
    check_schema,
    hydrate_client,
    restore_server,
)
from repro.fs.content import SyntheticContent
from repro.net import ETHERNET, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.sim import RandomStreams, Simulator

DAY = 86_400.0


@dataclass(frozen=True)
class CkptOptions:
    """Identity-bearing knobs of a checkpointed run.

    All of these enter the manifest: two checkpoints are only
    comparable (and a checkpoint only extendable) when they agree.
    """

    day_seconds: float = DAY        # sim seconds per day unit
    swap_window: float = 3600.0     # idle gap that parks a client
    settle_seconds: float = 300.0   # drain time before a mid-day park
    wake_jitter: float = 600.0      # morning wake spread

    def to_dict(self):
        return {"day_seconds": self.day_seconds,
                "swap_window": self.swap_window,
                "settle_seconds": self.settle_seconds,
                "wake_jitter": self.wake_jitter}


@dataclass
class DaySummary:
    """What one day unit reports back to the store."""

    day: int
    dispatched: int
    sim_seconds: float
    events: int = 0
    swap_out: int = 0
    swap_in: int = 0
    resident_max: int = 0
    stream_stats: dict = None


class _World:
    """Mutable per-day driver context shared by the client processes."""

    def __init__(self, sim, net, server, streams, config, options,
                 family, day, day_end):
        self.sim = sim
        self.net = net
        self.server = server
        self.streams = streams
        self.config = config
        self.options = options
        self.family = family
        self.day = day
        self.day_end = day_end
        self.parked = {}        # name -> ClientState
        self.resident = {}      # name -> (kind, venus, link)
        self.links = {}
        self.op_counters = {}
        self.shared = []
        self.system = []
        self.extra = []
        self.swap_out = 0
        self.swap_in = 0
        self.resident_max = 0


# ----------------------------------------------------------------------
# client rosters and volume trees (same pools as the live families)


def client_specs(config, family):
    """``[(name, kind)]`` in build order, mirroring the live families."""
    if family == "commuter":
        from repro.spec.families import _COMMUTER_DESKTOPS, _COMMUTER_LAPTOPS
        desktops, laptops = _COMMUTER_DESKTOPS, _COMMUTER_LAPTOPS
    else:
        desktops = ["bach", "berlioz", "brahms", "chopin", "copland",
                    "dvorak", "gershwin", "gs125", "holst", "ives",
                    "mahler", "messiaen", "mozart", "varicose", "verdi",
                    "vivaldi"]
        laptops = ["caractacus", "deidamia", "finlandia", "gloriana",
                   "guntram", "nabucco", "prometheus", "serse", "tosca",
                   "valkyrie"]
    prefix = config.name_prefix
    specs = [(prefix + desktops[i % len(desktops)]
              + ("" if i < len(desktops) else str(i)), "desktop")
             for i in range(config.desktops)]
    specs += [(prefix + laptops[i % len(laptops)]
               + ("" if i < len(laptops) else str(i)), "laptop")
              for i in range(config.laptops)]
    return specs


def _volume_lists(server):
    """(shared, system, extra) volume lists, mount order, by prefix."""
    shared, system, extra = [], [], []
    for prefix, volume in server.registry._mounts.items():
        if prefix[:2] == ("coda", "project"):
            shared.append(volume)
        elif prefix[:2] == ("coda", "misc"):
            system.append(volume)
        elif prefix[:2] == ("coda", "extra"):
            extra.append(volume)
    return shared, system, extra


# ----------------------------------------------------------------------
# day 0: build the world once, park everyone


def initial_state(shard, config, options):
    """The parked day-0 world: populated volumes, warmed caches.

    Built exactly like the live families (same tree and warm-sample
    streams), then every client is parked through the snapshot path, so
    day 0 starts — like every later day — from a :class:`ShardState`.
    The construction simulator never runs; it exists only because Venus
    and the server need one to be built against.
    """
    from repro.bench.common import populate_volume, warm_cache
    from repro.bench.fleet import _volume_tree
    from repro.server import CodaServer

    sim = Simulator()
    streams = RandomStreams(config.seed)
    sim.rand = streams
    net = Network(sim, rng=streams.stream("net"))
    server = CodaServer(sim, net, "server", SERVER_1995)

    shared = [populate_volume(server, "/coda/project/p%02d" % i,
                              _volume_tree("/coda/project/p%02d" % i,
                                           config, streams))
              for i in range(config.shared_volumes)]
    system = [populate_volume(server, "/coda/misc/s%02d" % i,
                              _volume_tree("/coda/misc/s%02d" % i,
                                           config, streams))
              for i in range(config.system_volumes)]
    for i in range(config.extra_volumes):
        populate_volume(server, "/coda/extra/e%02d" % i,
                        _volume_tree("/coda/extra/e%02d" % i,
                                     config, streams))

    from repro.venus import Venus, VenusConfig

    clients = {}
    for name, kind in client_specs(config, shard.family):
        rng = streams.stream("client::" + name)
        net.add_link(name, "server", profile=ETHERNET)
        private = populate_volume(server, "/coda/usr/%s" % name,
                                  _volume_tree("/coda/usr/%s" % name,
                                               config, streams))
        host = LAPTOP_1995 if kind == "laptop" else SERVER_1995
        venus = Venus(sim, net, name, "server", host,
                      config=VenusConfig(probe_interval=120.0,
                                         hoard_walk_interval=600.0))
        warm_cache(venus, server, private)
        for volume in rng.sample(shared, min(3, len(shared))):
            warm_cache(venus, server, volume)
        for volume in rng.sample(system, min(6, len(system))):
            warm_cache(venus, server, volume)
        clients[name] = capture_client(name, kind, venus, 0)
        venus.crash()
        server.callbacks.drop_client(name)
        server._client_conns.pop(name, None)
    return ShardState(
        scenario=shard.scenario, family=shard.family,
        shard_index=shard.index, seed=shard.seed,
        day=0, time=0.0, day_seconds=options.day_seconds,
        server=capture_server(server), clients=clients,
        rng=streams.state(), admin_counter=0)


# ----------------------------------------------------------------------
# day plans: the whole day drawn up-front from checkpointed streams


def _scaled_hour(options, t):
    """Hour-of-day in [0, 24) with the day compressed to day_seconds."""
    return (t % options.day_seconds) / options.day_seconds * 24.0


def _plan_ops(name, config, options, streams, family, start, end):
    """Wake + op times for one client-day, from its plan stream."""
    rng = streams.stream("ckpt-plan::" + name)
    mean_gap = options.day_seconds / (config.private_writes_per_day
                                      + config.shared_writes_per_day
                                      + config.reads_per_day
                                      + config.roams_per_day
                                      + config.evictions_per_day)
    t = start + rng.uniform(0, options.wake_jitter)
    events = [(t, "wake")]
    while True:
        gap = rng.expovariate(1.0 / mean_gap)
        if family == "commuter":
            hour = _scaled_hour(options, t)
            if not config.work_start <= hour < config.work_end:
                gap /= max(config.off_hours_activity, 1e-6)
        t += gap
        if t >= end:
            return events
        events.append((t, "op"))


def _plan_outages(name, kind, config, options, streams, family,
                  start, end):
    """Down/up link windows for one client-day (bursty, as live)."""
    if family == "commuter" and kind == "laptop":
        return _plan_commutes(name, config, options, streams, start, end)
    rng = streams.stream("outage::" + name)
    if family == "commuter":
        per_day = config.desktop_outages_per_day
    else:
        per_day = (config.desktop_outages_per_day if kind == "desktop"
                   else config.laptop_commutes_per_day)
    events = []
    t = start
    while True:
        t += rng.expovariate(per_day / options.day_seconds)
        if t >= end:
            return events
        bounces = 1 + (2 if rng.random() < config.flaky_reconnect_prob
                       else 0)
        for bounce in range(bounces):
            duration = (rng.expovariate(
                1.0 / (config.outage_minutes * 60.0)) if bounce == 0
                else rng.uniform(20.0, 120.0))
            events.append((t, "down"))
            t += duration
            if t >= end:
                return events        # morning reconnect = next day's wake
            events.append((t, "up"))
            if bounce < bounces - 1:
                t += rng.uniform(30.0, 300.0)
                if t >= end:
                    return events


def _plan_commutes(name, config, options, streams, start, end):
    """The two diurnal commute windows, jittered, for one laptop-day."""
    rng = streams.stream("commute::" + name)
    commute = config.commute_minutes * 60.0
    scale = options.day_seconds / 24.0
    events = []
    for edge_hour in (config.work_start, config.work_end):
        depart = (start + edge_hour * scale - commute
                  + rng.uniform(-600.0, 600.0))
        duration = commute * rng.uniform(0.8, 1.3)
        if depart <= start:
            continue
        if depart >= end:
            continue
        events.append((depart, "down"))
        if depart + duration < end:
            events.append((depart + duration, "up"))
    return events


_EVENT_ORDER = {"down": 0, "up": 1, "wake": 2, "op": 3}


def plan_client_day(name, kind, config, options, streams, family,
                    start, end):
    """The merged, session-split schedule for one client-day.

    Returns a list of *sessions*; each session is a list of
    ``(time, kind)`` events separated by gaps no longer than
    ``swap_window``.  The client is resident only inside sessions.
    """
    events = _plan_ops(name, config, options, streams, family, start, end)
    events += _plan_outages(name, kind, config, options, streams, family,
                            start, end)
    events.sort(key=lambda ev: (ev[0], _EVENT_ORDER[ev[1]]))
    sessions = []
    current = []
    for event in events:
        if current and event[0] - current[-1][0] > options.swap_window:
            sessions.append(current)
            current = []
        current.append(event)
    if current:
        sessions.append(current)
    return sessions


# ----------------------------------------------------------------------
# in-day processes


def _hydrate(world, name):
    """Bring a parked client back; returns (venus, link)."""
    state = world.parked.pop(name)
    link = world.links.get(name)
    if link is None:
        link = world.net.add_link(name, "server", profile=ETHERNET)
        world.links[name] = link
    host = LAPTOP_1995 if state.kind == "laptop" else SERVER_1995
    venus = hydrate_client(state, world.sim, world.net, host)
    world.resident[name] = (state.kind, venus, link)
    world.resident_max = max(world.resident_max, len(world.resident))
    world.swap_in += 1
    obs = world.sim.obs
    obs.event("checkpoint_restore", scope="client", node=name,
              day=world.day, cml=state.snapshot.cml_len)
    obs.metrics.counter("ckpt.swap_in").inc()
    obs.metrics.gauge("ckpt.resident").set(len(world.resident))
    return venus, link


def _park(world, name):
    """Swap a resident client out to its snapshot mid-day."""
    kind, venus, _link = world.resident.pop(name)
    parked = capture_client(name, kind, venus,
                            world.op_counters.get(name, 0))
    world.parked[name] = parked
    world.swap_out += 1
    obs = world.sim.obs
    obs.event("checkpoint_write", scope="client", node=name,
              day=world.day, cml=parked.snapshot.cml_len)
    obs.metrics.counter("ckpt.swap_out").inc()
    obs.metrics.gauge("ckpt.resident").set(len(world.resident))
    world.server.callbacks.drop_client(name)
    world.server._client_conns.pop(name, None)
    venus.crash()


def _exec_op(world, name, venus, rng):
    """One life op, same mix and draw order as the live families."""
    from repro.bench.fleet import _evict_volume, _read_something

    config = world.config
    counter = world.op_counters.get(name, 0) + 1
    world.op_counters[name] = counter
    weights = [config.reads_per_day, config.private_writes_per_day,
               config.shared_writes_per_day, config.roams_per_day,
               config.evictions_per_day]
    total_weight = sum(weights)
    pick = rng.random() * total_weight
    try:
        if pick < weights[0]:
            yield from _read_something(venus, None, world.shared, rng)
        elif pick < weights[0] + weights[1]:
            path = "/coda/usr/%s/data/w%d" % (venus.node, counter % 60)
            yield from venus.write_file(
                path, SyntheticContent(rng.randrange(2_000, 20_000),
                                       tag=("ckpt", name, counter)))
        elif pick < weights[0] + weights[1] + weights[2]:
            volume = rng.choice(world.shared)
            path = "/coda/project/p%02d/data/%s-%d" % (
                world.shared.index(volume), venus.node, counter % 40)
            yield from venus.write_file(
                path, SyntheticContent(rng.randrange(2_000, 20_000),
                                       tag=("ckpt", name, counter)))
        elif pick < sum(weights[:4]):
            index = rng.randrange(len(world.extra))
            yield from venus.read_file(
                "/coda/extra/e%02d/data/f%03d"
                % (index, rng.randrange(config.files_per_volume)))
        else:
            _evict_volume(venus, rng)
    except Exception:
        # Misses and races with planned outages are part of life.
        pass


def _client_day(world, name, sessions):
    """One client's day: hydrate per session, execute, park between."""
    sim = world.sim
    rng = world.streams.stream("client::" + name)
    for index, session in enumerate(sessions):
        first_time = session[0][0]
        if first_time > sim.now:
            yield sim.sleep(first_time - sim.now)
        venus, link = _hydrate(world, name)
        if session[0][1] in ("wake", "op"):
            # Sessions opening with a link event connect (or not)
            # through that event's own handler.
            link.set_up(True)
            yield from venus.connect()
        for when, kind in session:
            if when > sim.now:
                yield sim.sleep(when - sim.now)
            if kind == "down":
                link.set_up(False)
                venus.handle_disconnection()
            elif kind == "up":
                link.set_up(True)
                yield from venus.connect()
            elif kind == "op":
                yield from _exec_op(world, name, venus, rng)
            # "wake" carries no action: hydration already connected.
        park_at = session[-1][0] + world.options.settle_seconds
        if park_at > sim.now:
            yield sim.sleep(park_at - sim.now)
        _park(world, name)


def _admin_day(world):
    """The administrator's day (same body as the live families)."""
    sim = world.sim
    config = world.config
    rng = world.streams.stream("admin")
    system = world.system + world.extra
    while True:
        rate = config.system_updates_per_day * len(system)
        yield sim.sleep(rng.expovariate(rate / world.options.day_seconds))
        world.admin_counter += 1
        volume = rng.choice(system)
        fids = [fid for fid, vnode in volume.vnodes.items()
                if vnode.is_file()]
        if not fids:
            continue
        fid = rng.choice(fids)
        vnode = volume.require(fid)
        vnode.content = SyntheticContent(vnode.length or 1024,
                                         tag=("admin", world.admin_counter))
        volume.bump(vnode, sim.now)
        world.server._break_callbacks("admin-client", fid)


# ----------------------------------------------------------------------
# the day loop body


def run_day(shard, config, options, state, observatory):
    """Run one day unit from ``state``; returns (new_state, summary).

    The caller owns the observatory (one fresh instance per day) and
    collects rows afterwards; this function records the shard-scope
    ``checkpoint_restore``/``checkpoint_write`` events into it and
    tears the whole world down before returning.
    """
    from repro.perf.runner import KernelTally

    check_schema(state)
    start = state.time
    end = start + options.day_seconds
    with KernelTally() as tally:
        sim = Simulator(start_time=start)
        observatory.install(sim)
        streams = RandomStreams(config.seed)
        streams.restore(state.rng)
        sim.rand = streams
        net = Network(sim, rng=streams.stream("net"))
        server = restore_server(state.server, sim, net, SERVER_1995)
        world = _World(sim, net, server, streams, config, options,
                       state.family, state.day, end)
        world.shared, world.system, world.extra = _volume_lists(server)
        world.admin_counter = state.admin_counter
        observatory.event("checkpoint_restore", scope="shard",
                          day=state.day, clients=len(state.clients))
        # repro: allow[DET003] clients dict is built in spec order and
        # pickle preserves insertion order, so iteration is a pure
        # function of the checkpoint bytes
        for name, client in state.clients.items():
            world.parked[name] = client
            world.op_counters[name] = client.op_counter
            sessions = plan_client_day(name, client.kind, config, options,
                                       streams, state.family, start, end)
            if sessions:
                sim.process(_client_day(world, name, sessions),
                            name="ckpt-day-%s" % name)
        sim.process(_admin_day(world), name="admin")
        sim.run(until=end)

        clients = {}
        for name in state.clients:
            resident = world.resident.get(name)
            if resident is not None:
                kind, venus, _link = resident
                clients[name] = capture_client(
                    name, kind, venus, world.op_counters.get(name, 0))
            else:
                clients[name] = world.parked[name]
        new_state = ShardState(
            scenario=state.scenario, family=state.family,
            shard_index=state.shard_index, seed=state.seed,
            day=state.day + 1, time=end,
            day_seconds=options.day_seconds,
            server=capture_server(server), clients=clients,
            rng=streams.state(), admin_counter=world.admin_counter)
        observatory.event("checkpoint_write", scope="shard",
                          day=state.day, clients=len(clients),
                          resident=len(world.resident))
        observatory.metrics.counter("ckpt.days_completed").inc()
        observatory.uninstall()
    summary = DaySummary(
        day=state.day, dispatched=tally.events,
        sim_seconds=options.day_seconds,
        swap_out=world.swap_out, swap_in=world.swap_in,
        resident_max=world.resident_max)
    return new_state, summary
