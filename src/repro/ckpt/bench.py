"""Memory-envelope harness for checkpointed fleet runs.

``ru_maxrss`` is a *process-lifetime* high-water mark, so measuring
the streamed and resident paths inside one interpreter would let
whichever ran first set the bar for both.  Each measurement therefore
runs in a fresh subprocess (``python -m repro.ckpt.bench`` with a JSON
spec on stdin, JSON result on stdout) whose peak RSS reflects exactly
one configuration.  The measured run writes its checkpoint into a
temporary directory that is discarded afterwards — RSS is a property
of the machine, never of the store, and must not leak into files that
the byte-identity proofs compare.

:data:`BENCH_DAYS`/:data:`BENCH_DAY_SECONDS` pin the long-horizon
workload the ``ckpt-fleet-256`` perf scenarios use: four day units of
an eighth-day each, matching the REPRO_FAST convention, so the
streamed and resident rows in ``BENCH_perf.json`` differ only in
buffering strategy.
"""

import json
import os
import subprocess
import sys
import tempfile

#: Long-horizon workload for the BENCH_perf scenarios: >= 4 sim-days.
BENCH_DAYS = 4
BENCH_DAY_SECONDS = 86_400.0 / 8.0


def measure(scenario, days, day_seconds, stream, out, seed=0):
    """Run a checkpointed fleet in *this* process and report peak RSS.

    Returns a JSON-safe detail dict.  Meaningful only from a process
    that has done no other heavy work (see module docstring) — use
    :func:`measure_subprocess` from long-lived callers.
    """
    import resource

    from repro.ckpt.driver import CkptOptions
    from repro.ckpt.runner import run_checkpointed

    options = CkptOptions(day_seconds=float(day_seconds))
    report = run_checkpointed(scenario, seed=seed, days=days, out=out,
                              options=options, stream=bool(stream))
    max_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "scenario": scenario,
        "days": days,
        "day_seconds": float(day_seconds),
        "streamed": bool(stream),
        "clients": report.clients,
        "shards": len(report.shards),
        "dispatched": report.dispatched,
        "sim_seconds": report.sim_seconds,
        "fleet_digest": report.fleet_digest,
        "max_rss_kb": max_rss_kb,
    }


def measure_subprocess(scenario, days, day_seconds, stream, seed=0):
    """Run :func:`measure` in a fresh interpreter; returns its dict.

    The child inherits this interpreter and environment, with the repro
    package's root prepended to ``PYTHONPATH`` so ``-m`` resolves the
    same checkout regardless of how the parent was launched.
    """
    import repro

    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root + os.pathsep + existing
                         if existing else package_root)
    with tempfile.TemporaryDirectory(prefix="ckpt-bench-") as scratch:
        spec = {
            "scenario": scenario,
            "days": days,
            "day_seconds": day_seconds,
            "stream": bool(stream),
            "out": os.path.join(scratch, "store"),
            "seed": seed,
        }
        proc = subprocess.run(
            [sys.executable, "-m", "repro.ckpt.bench"],
            input=json.dumps(spec), capture_output=True, text=True,
            env=env, check=False)
    if proc.returncode != 0:
        raise RuntimeError("ckpt bench subprocess failed:\n%s"
                           % proc.stderr)
    return json.loads(proc.stdout)


def main():
    spec = json.load(sys.stdin)
    json.dump(measure(**spec), sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
