"""Whole-shard state capture: what survives a fleet "overnight shutdown".

A checkpointed fleet run is segmented into day units.  At every day
boundary the shard's world is torn down and everything that matters for
the next morning is captured into a picklable :class:`ShardState`:

* every client as its PR-2 RVM snapshot
  (:func:`repro.faults.persistence.snapshot_venus`) plus the cumulative
  statistics its Figure-9 report is built from;
* the server's recoverable store — volumes with their vnodes, stamps
  and fid allocators, the reintegrator's applied-marks, the counters
  that keep identifiers unique across incarnations;
* the position of every named random stream
  (:meth:`repro.sim.rand.RandomStreams.state`), freezing the shard's
  entire stochastic future;
* driver bookkeeping (per-client op counters, the administrator's
  update counter).

Deliberately volatile, exactly as in PR 2's crash model: callback
promises, in-flight RPC/SFTP state, server->client connections, and the
reintegration barrier.  Clients come back through (rapid) reconnection
validation every morning — Figures 8-9 at fleet scale.

Capture *consumes* the volume fid allocators (the same
consume-one-to-learn-the-next trick ``snapshot_venus`` uses), so it
must only run on a world about to be discarded.
"""

from dataclasses import dataclass, replace
from itertools import count

from repro.fs.namespace import join_path
from repro.fs.volume import Volume

#: Version stamp of the ShardState field set.  Manifests embed it next
#: to the PR-2 snapshot schema version; extend/verify refuse mixed
#: versions rather than misread a checkpoint.
SCHEMA_VERSION = 1


@dataclass
class ClientState:
    """One parked client: RVM snapshot + cumulative report state."""

    name: str
    kind: str                 # desktop | laptop
    snapshot: object          # repro.faults.persistence.VenusSnapshot
    validation: object        # core.validation.ValidationStats copy
    venus_stats: object       # venus.venus.VenusStats copy
    trickle_stats: object     # core.trickle.TrickleStats copy
    op_counter: int = 0


@dataclass
class VolumeState:
    """One server volume, allocators flattened to plain ints."""

    volid: int
    name: str
    prefix: tuple             # mount prefix components
    stamp: int
    next_vnode: int
    next_uniq: int
    root_fid: object
    vnodes: dict              # fid -> Vnode (ownership transfers)


@dataclass
class ServerState:
    """The server's RVM analogue: store, marks, identity counters."""

    volumes: list
    volid_counter: int
    next_conn_id: int
    applied: dict             # reintegrator marks {client: {seqno: ...}}
    duplicates_skipped: int
    reintegrations: int
    reintegration_conflicts: int
    crashes: int


@dataclass
class ShardState:
    """Everything one shard carries across a day boundary."""

    scenario: str
    family: str
    shard_index: int
    seed: int
    day: int                  # day units completed
    time: float               # sim time at capture (= day * day_seconds)
    day_seconds: float
    server: ServerState
    clients: dict             # name -> ClientState, spec order
    rng: dict                 # stream name -> Random state, sorted
    admin_counter: int = 0
    schema_version: int = SCHEMA_VERSION


def capture_client(name, kind, venus, op_counter):
    """Park a live Venus into a :class:`ClientState`.

    The snapshot consumes the client's allocators (PR-2 semantics), so
    the instance must not execute further ops; either crash it (mid-day
    swap-out) or discard the world (boundary capture).
    """
    from repro.faults.persistence import snapshot_venus

    return ClientState(
        name=name, kind=kind,
        snapshot=snapshot_venus(venus),
        validation=replace(venus.validator.stats),
        venus_stats=replace(venus.stats),
        trickle_stats=replace(venus.trickle.stats),
        op_counter=op_counter)


def hydrate_client(state, sim, network, host):
    """Rebuild a live Venus from a parked :class:`ClientState`.

    Restoration goes through the one PR-2 path
    (:func:`repro.faults.persistence.restore_venus`): EMULATING, no
    callbacks, stamps intact — the morning reconnection revalidates
    rapidly and trickle reintegration resumes from the persisted log.
    The cumulative stats come back so Figure-9 reports span days.
    """
    from repro.faults.persistence import restore_venus

    venus = restore_venus(state.snapshot, sim, network, host)
    venus.validator.stats = replace(state.validation)
    venus.stats = replace(state.venus_stats)
    venus.trickle.stats = replace(state.trickle_stats)
    return venus


def capture_server(server):
    """Flatten a live CodaServer into a :class:`ServerState`.

    Mount order is the registry's insertion order, which is itself a
    pure function of the schedule, so repeated captures of identical
    runs pickle byte-identically.  Callbacks, fragment progress, and
    client connections are volatile — the overnight restart drops them,
    which is what forces morning revalidation.
    """
    volumes = []
    for prefix, volume in server.registry._mounts.items():
        volumes.append(VolumeState(
            volid=volume.volid, name=volume.name, prefix=prefix,
            stamp=volume.stamp,
            next_vnode=next(volume._vnode_counter),
            next_uniq=next(volume._uniq_counter),
            root_fid=volume.root_fid, vnodes=volume.vnodes))
    return ServerState(
        volumes=volumes,
        volid_counter=server._volid_counter,
        next_conn_id=server.endpoint._next_conn_id,
        applied=server.reintegrator._applied,
        duplicates_skipped=server.reintegrator.duplicates_skipped,
        reintegrations=server.reintegrations,
        reintegration_conflicts=server.reintegration_conflicts,
        crashes=server.crashes)


def restore_server(state, sim, network, host):
    """Rebuild a CodaServer (and its registry) from a capture."""
    from repro.server import CodaServer

    server = CodaServer(sim, network, "server", host)
    server._volid_counter = state.volid_counter
    server.endpoint._next_conn_id = state.next_conn_id
    server.reintegrator._applied = state.applied
    server.reintegrator.duplicates_skipped = state.duplicates_skipped
    server.reintegrations = state.reintegrations
    server.reintegration_conflicts = state.reintegration_conflicts
    server.crashes = state.crashes
    for vs in state.volumes:
        volume = Volume.__new__(Volume)
        volume.volid = vs.volid
        volume.name = vs.name
        volume.stamp = vs.stamp
        volume.vnodes = vs.vnodes
        volume._vnode_counter = count(vs.next_vnode)
        volume._uniq_counter = count(vs.next_uniq)
        volume.root = vs.vnodes[vs.root_fid]
        server.registry.mount(join_path(vs.prefix), volume)
    return server


def check_schema(state):
    """Refuse a :class:`ShardState` from a different field-set version."""
    version = getattr(state, "schema_version", None)
    if version != SCHEMA_VERSION:
        raise ValueError(
            "shard state has ckpt schema version %r; this build restores "
            "only version %d" % (version, SCHEMA_VERSION))
    from repro.faults.persistence import SNAPSHOT_SCHEMA_VERSION

    for client in state.clients.values():
        snap_version = getattr(client.snapshot, "schema_version", None)
        if snap_version != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                "client %r snapshot has schema version %r; this build "
                "restores only version %d"
                % (client.name, snap_version, SNAPSHOT_SCHEMA_VERSION))
    return state
