"""Deterministic discrete-event simulation kernel.

This package is the substrate for every timed component of the
reproduction: network links, transport protocols, the Coda server,
Venus daemons, and trace replay all run as generator-based processes
on a single :class:`~repro.sim.kernel.Simulator`.

The design follows the familiar SimPy model: a process is a generator
that ``yield``\\ s :class:`~repro.sim.events.Event` objects and is
resumed when they trigger.  Determinism is guaranteed: the event queue
is ordered by ``(time, priority, sequence)`` and all randomness flows
through named :class:`~repro.sim.rand.RandomStreams`.
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    StaleObjectError,
    Timeout,
)
from repro.sim.kernel import Simulator
from repro.sim.pool import EventPool, default_pooling, use_pooling
from repro.sim.process import Process
from repro.sim.rand import RandomStreams
from repro.sim.resources import Lock, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventPool",
    "Interrupt",
    "Lock",
    "Process",
    "RandomStreams",
    "Simulator",
    "StaleObjectError",
    "Store",
    "Timeout",
    "default_pooling",
    "use_pooling",
]
