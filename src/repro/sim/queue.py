"""Pluggable event schedulers for the simulation kernel.

The kernel dispatches events in ``(when, priority, sequence)`` order —
the *total order contract* (DESIGN.md, "Scheduler model").  This module
provides interchangeable queue implementations of that contract:

* :class:`HeapQueue` — the reference implementation, a single binary
  heap (C ``heapq``).  Simple, obviously correct, and the schedule
  every other implementation is proven against.
* :class:`CalendarQueue` — a calendar-queue / timer-wheel hybrid tuned
  for the workload's short-timeout horizon (RPC2 retransmits, SFTP
  rounds, keepalives, trickle ticks).  Events due *at the current
  instant* — the succeed/resume chains that make up roughly half of a
  fleet run — bypass bucket machinery entirely through two O(1) FIFO
  lanes; future events land in width-adaptive calendar buckets (tiny
  per-bucket heaps keyed by time slice), and far-future outliers go to
  an overflow tier so they can never bloat the bucket table or a
  resize.

An *entry* is the tuple ``(when, priority, seq, event)`` — exactly the
tuple the kernel has always heap-pushed, so the tuple order *is* the
dispatch order and FIFO tie-breaking at identical ``(when, priority)``
is carried by the monotone ``seq``.

Scheduler contract (what every implementation must honor):

* ``push`` accepts only entries with ``when`` >= the time of the most
  recently popped entry (the kernel never schedules into the past) and
  ``priority`` in ``{URGENT, NORMAL}``.
* ``pop`` returns entries in ascending ``(when, priority, seq)`` order
  and raises ``IndexError`` when empty.
* ``peek_entry``/``peek_when`` never mutate the observable queue.
* ``len()`` is the number of pending entries (the obs queue-depth
  gauge reads it after every dispatch).

Equivalence of any implementation to :class:`HeapQueue` is enforced by
the differential harness (``tests/sim/differential.py``), a
model-based Hypothesis suite (``tests/properties/
test_queue_properties.py``), and the golden timeline digests — not by
code review.  See the planted-bug fixtures in
``tests/sim/broken_queues.py`` for proof the harness has teeth.

The module-level default kind is what ``Simulator()`` builds when no
queue is passed; it is configuration (like a scenario name), read once
from ``REPRO_QUEUE`` at import and changeable via
:func:`set_default_kind` / :func:`use_kind` — never consulted again
after a Simulator is constructed, so it cannot perturb a running
schedule.
"""

import os
from bisect import insort
from collections import deque
from functools import partial
# Calendar buckets and the overflow tier are ordered by the same
# entry tuples the kernel's reference heap uses; this module is the
# scheduler layer and is allowlisted for SIM001 alongside the kernel.
from heapq import heappop, heappush


class HeapQueue:
    """The reference scheduler: one binary heap of entry tuples.

    ``push``/``pop`` are bound ``functools.partial`` objects over the
    C heap primitives, so the hot trigger sites in ``sim/events.py``
    pay one C-level call per event — the same cost as the inlined
    ``heappush`` they historically carried.
    """

    kind = "heap"

    __slots__ = ("_heap", "push", "pop")

    def __init__(self, start_time=0.0):
        self._heap = []
        self.push = partial(heappush, self._heap)
        self.pop = partial(heappop, self._heap)

    def peek_entry(self):
        """The next entry to dispatch, or None if empty."""
        heap = self._heap
        return heap[0] if heap else None

    def peek_when(self):
        """Time of the next entry, or None if empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def cancel(self, entry):
        """Remove a pending entry; returns True if it was present.

        O(n) — the kernel never cancels (triggered events stay queued
        and dispatch with empty callback lists), so this exists for
        external bookkeeping, not the hot path.
        """
        try:
            self._heap.remove(entry)
        except ValueError:
            return False
        # Re-establish the heap invariant after the arbitrary removal.
        import heapq
        heapq.heapify(self._heap)
        return True

    def __len__(self):
        return len(self._heap)

    def __repr__(self):
        return "<HeapQueue pending=%d>" % len(self._heap)


#: Far-future cutoff, in bucket widths: entries further than this many
#: buckets past the current instant go to the overflow tier instead of
#: the calendar.  Keeps day-scale timers (and +inf sentinels) out of
#: the bucket table and out of every resize.
OVERFLOW_SPAN = 4096

#: Bucket-width clamp for the auto-resize.  The floor keeps
#: denormal-small timeout clusters from driving the width (and the
#: bucket indices) into pathological territory; the ceiling bounds how
#: coarse the calendar can get.
MIN_WIDTH = 1e-9
MAX_WIDTH = 1e9

#: Bucketed-entry count that arms the first resize; subsequent
#: thresholds scale with the live population (see ``_resize``).
RESIZE_AT = 64

#: Target mean entries per occupied slice after a resize.  Small
#: per-slice heaps are nearly free (C heappush/heappop on tiny
#: lists); *empty* slices are not — every create/delete of a
#: one-entry bucket costs dict and index-heap traffic in Python.  A
#: moderately deep slice amortizes that bookkeeping across several
#: events, which profiles measurably faster than occupancy ~2.
OCCUPANCY = 8.0


class CalendarQueue:
    """Calendar-queue scheduler with at-instant FIFO lanes.

    Structure:

    * ``_urgent`` / ``_normal`` — deques of entries due exactly at
      ``_instant`` (the time of the most recent dispatch).  Pushes at
      the current instant are appends; pops are popleft.  Because
      ``seq`` is monotone in push order, append order *is*
      ``(priority, seq)`` order within each lane, and draining urgent
      before normal reproduces the heap's priority order exactly.
    * ``_ready`` — the *bottom rung*: when the calendar advances past
      the lanes it lifts the entire minimum slice (plus any overflow
      entries below that slice's top), sorts it once with C
      ``list.sort``, and then serves it by walking a cursor
      (``_ready_pos``).  Pops from the rung are a list index and an
      integer increment — no heap ops at all.  New entries that land
      inside the rung's window ``(_instant, _limit)`` are placed by C
      ``bisect.insort``, which inserts equal keys to the right and so
      preserves FIFO ties (``seq`` is monotone in push order).
    * ``_buckets`` — dict mapping time slice ``trunc(when / width)``
      to a small heap of entries in that slice.  The mapping is
      monotone in ``when``, so slices never reorder relative to each
      other and the per-slice heaps restore total order within.
    * ``_active`` — a heap of live slice indices; its head names the
      slice holding the global future minimum.
    * ``_overflow`` — plain heap for entries beyond
      ``OVERFLOW_SPAN`` bucket widths (and non-finite times).

    The rung's window bound ``_limit`` is monotone non-decreasing and
    every entry in ``_buckets``/``_overflow`` is at a time >=
    ``_limit`` (pushes below it insort into the rung; each refill
    migrates the overflow entries below the new bound), so the rung
    head is always the global future minimum and the tiers never need
    comparing against it on the hot path.

    Width auto-resize: when the bucketed population doubles past the
    last threshold, the width is recomputed from the live span so the
    average slice holds ~``OCCUPANCY`` entries, and every bucketed
    entry is re-sliced under the new width (the overflow tier is
    exempt, which is the point of having it).  Resize is a pure
    restructuring driven only by push counts — it cannot change pop
    order, which the property suite checks explicitly.
    """

    kind = "calendar"

    __slots__ = ("_urgent", "_normal", "_instant", "_buckets", "_active",
                 "_overflow", "_width", "_future", "_resize_at",
                 "_ready", "_ready_pos", "_limit")

    def __init__(self, start_time=0.0):
        self._urgent = deque()
        self._normal = deque()
        self._instant = float(start_time)
        self._buckets = {}
        self._active = []
        self._overflow = []
        self._width = 1.0
        self._future = 0          # entries in _buckets (not overflow)
        self._resize_at = RESIZE_AT
        # The bottom rung: the minimum slice, lifted whole and sorted,
        # served by a cursor (C-speed list indexing instead of heap
        # ops).  Covers times in (_instant, _limit); pushes into that
        # window insort directly (bisect keeps FIFO ties: equal keys
        # insert to the right, and seq is monotone in push order).
        self._ready = []
        self._ready_pos = 0
        self._limit = float("-inf")

    # -- scheduling -------------------------------------------------------

    def push(self, entry):
        """Insert ``entry``; at-instant entries take the FIFO lanes.

        The bucket/overflow logic is ``_push_future`` inlined (push
        runs once per event and a second Python call per timeout shows
        up in fleet-scale profiles — keep the two in sync), with one
        extra branch in front: entries inside the current rung window
        insort straight into the ready run.
        """
        when = entry[0]
        instant = self._instant
        if when == instant:
            # URGENT is 0: falsy selects the urgent lane.
            if entry[1]:
                self._normal.append(entry)
            else:
                self._urgent.append(entry)
            return
        if when < self._limit:
            # Inside the rung window: C insort keeps the ready run
            # sorted; the popped prefix before _ready_pos is all at
            # times <= _instant < when, so it is a safe search floor.
            insort(self._ready, entry, self._ready_pos)
            return
        width = self._width
        if not (when - instant <= OVERFLOW_SPAN * width):
            heappush(self._overflow, entry)
            return
        index = int(when / width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heappush(self._active, index)
        else:
            heappush(bucket, entry)
        self._future += 1
        if self._future >= self._resize_at:
            self._resize()

    def _push_future(self, entry):
        when = entry[0]
        width = self._width
        if not (when - self._instant <= OVERFLOW_SPAN * width):
            # Far-future outlier (or +inf / nan): overflow tier.  The
            # inverted comparison routes non-finite times here too.
            heappush(self._overflow, entry)
            return
        index = int(when / width)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [entry]
            heappush(self._active, index)
        else:
            heappush(bucket, entry)
        self._future += 1
        if self._future >= self._resize_at:
            self._resize()

    # -- dispatch ---------------------------------------------------------

    def pop(self):
        """Remove and return the minimum entry; IndexError if empty."""
        if self._urgent:
            return self._urgent.popleft()
        if self._normal:
            return self._normal.popleft()
        entry = self._advance(None)
        if entry is None:
            raise IndexError("pop from empty CalendarQueue")
        return entry

    def _future_min(self):
        """The minimum future entry (bucket or overflow), or None.

        Lazily discards stale ``_active`` indices left behind by
        ``cancel``; otherwise read-only.
        """
        active = self._active
        buckets = self._buckets
        bucket = None
        while active:
            bucket = buckets.get(active[0])
            if bucket:
                break
            heappop(active)          # stale index from a cancel
            bucket = None
        overflow = self._overflow
        candidate = bucket[0] if bucket else None
        if overflow and (candidate is None or overflow[0] < candidate):
            return overflow[0]
        return candidate

    def _advance(self, deadline):
        """Pop the future minimum and make its time the new instant.

        Returns the popped entry, or None if the queue holds no future
        entry at or before ``deadline`` (a refused advance may still
        have restructured tiers internally — refill below — but never
        changes the observable schedule).  Companion entries at
        exactly the new instant are drained into the FIFO lanes so
        later at-instant pushes (which carry larger ``seq``) slot in
        behind them, preserving FIFO ties.

        The hot path is the rung: a list index, a compare, and a
        cursor bump.  Everything else lives in ``_refill``.
        """
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready):
            entry = ready[pos]
            when = entry[0]
            if deadline is not None and when > deadline:
                return None
            pos += 1
            self._instant = when
            if pos < len(ready) and ready[pos][0] == when:
                urgent, normal = self._urgent, self._normal
                while pos < len(ready) and ready[pos][0] == when:
                    companion = ready[pos]
                    if companion[1]:
                        normal.append(companion)
                    else:
                        urgent.append(companion)
                    pos += 1
            self._ready_pos = pos
            return entry
        return self._refill(deadline)

    def _refill(self, deadline):
        """Lift the next rung (or serve the overflow tier) and advance.

        Picks the minimum live slice, removes it from the calendar
        wholesale, merges in every overflow entry below the slice's
        top bound, sorts the lot once, and installs it as the new
        ready run — then hands the first pop back to ``_advance``.
        Equal times always share a slice under any width, and the
        overflow migration bound is the same ``_limit`` the push path
        honors, so the rung is a complete, in-order prefix of the
        future.

        When only the overflow tier remains (times beyond every
        bucket), entries are served from it directly one instant at a
        time; its times sit at or above ``_limit``, so the stale rung
        window cannot capture pushes that belong behind them.
        """
        active = self._active
        buckets = self._buckets
        bucket = None
        index = 0
        while active:
            index = active[0]
            bucket = buckets.get(index)
            if bucket:
                break
            heappop(active)          # stale index from a cancel
            bucket = None
        overflow = self._overflow
        if bucket is None:
            if not overflow:
                return None
            entry = overflow[0]
            when = entry[0]
            if deadline is not None and when > deadline:
                return None
            heappop(overflow)
            self._instant = when
            if overflow and overflow[0][0] == when:
                urgent, normal = self._urgent, self._normal
                while overflow and overflow[0][0] == when:
                    companion = heappop(overflow)
                    if companion[1]:
                        normal.append(companion)
                    else:
                        urgent.append(companion)
            return entry
        rung = bucket
        del buckets[index]
        heappop(active)
        self._future -= len(rung)
        limit = (index + 1) * self._width
        while overflow and overflow[0][0] < limit:
            rung.append(heappop(overflow))
        rung.sort()
        self._ready = rung
        self._ready_pos = 0
        self._limit = limit
        return self._advance(deadline)

    # -- inspection -------------------------------------------------------

    def peek_entry(self):
        """The next entry to dispatch, or None if empty."""
        if self._urgent:
            return self._urgent[0]
        if self._normal:
            return self._normal[0]
        ready = self._ready
        pos = self._ready_pos
        if pos < len(ready):
            return ready[pos]
        return self._future_min()

    def peek_when(self):
        """Time of the next entry, or None if empty."""
        entry = self.peek_entry()
        return entry[0] if entry is not None else None

    def cancel(self, entry):
        """Remove a pending entry; returns True if it was present."""
        for lane in (self._urgent, self._normal):
            try:
                lane.remove(entry)
            except ValueError:
                continue
            return True
        try:
            position = self._ready.index(entry, self._ready_pos)
        except ValueError:
            pass
        else:
            del self._ready[position]
            return True
        width = self._width
        when = entry[0]
        if when - self._instant <= OVERFLOW_SPAN * width:
            index = int(when / width)
            bucket = self._buckets.get(index)
            if bucket is not None and entry in bucket:
                bucket.remove(entry)
                self._future -= 1
                if bucket:
                    import heapq
                    heapq.heapify(bucket)
                else:
                    # Leave the stale index in _active; _future_min
                    # discards it lazily.
                    del self._buckets[index]
                return True
        if entry in self._overflow:
            self._overflow.remove(entry)
            import heapq
            heapq.heapify(self._overflow)
            return True
        return False

    def __len__(self):
        return (len(self._urgent) + len(self._normal)
                + len(self._ready) - self._ready_pos + self._future
                + len(self._overflow))

    def __repr__(self):
        return ("<CalendarQueue pending=%d width=%g buckets=%d "
                "overflow=%d>" % (len(self), self._width,
                                  len(self._buckets),
                                  len(self._overflow)))

    # -- width auto-resize ------------------------------------------------

    def _resize(self):
        """Re-slice every bucketed entry under a width fit to the load.

        Triggered when the bucketed population doubles past the last
        threshold.  The new width spreads the live span so the average
        slice holds ~``OCCUPANCY`` entries (deep enough that lifting
        one slice as a rung amortizes its bookkeeping); equal times
        always share a slice under any width, so the drain-companions
        invariant survives.
        """
        entries = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        if entries:
            low = min(entry[0] for entry in entries)
            high = max(entry[0] for entry in entries)
            span = high - low
            if span > 0.0:
                width = span * OCCUPANCY / len(entries)
                self._width = min(max(width, MIN_WIDTH), MAX_WIDTH)
        self._buckets = {}
        self._active = []
        self._future = 0
        self._resize_at = max(2 * len(entries), RESIZE_AT)
        for entry in entries:
            self._push_future(entry)
        # _push_future re-counts and may re-arm; pin the threshold
        # after the rebuild so one resize can't cascade into another.
        self._resize_at = max(2 * self._future, RESIZE_AT)


# ---------------------------------------------------------------------------
# Registry and default kind


#: kind -> factory(start_time) -> queue instance.  Tests register
#: additional kinds (including deliberately broken ones) here.
QUEUE_KINDS = {
    HeapQueue.kind: HeapQueue,
    CalendarQueue.kind: CalendarQueue,
}

#: The kind ``Simulator()`` builds by default.  The calendar queue
#: became the default once every equivalence tier (differential
#: harness, property suite, all 11 golden digests) was green; set
#: ``REPRO_QUEUE=heap`` to fall back to the reference scheduler.
_default_kind = os.environ.get("REPRO_QUEUE", CalendarQueue.kind)


def register_kind(kind, factory):
    """Register a scheduler ``factory(start_time)`` under ``kind``."""
    QUEUE_KINDS[kind] = factory


def default_kind():
    """The kind built when ``Simulator(queue=None)``."""
    return _default_kind


def set_default_kind(kind):
    """Set the default kind; returns the previous one.

    Also mirrors the choice into ``REPRO_QUEUE`` so worker processes
    spawned after the call (fleetd/ckpt pools) build the same kind.
    """
    global _default_kind
    if kind not in QUEUE_KINDS:
        raise ValueError("unknown queue kind %r (have %s)"
                         % (kind, ", ".join(sorted(QUEUE_KINDS))))
    previous = _default_kind
    _default_kind = kind
    os.environ["REPRO_QUEUE"] = kind
    return previous


class use_kind:
    """Context manager: run a block under a different default kind."""

    def __init__(self, kind):
        self.kind = kind
        self._previous = None

    def __enter__(self):
        self._previous = set_default_kind(self.kind)
        return self

    def __exit__(self, *exc_info):
        set_default_kind(self._previous)
        return False


def make_queue(kind=None, start_time=0.0):
    """Build a scheduler of ``kind`` (default: :func:`default_kind`).

    ``kind`` may also be an already-constructed queue object, which is
    returned as-is (the differential harness injects instances this
    way).
    """
    if kind is None:
        kind = _default_kind
    if not isinstance(kind, str):
        return kind
    try:
        factory = QUEUE_KINDS[kind]
    except KeyError:
        raise ValueError("unknown queue kind %r (have %s)"
                         % (kind, ", ".join(sorted(QUEUE_KINDS)))) from None
    return factory(start_time)
