"""Object pools and batched link delivery for the kernel hot path.

Fleet-scale runs create millions of short-lived kernel objects —
process bootstrap stubs, interrupt kicks, CPU-slice and sleep
timeouts, per-packet delivery timeouts, and the datagrams themselves.
PR 9's profiles showed the scheduler is only ~5% of runtime; the rest
of the headroom named by the ROADMAP is exactly this allocation
churn.  This module removes it two ways:

* **Free lists** (:class:`EventPool`).  Transient events are drawn
  from per-class free lists and returned right after the kernel
  dispatches them (*recycle-on-dispatch*: the kernel run loops check
  ``event._recycle`` after ``event._process()``).  A recycle fully
  resets the object, bumps its generation counter, and parks the
  ``_RECYCLED`` sentinel in ``_value`` so any stale reference that
  later calls ``succeed``/``fail``/``subscribe``/``value`` raises
  :class:`~repro.sim.events.StaleObjectError` instead of corrupting
  the schedule.  Only *transient* events are pooled — ones whose
  owner provably never touches them after dispatch.  Public composable
  events (``sim.timeout()``, ``sim.event()``) are never pooled:
  transports read ``.triggered`` and ``.value`` long after dispatch.

* **Batched delivery** (:class:`DeliveryLane`).  Without pooling, N
  packets in flight on one link direction are N live ``Timeout``
  objects occupying N scheduler slots.  A lane keeps the whole burst
  in one deque and holds **at most one queued wakeup per direction**,
  re-armed as each packet lands.  Delivery *instants* are observable
  (a receiver resumes at each arrival), so the lane never coalesces
  distinct instants — what batching removes is the N-deep queue
  occupancy and the N allocations, not the dispatches.

Schedule identity is by construction, not by luck: the lane draws the
wakeup's sequence number at **send time** — the exact point the
unpooled code allocates its per-packet timeout — and pins the wakeup
to the same absolute arrival float the unpooled expression produces.
Every scheduler entry is therefore tuple-identical ``(when, priority,
seq)`` between pooling on and off, ties included, which the
differential harness (``tests/sim/differential.py``) verifies per
dispatch and the 11 golden digests pin end to end.

The default is chosen by ``REPRO_POOL`` (``on`` unless set) and
mirrored back into the environment by :func:`set_default_pooling` so
fleetd/ckpt worker processes inherit the parent's choice, exactly
like ``REPRO_QUEUE``.
"""

import os
from collections import deque

from repro.sim.events import (
    Event,
    NORMAL,
    StaleObjectError,  # noqa: F401  (re-exported: pool API surface)
    Timeout,
    URGENT,
    _PENDING,
    _RECYCLED,
)

#: Per-class free-list cap.  Beyond this, recycled objects are dropped
#: to the garbage collector — a backstop against a pathological burst
#: pinning memory forever, far above steady-state needs (one lane
#: wakeup per link direction, a handful of stubs per instant).
FREE_LIST_CAP = 4096


class EventPool:
    """Free lists for transient kernel objects, owned by one simulator.

    Allocation primitives (``stub``/``kick``/``acquire_event``/
    ``sleep``/``timeout_at``/``datagram``) are the *only* way pooled
    objects are born, and :meth:`recycle`/:meth:`recycle_datagram` the
    only way they return.  The determinism linter's SIM002 rule
    confines calls to these primitives to the kernel and net layers.

    Every primitive consumes ``next(sim._sequence)`` (and datagram
    idents) at exactly the same program points as the unpooled code,
    so pooling never shifts a sequence number.
    """

    kind = "on"

    __slots__ = ("sim", "_free_events", "_free_timeouts",
                 "_free_datagrams", "_datagram_cls", "_datagram_ids",
                 "event_allocs", "event_reuses", "timeout_allocs",
                 "timeout_reuses", "datagram_allocs", "datagram_reuses",
                 "recycled", "dropped")

    def __init__(self, sim):
        self.sim = sim
        self._free_events = []
        self._free_timeouts = []
        self._free_datagrams = []
        self._datagram_cls = None
        self._datagram_ids = None
        self.event_allocs = 0
        self.event_reuses = 0
        self.timeout_allocs = 0
        self.timeout_reuses = 0
        self.datagram_allocs = 0
        self.datagram_reuses = 0
        self.recycled = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Raw takes: a fully reset object of the right class, not yet
    # scheduled.  Free-listed objects were reset at recycle time, so
    # the reuse path only flips the sentinel back to pending.
    #
    # The allocation primitives below inline these bodies instead of
    # calling them: a pooled allocation that costs more Python frames
    # than ``Timeout(sim, delay)`` is slower than the allocator it
    # replaces (cProfile on fleet-32 showed exactly that), and the
    # take is two lines.  These methods remain the readable reference
    # semantics and the unit-test probe surface.

    def _take_event(self):
        free = self._free_events
        if free:
            self.event_reuses += 1
            event = free.pop()
            event._value = _PENDING
            return event
        self.event_allocs += 1
        return Event(self.sim)

    def _take_timeout(self):
        free = self._free_timeouts
        if free:
            self.timeout_reuses += 1
            timeout = free.pop()
            timeout._value = _PENDING
            return timeout
        self.timeout_allocs += 1
        return self._fresh_timeout()

    def _fresh_timeout(self):
        # Timeout.__init__ schedules; build the shell directly instead.
        timeout = Timeout.__new__(Timeout)
        timeout.sim = self.sim
        timeout.callbacks = []
        timeout._value = _PENDING
        timeout._ok = None
        timeout._processed = False
        timeout._defused = False
        timeout._gen = 0
        timeout._recycle = False
        timeout.delay = 0.0
        timeout._pending_value = None
        return timeout

    # ------------------------------------------------------------------
    # Allocation primitives

    def stub(self, callback):
        """A born-triggered URGENT event running ``callback(event)``.

        The pooled twin of the inlined bootstrap/_call_soon stubs:
        dispatched once at the current instant, then auto-recycled.
        """
        free = self._free_events
        if free:                         # _take_event(), inlined
            self.event_reuses += 1
            event = free.pop()
        else:
            self.event_allocs += 1
            event = Event(self.sim)
        event.callbacks.append(callback)
        event._ok = True
        event._value = None
        event._recycle = True
        sim = self.sim
        sim._push((sim.now, URGENT, next(sim._sequence), event))
        return event

    def kick(self, callback, exception):
        """A pre-failed, pre-defused URGENT event (interrupt delivery)."""
        free = self._free_events
        if free:                         # _take_event(), inlined
            self.event_reuses += 1
            event = free.pop()
        else:
            self.event_allocs += 1
            event = Event(self.sim)
        event.callbacks.append(callback)
        event._ok = False
        event._value = exception
        event._defused = True
        event._recycle = True
        sim = self.sim
        sim._push((sim.now, URGENT, next(sim._sequence), event))
        return event

    def acquire_event(self):
        """A pending event for a pooled ``Lock.acquire``.

        Not scheduled here: the lock either succeeds it immediately or
        parks it on the waiter queue.  Auto-recycled after dispatch,
        so only locks whose acquire events are yielded inline may use
        it (``Lock(sim, pooled=True)``).
        """
        free = self._free_events
        if free:                         # _take_event(), inlined
            self.event_reuses += 1
            event = free.pop()
            event._value = _PENDING
        else:
            self.event_allocs += 1
            event = Event(self.sim)
        event._recycle = True
        return event

    def sleep(self, delay):
        """A pooled transient timeout ``delay`` seconds from now.

        The schedule tuple is identical to ``Timeout(sim, delay)``.
        The caller must yield it directly and never retain, compose,
        or re-inspect it after it fires — it is recycled on dispatch.
        """
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        free = self._free_timeouts
        if free:                         # _take_timeout(), inlined
            self.timeout_reuses += 1
            timeout = free.pop()
            timeout._value = _PENDING
        else:
            self.timeout_allocs += 1
            timeout = self._fresh_timeout()
        timeout.delay = delay
        timeout._recycle = True
        sim = self.sim
        sim._push((sim.now + delay, NORMAL, next(sim._sequence), timeout))
        return timeout

    def timeout_at(self, when, seq):
        """A pooled timeout pinned to absolute time ``when``.

        The caller supplies the sequence number, drawn at the instant
        the unpooled code would have allocated its timeout — this is
        what lets a :class:`DeliveryLane` re-arm later yet push the
        byte-identical ``(when, NORMAL, seq)`` entry.
        """
        free = self._free_timeouts
        if free:                         # _take_timeout(), inlined
            self.timeout_reuses += 1
            timeout = free.pop()
            timeout._value = _PENDING
        else:
            self.timeout_allocs += 1
            timeout = self._fresh_timeout()
        sim = self.sim
        timeout.delay = when - sim.now
        timeout._recycle = True
        sim._push((when, NORMAL, seq, timeout))
        return timeout

    def delivery_lane(self, deliver):
        """A batched-delivery lane feeding ``deliver(item)`` per packet."""
        return DeliveryLane(self, deliver)

    # ------------------------------------------------------------------
    # Datagrams

    def datagram(self, src, src_port, dst, dst_port, payload, size):
        """A pooled :class:`~repro.net.packet.Datagram`.

        Draws the same global ident counter as direct construction, so
        packet numbering is independent of pooling.
        """
        if self._datagram_cls is None:
            # Bound lazily: repro.sim must stay importable without
            # repro.net, and the first packet pays the lookup once.
            from repro.net import packet
            self._datagram_cls = packet.Datagram
            self._datagram_ids = packet._datagram_ids
        if size <= 0:
            raise ValueError("datagram size must be positive: %r" % size)
        free = self._free_datagrams
        if free:
            self.datagram_reuses += 1
            dgram = free.pop()
            dgram.src = src
            dgram.src_port = src_port
            dgram.dst = dst
            dgram.dst_port = dst_port
            dgram.payload = payload
            dgram.size = size
            dgram.ident = next(self._datagram_ids)
            return dgram
        self.datagram_allocs += 1
        return self._datagram_cls(
            src=src, src_port=src_port, dst=dst, dst_port=dst_port,
            payload=payload, size=size, pooled=True)

    def recycle_datagram(self, dgram):
        """Return a pool-born datagram to the free list.

        A no-op for directly constructed datagrams, so drop paths and
        release points may call this unconditionally.
        """
        if not dgram.pooled:
            return
        dgram.payload = None
        dgram.gen += 1
        free = self._free_datagrams
        if len(free) < FREE_LIST_CAP:
            self.recycled += 1
            free.append(dgram)
        else:
            self.dropped += 1

    # ------------------------------------------------------------------
    # Recycling

    def recycle(self, event):
        """Full-reset ``event`` and return it to its free list.

        Called by the kernel right after dispatch for events born with
        ``_recycle`` set.  The generation bump plus the ``_RECYCLED``
        sentinel make any later touch through a stale reference a hard
        error rather than a silent schedule change.
        """
        # Dispatch leaves the callback list empty: _process swaps in a
        # fresh list before running callbacks, and mid-dispatch
        # subscribes route through _call_soon, never the list.  The
        # truth-test keeps the full-reset guarantee without paying a
        # clear() call per event on the (always-taken) empty path.
        if event.callbacks:
            event.callbacks.clear()
        event._value = _RECYCLED
        event._ok = None
        event._processed = False
        event._defused = False
        event._recycle = False
        event._gen += 1
        cls = type(event)
        if cls is Timeout:
            event._pending_value = None
            free = self._free_timeouts
        elif cls is Event:
            free = self._free_events
        else:
            # Subclasses (Process, Condition) are never marked for
            # recycling; reaching here means a foreign event was
            # flagged by hand — drop it rather than mix classes.
            self.dropped += 1
            return
        if len(free) < FREE_LIST_CAP:
            self.recycled += 1
            free.append(event)
        else:
            self.dropped += 1

    # ------------------------------------------------------------------
    # Introspection

    def stats(self):
        """Plain-int counters (cheap enough to read mid-run)."""
        return {
            "event_allocs": self.event_allocs,
            "event_reuses": self.event_reuses,
            "timeout_allocs": self.timeout_allocs,
            "timeout_reuses": self.timeout_reuses,
            "datagram_allocs": self.datagram_allocs,
            "datagram_reuses": self.datagram_reuses,
            "recycled": self.recycled,
            "dropped": self.dropped,
            "free_events": len(self._free_events),
            "free_timeouts": len(self._free_timeouts),
            "free_datagrams": len(self._free_datagrams),
        }

    def publish(self, metrics):
        """Mirror the counters into obs gauges (pull-style).

        Called from the kernel's run epilogue when an observatory is
        installed; gauges never touch the trace timeline, so the
        golden digests are unaffected.
        """
        for name, value in self.stats().items():
            metrics.gauge("pool.%s" % name).set(value)


class DeliveryLane:
    """One link direction's in-flight burst behind a single wakeup.

    ``schedule(due, item)`` is called at send time with the absolute
    arrival instant; arrivals on a FIFO direction are non-decreasing,
    and the deque preserves exact order regardless.  Each wakeup
    delivers exactly one packet and re-arms for the next, so every
    arrival instant keeps its own dispatch — see the module docstring
    for why that is required for schedule identity.
    """

    __slots__ = ("pool", "sim", "deliver", "_pending", "_armed")

    def __init__(self, pool, deliver):
        self.pool = pool
        self.sim = pool.sim
        self.deliver = deliver
        self._pending = deque()
        self._armed = False

    def __len__(self):
        return len(self._pending)

    def schedule(self, due, item):
        """Queue ``item`` for delivery at absolute time ``due``."""
        # The sequence draw happens here, at send time, exactly where
        # the unpooled per-packet Timeout would consume it.
        sim = self.sim
        seq = next(sim._sequence)
        self._pending.append((due, seq, item))
        if not self._armed:
            self._arm()

    def _arm(self):
        due, seq, _item = self._pending[0]
        self._armed = True
        # pool.timeout_at(due, seq), inlined: this runs once per
        # delivered packet, and the wakeup must cost no more frames
        # than the per-packet Timeout it replaces.
        pool = self.pool
        free = pool._free_timeouts
        if free:
            pool.timeout_reuses += 1
            wakeup = free.pop()
            wakeup._value = _PENDING
        else:
            pool.timeout_allocs += 1
            wakeup = pool._fresh_timeout()
        sim = self.sim
        wakeup.delay = due - sim.now
        wakeup._recycle = True
        wakeup.callbacks.append(self._fire)
        sim._push((due, NORMAL, seq, wakeup))

    def _fire(self, _event):
        _due, _seq, item = self._pending.popleft()
        self._armed = False
        self.deliver(item)
        if self._pending and not self._armed:
            self._arm()


# ---------------------------------------------------------------------------
# Registry and default pooling


#: pooling kind -> factory(sim) -> pool instance (or None for "off").
#: Tests register additional kinds (including deliberately broken
#: ones; see ``tests/sim/broken_pools.py``) here.
POOL_KINDS = {
    "on": EventPool,
    "off": None,
}

#: The pooling ``Simulator()`` uses by default.  Pooling became the
#: default once every equivalence tier (differential kind × pooling
#: grid, property oracle suite, all 11 golden digests) was green; set
#: ``REPRO_POOL=off`` to fall back to per-send allocation.
_default_pooling = os.environ.get("REPRO_POOL", "on")


def register_pooling(kind, factory):
    """Register a pool ``factory(sim)`` under ``kind``."""
    POOL_KINDS[kind] = factory


def default_pooling():
    """The pooling kind built when ``Simulator(pooling=None)``."""
    return _default_pooling


def set_default_pooling(kind):
    """Set the default pooling kind; returns the previous one.

    Also mirrors the choice into ``REPRO_POOL`` so worker processes
    spawned after the call (fleetd/ckpt pools) build the same kind.
    """
    global _default_pooling
    if kind not in POOL_KINDS:
        raise ValueError("unknown pooling kind %r (have %s)"
                         % (kind, ", ".join(sorted(POOL_KINDS))))
    previous = _default_pooling
    _default_pooling = kind
    os.environ["REPRO_POOL"] = kind
    return previous


class use_pooling:
    """Context manager: run a block under a different default pooling."""

    def __init__(self, kind):
        self.kind = kind
        self._previous = None

    def __enter__(self):
        self._previous = set_default_pooling(self.kind)
        return self

    def __exit__(self, *exc_info):
        set_default_pooling(self._previous)
        return False


def make_pool(kind, sim):
    """Build the pool for ``kind`` (default: :func:`default_pooling`).

    Returns None for the "off" kind — the kernel treats a None pool as
    plain per-send allocation.  ``kind`` may also be a factory
    callable taking the simulator (the differential harness injects
    broken pools this way).
    """
    if kind is None:
        kind = _default_pooling
    if not isinstance(kind, str):
        return kind(sim)
    try:
        factory = POOL_KINDS[kind]
    except KeyError:
        raise ValueError("unknown pooling kind %r (have %s)"
                         % (kind, ", ".join(sorted(POOL_KINDS)))) from None
    return None if factory is None else factory(sim)
