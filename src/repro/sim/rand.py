"""Named deterministic random streams.

Every stochastic component of the reproduction (packet loss, trace
generation, client session patterns) draws from a named stream so that
adding randomness to one component never perturbs another — the key to
run-to-run reproducibility of the benchmark tables.
"""

import random


def derive_rng(*parts):
    """The one sanctioned way to build a standalone ``random.Random``.

    Joins ``parts`` with ``::`` into a stable string seed — e.g.
    ``derive_rng("hoard", "user1", 3)`` seeds with ``"hoard::user1::3"``
    — so callers that historically seeded with hand-formatted strings
    keep byte-identical sequences (the benchmark tables must not
    shift).  Components with a live simulator should prefer the named
    streams of :class:`RandomStreams`; this helper exists for code that
    derives generators *before* a simulator exists (trace generation,
    benchmark population synthesis) and is the only call site of
    ``random.Random`` the determinism linter (DET002) permits outside
    this module.
    """
    return random.Random("::".join(str(part) for part in parts))


class RandomStreams:
    """A family of independent :class:`random.Random` generators.

    Streams are keyed by name; the same ``(seed, name)`` pair always
    yields the same sequence.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            # Derive a stable per-stream seed from the master seed and
            # the stream name; Random accepts arbitrary hashable seeds
            # but we use a string for cross-version stability.
            generator = random.Random("%s::%s" % (self.seed, name))
            self._streams[name] = generator
        return generator

    def __getitem__(self, name):
        return self.stream(name)

    def state(self):
        """Picklable ``{name: generator state}`` over every named stream.

        Keys are sorted so the capture is byte-identical however the
        streams were created; :meth:`restore` is the inverse.  This is
        the kernel-level hook checkpointing (:mod:`repro.ckpt`) uses to
        freeze a simulation's entire stochastic future at a boundary.
        """
        return {name: self._streams[name].getstate()
                for name in sorted(self._streams)}

    def restore(self, states):
        """Rewind every named stream to a :meth:`state` capture.

        Streams not yet created are created first; streams outside the
        capture are untouched (they re-derive from the master seed on
        first use, exactly as in the run that produced the capture).
        """
        for name in sorted(states):
            self.stream(name).setstate(states[name])
