"""Named deterministic random streams.

Every stochastic component of the reproduction (packet loss, trace
generation, client session patterns) draws from a named stream so that
adding randomness to one component never perturbs another — the key to
run-to-run reproducibility of the benchmark tables.
"""

import random


class RandomStreams:
    """A family of independent :class:`random.Random` generators.

    Streams are keyed by name; the same ``(seed, name)`` pair always
    yields the same sequence.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            # Derive a stable per-stream seed from the master seed and
            # the stream name; Random accepts arbitrary hashable seeds
            # but we use a string for cross-version stability.
            generator = random.Random("%s::%s" % (self.seed, name))
            self._streams[name] = generator
        return generator

    def __getitem__(self, name):
        return self.stream(name)
