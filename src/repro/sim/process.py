"""Generator-based simulation processes."""

from repro.sim.events import (
    Event,
    Interrupt,
    StaleObjectError,
    URGENT,
    _PENDING,
    _RECYCLED,
)


class Process(Event):
    """A running generator coroutine inside the simulation.

    A process yields :class:`~repro.sim.events.Event` objects and is
    resumed with the event's value when it triggers (or has the event's
    exception thrown into it when it fails).  The process is itself an
    event that triggers with the generator's return value, so processes
    can wait on each other.
    """

    __slots__ = ("_generator", "name", "_target", "_send", "_on_target")

    def __init__(self, sim, generator, name=None):
        super().__init__(sim)
        self._generator = generator
        # Pre-bound: generator.send and self._resume each allocate a
        # fresh bound method per attribute fetch, and _resume needs
        # both once per process step.
        self._send = generator.send
        self._on_target = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        self._target = None
        pool = sim._pool
        if pool is not None:
            # The bootstrap stub is dispatched once and retained by
            # nobody — the canonical pooled transient.
            pool.stub(self._on_target)
            return
        # An inlined bootstrap.succeed(): the stub is born triggered,
        # skipping the already-triggered guard of the public method.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._on_target)
        bootstrap._ok = True
        bootstrap._value = None
        # sim._schedule_event(bootstrap, URGENT) inlined; the tuple
        # pushed is byte-identical.
        sim._push((sim.now, URGENT, next(sim._sequence), bootstrap))

    @property
    def is_alive(self):
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a no-op.  The event the
        process was waiting on (if any) keeps running; the process
        simply stops waiting for it.
        """
        if self.triggered:
            return
        if self._target is not None:
            self._target.unsubscribe(self._on_target)
            self._target = None
        sim = self.sim
        pool = sim._pool
        if pool is not None:
            pool.kick(self._on_target, Interrupt(cause))
            return
        kick = Event(sim)
        kick.callbacks.append(self._on_target)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick._defused = True
        # sim._schedule_event(kick, URGENT) inlined; the tuple pushed
        # is byte-identical.
        sim._push((sim.now, URGENT, next(sim._sequence), kick))

    def _resume(self, event):
        if self._value is not _PENDING:   # i.e. self.triggered
            # A late interrupt kick can arrive after the process already
            # finished (e.g. a failure cascaded into it first during a
            # mass kill); there is nothing left to resume.
            event.defuse()
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event.defuse()
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None
        if not isinstance(target, Event):
            error = RuntimeError(
                "process %r yielded %r, which is not an Event"
                % (self.name, target))
            self._generator.close()
            self.fail(error)
            return
        if target._value is _RECYCLED:
            # Yielding a retained sleep()/pooled event after it fired
            # would silently attach this process to a free-listed
            # object and resume it under some future owner's schedule;
            # fail loudly instead.
            error = StaleObjectError(
                "process %r yielded recycled %r" % (self.name, target))
            self._generator.close()
            self.fail(error)
            return
        self._target = target
        # target.subscribe(self._resume), inlined: this is the single
        # hottest subscription site (once per process step).
        if target._processed:
            self.sim._call_soon(self._on_target, target)
        else:
            target.callbacks.append(self._on_target)

    def __repr__(self):
        return "<Process %s %s>" % (
            self.name, "alive" if self.is_alive else "done")
