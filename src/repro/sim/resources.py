"""Synchronization and queueing primitives built on events."""

from collections import deque

from repro.sim.events import Event, _PENDING


class Lock:
    """A FIFO mutex for simulation processes.

    Usage::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()

    ``pooled=True`` draws acquire events from the simulator's object
    pool and recycles them the moment they dispatch.  Only for locks
    whose acquire events are always yielded inline like the idiom
    above (e.g. the per-host CPU lock, taken once per packet): a
    pooled acquire event must never be stored, composed with
    ``any_of``/``all_of``, or inspected after the waiter resumes.
    """

    def __init__(self, sim, pooled=False):
        self.sim = sim
        self._locked = False
        self._waiters = deque()
        self._pooled = pooled

    @property
    def locked(self):
        return self._locked

    def acquire(self):
        """Return an event that fires once the lock is held by the caller."""
        pool = self.sim._pool if self._pooled else None
        event = pool.acquire_event() if pool is not None else Event(self.sim)
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release the lock, waking the next waiter if any."""
        if not self._locked:
            raise RuntimeError("release of unlocked Lock")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Store:
    """An unbounded FIFO channel of items between processes.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item (immediately if one is queued).
    """

    def __init__(self, sim):
        self.sim = sim
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter._value is _PENDING:   # not yet triggered
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Return an event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def clear(self):
        """Drop all queued items (waiting getters stay queued)."""
        self._items.clear()
