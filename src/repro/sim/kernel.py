"""The simulation kernel: a pluggable event queue and the run loop."""

from heapq import heappop
from itertools import count

from repro.obs.observatory import NULL_OBS
from repro.sim.events import (
    AllOf, AnyOf, Event, Timeout, URGENT, _PENDING, _RECYCLED)
from repro.sim.pool import EventPool, FREE_LIST_CAP, make_pool
from repro.sim.process import Process
from repro.sim.queue import CalendarQueue, HeapQueue, make_queue


class Simulator:
    """A deterministic discrete-event simulator.

    Time is a float in seconds.  Events are executed in
    ``(time, priority, insertion order)`` order, so identical inputs
    always produce identical schedules.

    ``queue`` selects the scheduler (:mod:`repro.sim.queue`): a kind
    name (``"heap"``, ``"calendar"``), an already-built queue object,
    or None for the module default.  Every scheduler honors the same
    total order, which the differential harness and the golden
    timeline digests enforce — so the choice affects speed, never the
    schedule.

    ``obs`` is the observability hook (:mod:`repro.obs`): the null
    observatory by default, replaced by ``Observatory(sim)`` when a
    run is instrumented.  Observation never schedules events, so it
    cannot perturb the schedule.

    ``pooling`` selects the object-pool kind (:mod:`repro.sim.pool`):
    ``"on"``, ``"off"``, a registered kind name, a factory, or None
    for the module default (``REPRO_POOL``).  Pools are
    schedule-identical by construction — every allocation primitive
    consumes the same sequence numbers at the same program points as
    direct allocation — which the differential harness's kind ×
    pooling grid verifies per dispatch.
    """

    def __init__(self, start_time=0.0, queue=None, pooling=None):
        self.now = float(start_time)
        self._queue = make_queue(queue, self.now)
        # Bound once: the trigger sites in events.py/process.py push
        # through this to reach the scheduler without a second
        # attribute hop per event.
        self._push = self._queue.push
        #: The event/packet pool, or None when pooling is off.  Only
        #: the kernel and net layers may call its alloc/recycle
        #: primitives (lint rule SIM002).
        self._pool = make_pool(pooling, self)
        self._sequence = count()
        self._active_process = None
        self.obs = NULL_OBS
        #: Events dispatched over this simulator's lifetime.  A plain
        #: integer (not an obs metric) so ``repro perf`` can compute
        #: events/sec on uninstrumented runs at one-add-per-event cost.
        self.dispatched = 0
        # Named deterministic random streams (repro.sim.rand), attached
        # by the testbed builder so subsystems (e.g. fault injection)
        # can draw from isolated per-component streams.
        self.rand = None
        self._owned = {}    # owner -> [Process]; for crash-style kills

    # ------------------------------------------------------------------
    # Factories

    def event(self):
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay):
        """A transient delay event: yield it directly, never retain it.

        Pooled when pooling is on (recycled the moment it dispatches),
        a plain :class:`Timeout` otherwise — either way the schedule
        tuple is identical.  Use :meth:`timeout` instead whenever the
        event is stored, composed (``any_of``/``all_of``), or
        inspected after it fires: a slept-on event is dead once the
        sleeper resumes.
        """
        pool = self._pool
        if pool is not None:
            return pool.sleep(delay)
        return Timeout(self, delay)

    def process(self, generator, name=None, owner=None):
        """Start ``generator`` as a new :class:`Process`.

        ``owner`` optionally tags the process as belonging to a named
        component (a node, typically) so :meth:`kill_owned` can destroy
        everything that component was running — the crash model's "the
        process and all its volatile state vanish" primitive.
        """
        proc = Process(self, generator, name=name)
        if owner is not None:
            # Prune finished processes so long runs don't accumulate.
            # (p._value is _PENDING) is is_alive with the property
            # machinery skipped — this scan runs per process created.
            alive = [p for p in self._owned.get(owner, ())
                     if p._value is _PENDING]
            alive.append(proc)
            self._owned[owner] = alive
        return proc

    def kill_owned(self, owner, cause=None):
        """Interrupt every live process tagged with ``owner``.

        Each victim is defused first: a killed process fails with
        :class:`Interrupt`, and nobody is expected to be watching a
        process that just ceased to exist.  Returns the kill count.
        """
        procs = self._owned.pop(owner, [])
        killed = 0
        for proc in procs:
            if proc.is_alive:
                proc.defuse()
                proc.interrupt(cause)
                killed += 1
        return killed

    def any_of(self, events):
        """Event that fires when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event that fires when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling internals

    def _schedule_event(self, event, priority, delay=0.0):
        self._push((self.now + delay, priority, next(self._sequence), event))

    def _call_soon(self, callback, *args):
        pool = self._pool
        if pool is not None:
            pool.stub(lambda _evt: callback(*args))
            return
        # An inlined stub.succeed(): the stub is born triggered.
        stub = Event(self)
        stub.callbacks.append(lambda _evt: callback(*args))
        stub._ok = True
        stub._value = None
        self._schedule_event(stub, URGENT)

    # ------------------------------------------------------------------
    # Execution

    def step(self):
        """Process the single next event.  Raises IndexError if empty."""
        when, _prio, _seq, event = self._queue.pop()
        self.now = when
        self.dispatched += 1
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("sim.events_dispatched").inc()
            obs.metrics.gauge("sim.queue_depth").set(len(self._queue))
        event._process()
        if event._recycle:
            self._pool.recycle(event)

    def peek(self):
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue.peek_when()

    def peek_entry(self):
        """The next ``(when, prio, seq, event)`` entry, or None if empty.

        Read-only; the spec schedule probe logs ``entry[:3]`` from here
        so it works against any scheduler, not just the heap.
        """
        return self._queue.peek_entry()

    def run(self, until=None):
        """Run events until the queue drains or ``until`` is reached.

        ``until`` may be a number (absolute simulation time) or an
        :class:`Event`; in the latter case the loop stops as soon as the
        event has been processed and returns its value.
        """
        if isinstance(until, Event):
            stop_event = until
            # The caller observes this event's outcome (we re-raise
            # failures below), so it never counts as unhandled.
            stop_event.defuse()
            # A pooled stop event must survive dispatch un-reset: the
            # loop below reads ``processed`` and ``_value`` after it
            # runs, and a recycled event would reset ``processed`` and
            # spin forever.  Un-marking it simply leaks the object to
            # the garbage collector.
            stop_event._recycle = False
            while not stop_event.processed:
                if not self._queue:
                    raise RuntimeError(
                        "simulation ran dry before %r triggered" % (until,))
                self.step()
            pool = self._pool
            if pool is not None and self.obs.enabled:
                pool.publish(self.obs.metrics)
            if stop_event._ok is False:
                stop_event.defuse()
                raise stop_event._value
            return stop_event._value

        deadline = float("inf") if until is None else float(until)
        queue_obj = self._queue
        pool = self._pool
        # Bound once per run: the recycle hook in the loops below costs
        # one slot load and a predictable branch per dispatch.  Only
        # pool primitives ever set ``_recycle``, so ``recycle`` cannot
        # be None when the branch is taken.  The fast loops inline the
        # recycle body (one call frame per transient event is the
        # difference between pooling winning and losing on fleet-64);
        # a pool subclass that overrides ``recycle`` — the planted-bug
        # fixtures do — keeps the call instead.  ``pool.recycle`` is
        # the readable reference semantics for the inlined block.
        recycle = None if pool is None else pool.recycle
        if pool is not None and type(pool).recycle is EventPool.recycle:
            free_events = pool._free_events
            free_timeouts = pool._free_timeouts
        else:
            free_events = free_timeouts = None
        if "step" in self.__dict__:
            # An instance-level step override (the obs schedule probe
            # wraps it to log every dispatch) must keep seeing each
            # event; take the plain loop.
            peek_when = queue_obj.peek_when
            while True:
                upcoming = peek_when()
                if upcoming is None or upcoming > deadline:
                    break
                self.step()
        elif type(queue_obj) is HeapQueue:
            # Fast path: step() inlined over the reference heap.
            # Locals for the heap list and heappop save a method call
            # plus several attribute loads per event — the single
            # hottest loop in fleet-scale runs.
            queue = queue_obj._heap
            pop = heappop
            cached_obs = dispatch_counter = depth_gauge = None
            done = 0
            # ``dispatched`` accumulates in a local and lands on the
            # instance when the loop exits (even via an unhandled
            # failure) — nothing may read it mid-loop from inside an
            # event callback.
            try:
                while queue and queue[0][0] <= deadline:
                    when, _prio, _seq, event = pop(queue)
                    self.now = when
                    done += 1
                    obs = self.obs
                    if obs.enabled:
                        # Registry lookups are stable per (name,
                        # labels), so hold the two kernel instruments
                        # as long as the same observatory stays
                        # installed.
                        if obs is not cached_obs:
                            cached_obs = obs
                            dispatch_counter = obs.metrics.counter(
                                "sim.events_dispatched")
                            depth_gauge = obs.metrics.gauge(
                                "sim.queue_depth")
                        dispatch_counter.inc()
                        depth_gauge.set(len(queue))
                    event._process()
                    if event._recycle:
                        if free_timeouts is not None:
                            # pool.recycle(event), inlined — see that
                            # method for the commented reference
                            # semantics.
                            if event.callbacks:
                                event.callbacks.clear()
                            event._value = _RECYCLED
                            event._ok = None
                            event._processed = False
                            event._defused = False
                            event._recycle = False
                            event._gen += 1
                            cls = type(event)
                            if cls is Timeout:
                                event._pending_value = None
                                if len(free_timeouts) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_timeouts.append(event)
                                else:
                                    pool.dropped += 1
                            elif cls is Event:
                                if len(free_events) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_events.append(event)
                                else:
                                    pool.dropped += 1
                            else:
                                pool.dropped += 1
                        else:
                            recycle(event)
            finally:
                self.dispatched += done
        elif type(queue_obj) is CalendarQueue:
            # Fast path: step() inlined over the calendar queue.  The
            # at-instant FIFO lanes need no deadline check inside the
            # loop: every lane entry is due at ``_instant``, and
            # ``_advance`` only ever moves the instant to a time at or
            # before the deadline.  A lane left over from a previous
            # ``run(until=Event)`` stop can sit *beyond* this call's
            # deadline, which the one-time guard catches — the heap
            # path dispatches nothing in that situation either.
            urgent = queue_obj._urgent
            normal = queue_obj._normal
            pop_urgent = urgent.popleft
            pop_normal = normal.popleft
            advance = queue_obj._advance
            cached_obs = dispatch_counter = depth_gauge = None
            done = 0
            live = not ((urgent or normal) and queue_obj._instant > deadline)
            try:
                while live:
                    if urgent:
                        when, _prio, _seq, event = pop_urgent()
                    elif normal:
                        when, _prio, _seq, event = pop_normal()
                    else:
                        entry = advance(deadline)
                        if entry is None:
                            break
                        when = entry[0]
                        event = entry[3]
                    self.now = when
                    done += 1
                    obs = self.obs
                    if obs.enabled:
                        if obs is not cached_obs:
                            cached_obs = obs
                            dispatch_counter = obs.metrics.counter(
                                "sim.events_dispatched")
                            depth_gauge = obs.metrics.gauge(
                                "sim.queue_depth")
                        dispatch_counter.inc()
                        depth_gauge.set(len(queue_obj))
                    event._process()
                    if event._recycle:
                        if free_timeouts is not None:
                            # pool.recycle(event), inlined — see that
                            # method for the commented reference
                            # semantics.
                            if event.callbacks:
                                event.callbacks.clear()
                            event._value = _RECYCLED
                            event._ok = None
                            event._processed = False
                            event._defused = False
                            event._recycle = False
                            event._gen += 1
                            cls = type(event)
                            if cls is Timeout:
                                event._pending_value = None
                                if len(free_timeouts) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_timeouts.append(event)
                                else:
                                    pool.dropped += 1
                            elif cls is Event:
                                if len(free_events) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_events.append(event)
                                else:
                                    pool.dropped += 1
                            else:
                                pool.dropped += 1
                        else:
                            recycle(event)
            finally:
                self.dispatched += done
        else:
            # Generic loop for externally supplied schedulers
            # (including deliberately broken ones under the
            # differential harness): only the documented queue
            # interface, no structural assumptions.
            peek_when = queue_obj.peek_when
            pop = queue_obj.pop
            cached_obs = dispatch_counter = depth_gauge = None
            done = 0
            try:
                while True:
                    upcoming = peek_when()
                    if upcoming is None or upcoming > deadline:
                        break
                    when, _prio, _seq, event = pop()
                    self.now = when
                    done += 1
                    obs = self.obs
                    if obs.enabled:
                        if obs is not cached_obs:
                            cached_obs = obs
                            dispatch_counter = obs.metrics.counter(
                                "sim.events_dispatched")
                            depth_gauge = obs.metrics.gauge(
                                "sim.queue_depth")
                        dispatch_counter.inc()
                        depth_gauge.set(len(queue_obj))
                    event._process()
                    if event._recycle:
                        if free_timeouts is not None:
                            # pool.recycle(event), inlined — see that
                            # method for the commented reference
                            # semantics.
                            if event.callbacks:
                                event.callbacks.clear()
                            event._value = _RECYCLED
                            event._ok = None
                            event._processed = False
                            event._defused = False
                            event._recycle = False
                            event._gen += 1
                            cls = type(event)
                            if cls is Timeout:
                                event._pending_value = None
                                if len(free_timeouts) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_timeouts.append(event)
                                else:
                                    pool.dropped += 1
                            elif cls is Event:
                                if len(free_events) < FREE_LIST_CAP:
                                    pool.recycled += 1
                                    free_events.append(event)
                                else:
                                    pool.dropped += 1
                            else:
                                pool.dropped += 1
                        else:
                            recycle(event)
            finally:
                self.dispatched += done
        if pool is not None and self.obs.enabled:
            pool.publish(self.obs.metrics)
        if until is not None:
            self.now = max(self.now, deadline)
        return None

    def __repr__(self):
        return "<Simulator t=%.6f queued=%d>" % (self.now, len(self._queue))
