"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes
wait on events by yielding them; other code triggers them with
:meth:`Event.succeed` or :meth:`Event.fail`.
"""

_PENDING = object()

#: Sentinel parked in ``_value`` while an event sits on a pool free
#: list (:mod:`repro.sim.pool`).  Distinct from ``_PENDING`` so that
#: touching a recycled object through any state-changing API is a hard
#: :class:`StaleObjectError`, never a silent mis-schedule.
_RECYCLED = object()

# Scheduling priorities: urgent events (process resumption bookkeeping)
# run before normal events that fire at the same instant.
URGENT = 0
NORMAL = 1


class StaleObjectError(RuntimeError):
    """A recycled pool object was used through a stale reference.

    Raised by the cold-path event APIs (``succeed``/``fail``/
    ``subscribe``/``value``) when the object has been returned to its
    free list.  Holders that must survive a recycle boundary keep a
    ``(object, object._gen)`` token and compare generations instead.
    """


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The interrupting party supplies an arbitrary ``cause`` explaining
    why (for example, "link went down").
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three phases: *pending* (created), *triggered*
    (value decided, callbacks scheduled), and *processed* (callbacks
    ran).  Callbacks added after processing are delivered immediately
    (at the current simulation instant) so late subscribers never hang.

    ``__slots__`` throughout the event hierarchy: fleet-scale runs
    create millions of events, and slot storage shaves both per-event
    memory and attribute-access time on the kernel's hottest path.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed",
                 "_defused", "_gen", "_recycle")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        # Pool lifecycle (repro.sim.pool): ``_gen`` counts recycles so
        # a holder can detect reuse; ``_recycle`` marks the object for
        # return to its free list right after the kernel dispatches it.
        self._gen = 0
        self._recycle = False

    @property
    def triggered(self):
        """True once the event's outcome (value or failure) is decided."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok is True

    @property
    def value(self):
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        if self._value is _RECYCLED:
            raise StaleObjectError("value read on recycled %r" % self)
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            if self._value is _RECYCLED:
                raise StaleObjectError("succeed() on recycled %r" % self)
            raise RuntimeError("event already triggered")
        self._ok = True
        self._value = value
        # sim._schedule_event(self, URGENT) inlined — the hottest
        # trigger site; the tuple pushed is byte-identical.  sim._push
        # is the scheduler's bound push (C-level for the heap kind).
        sim = self.sim
        sim._push((sim.now, URGENT, next(sim._sequence), self))
        return self

    def fail(self, exception):
        """Trigger the event with a failure carried by ``exception``."""
        if self._value is not _PENDING:
            if self._value is _RECYCLED:
                raise StaleObjectError("fail() on recycled %r" % self)
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule_event(self, URGENT)
        return self

    def defuse(self):
        """Mark a failure as handled so the kernel will not re-raise it."""
        self._defused = True

    def subscribe(self, callback):
        """Arrange for ``callback(event)`` once the event is processed."""
        if self._value is _RECYCLED:
            raise StaleObjectError("subscribe() on recycled %r" % self)
        if self._processed:
            self.sim._call_soon(callback, self)
        else:
            self.callbacks.append(callback)

    def unsubscribe(self, callback):
        """Remove a previously subscribed callback, if still pending."""
        try:
            self.callbacks.remove(callback)
        except ValueError:
            pass

    def _process(self):
        self._processed = True
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if self._ok is False and not self._defused:
            raise UnhandledFailure(self._value)

    def __repr__(self):
        if self._value is _RECYCLED:
            state = "recycled"
        else:
            state = "processed" if self._processed else (
                "triggered" if self.triggered else "pending")
        return "<%s %s at %#x>" % (type(self).__name__, state, id(self))


class UnhandledFailure(Exception):
    """An event failed and no process was waiting to observe it."""


class Timeout(Event):
    """An event that succeeds ``delay`` time units after creation.

    The value is decided up front but the event only *triggers* when
    its time arrives — before that, ``triggered`` is False like any
    other pending event.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise ValueError("negative delay: %r" % (delay,))
        # Event.__init__ inlined: timeouts are the most-created event
        # type (one per packet delivery, CPU slice, and daemon tick),
        # so the extra method call is worth flattening away.
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._gen = 0
        self._recycle = False
        self.delay = delay
        self._pending_value = value
        # sim._schedule_event(self, NORMAL, delay=delay) inlined; the
        # tuple pushed is byte-identical.
        sim._push((sim.now + delay, NORMAL, next(sim._sequence), self))

    def _process(self):
        # Event._process inlined; a timeout cannot fail, so the
        # unhandled-failure check is dropped too.
        self._ok = True
        self._value = self._pending_value
        self._processed = True
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)


class Condition(Event):
    """Base for events composed of several child events."""

    __slots__ = ("_events", "_count_needed", "_count")

    def __init__(self, sim, events, count_needed):
        super().__init__(sim)
        self._events = list(events)
        self._count_needed = count_needed
        self._count = 0
        if not self._events or count_needed == 0:
            self.succeed(self._collect())
            return
        for event in self._events:
            event.subscribe(self._on_child)

    def _collect(self):
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _on_child(self, event):
        if self._value is not _PENDING:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._count_needed:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Succeeds when any child event succeeds; fails if a child fails."""

    __slots__ = ()

    def __init__(self, sim, events):
        events = list(events)
        super().__init__(sim, events, 1 if events else 0)


class AllOf(Condition):
    """Succeeds when all child events have succeeded."""

    __slots__ = ()

    def __init__(self, sim, events):
        events = list(events)
        super().__init__(sim, events, len(events))
