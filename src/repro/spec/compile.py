"""Compile a :class:`~repro.spec.model.ScenarioSpec` into a live run.

The compiler is the single construction path behind every canned
scenario: it builds testbeds and fleet configs in exactly the order
the ``obs``/``faults``/``perf``/``fleetd`` scenario functions used to
(testbed → schedule probe → checker → volumes → hoard profile → link
outages → fault injector → session), which is what keeps the ported
scenarios' golden timeline digests byte-identical.
"""

from dataclasses import dataclass, field

from repro.spec.model import ScenarioSpec
from repro.spec.seeds import master_seed


def probe_schedule(sim, schedule_log):
    """Wrap ``sim.step`` to log each dispatch's scheduler key.

    ``peek_entry`` is the scheduler-neutral view of the next dispatch:
    the determinism regression tests need the raw
    ``(time, priority, seq)`` order, and reading it through the queue
    interface means the probe works (and the logged keys must agree)
    under every queue kind, not just the reference heap.
    """
    original_step = sim.step

    def probed_step():
        schedule_log.append(sim.peek_entry()[:3])
        original_step()

    sim.step = probed_step


def build_testbed(spec, observatory=None, schedule_log=None, checker=None,
                  seed=0, plan=None):
    """The spec's one-client testbed, faults armed, session not yet run.

    ``plan`` overrides the spec's ``network.faults`` rows with an
    already-built :class:`~repro.faults.plan.FaultPlan` (the escape
    hatch ``run_fault_scenario(plan=...)`` always offered).  ``seed``
    is the *master* testbed seed — callers go through
    :func:`run_spec` / :func:`repro.spec.seeds.master_seed` to derive
    it from a CLI seed.
    """
    from repro.bench.common import make_testbed, populate_volume, warm_cache
    from repro.net.profiles import profile_by_name
    from repro.venus import VenusConfig

    overrides = spec.venus_dict()
    if spec.clients.cache_capacity is not None:
        overrides.setdefault("cache_capacity", spec.clients.cache_capacity)
    config = VenusConfig(**overrides) if overrides else None
    testbed = make_testbed(profile_by_name(spec.network.profile),
                           venus_config=config, seed=seed,
                           loss_rate=spec.network.loss_rate,
                           observatory=observatory)
    if schedule_log is not None:
        probe_schedule(testbed.sim, schedule_log)
    if checker is not None:
        checker.attach(testbed)
    for volume_spec in spec.volumes:
        volume = populate_volume(testbed.server, volume_spec.mount,
                                 volume_spec.tree_dict())
        if volume_spec.warm:
            warm_cache(testbed.venus, testbed.server, volume)
    for path, priority, children in spec.clients.hoard:
        testbed.venus.hoard(path, priority, children=children)
    for outage in spec.network.outages:
        testbed.link.outage(after=outage.after, duration=outage.duration)
    if plan is None and spec.network.faults:
        from repro.faults.plan import FaultPlan
        plan = FaultPlan.from_dicts(spec.network.fault_rows())
    if plan is not None:
        from repro.faults.injector import FaultInjector
        testbed.faults = FaultInjector(testbed, plan)
        testbed.faults.start()
    return testbed


def _script_session(testbed, script):
    """Interpret a script of :class:`~repro.spec.model.OpStep` ops.

    ``testbed.venus`` is resolved at every step (never captured) so a
    scripted client keeps operating after a client-crash fault swaps
    the Venus identity — exactly what the hand-written fault scenarios
    did with their late ``testbed.venus`` references.
    """
    from repro.fs.content import SyntheticContent
    from repro.venus.errors import (
        CacheMissError,
        ConflictError,
        NoSpaceError,
        OfflineError,
    )

    ignorable = (OSError, CacheMissError, ConflictError, NoSpaceError,
                 OfflineError)
    sim = testbed.sim
    for step in script:
        venus = testbed.venus
        try:
            if step.op == "connect":
                yield from venus.connect()
            elif step.op == "sleep":
                yield sim.sleep(step.seconds)
            elif step.op == "write":
                content = SyntheticContent(step.size, tag=step.tag)
                yield from venus.write_file(step.path, content)
            elif step.op == "read":
                yield from venus.read_file(step.path)
            elif step.op == "stat":
                yield from venus.stat(step.path)
            elif step.op == "readdir":
                yield from venus.readdir(step.path)
            elif step.op == "evict":
                entry = yield from venus.stat(step.path)
                venus.cache.remove(entry.fid)
            elif step.op == "hoard":
                venus.hoard(step.path, step.priority,
                            children=step.children)
            elif step.op == "walk":
                yield from venus.hoard_walk()
        except ignorable:
            if not step.ignore_errors:
                raise


def run_script_spec(spec, observatory=None, schedule_log=None, checker=None,
                    seed=0, plan=None):
    """Build the testbed and run the spec's script; returns the testbed."""
    testbed = build_testbed(spec, observatory=observatory,
                            schedule_log=schedule_log, checker=checker,
                            seed=seed, plan=plan)
    sim = testbed.sim

    def session():
        yield from _script_session(testbed, spec.workload.script)

    sim.run(sim.process(session()))
    if spec.duration is not None:
        sim.run(until=spec.duration)
    return testbed


def fleet_config(spec, master, days=None, name_prefix=""):
    """The family config a fleet spec compiles to.

    For ``figure9`` this is :class:`repro.bench.fleet.FleetConfig` with
    exactly the fields the perf/fleetd scenario tables used to pass —
    population, days, seed, name prefix, plus any ``workload.mix`` rate
    overrides — so pinned fleet digests cannot move.  ``commuter``
    compiles to :class:`repro.spec.families.CommuterConfig` the same
    way, with ``params`` carrying the diurnal shape.
    """
    kwargs = dict(spec.workload.mix)
    kwargs.update(desktops=spec.clients.desktops,
                  laptops=spec.clients.laptops,
                  days=spec.duration if days is None else days,
                  seed=master, name_prefix=name_prefix)
    if spec.family == "commuter":
        from repro.spec.families import CommuterConfig
        kwargs.update(spec.params_dict())
        return CommuterConfig(**kwargs)
    from repro.bench.fleet import FleetConfig
    return FleetConfig(**kwargs)


def stream_sweep(observatory):
    """Timeline-level invariants every family can be held to.

    The per-testbed :class:`~repro.analysis.invariants.InvariantChecker`
    needs a client to attach to; this sweep instead audits the finished
    trace — timestamps monotone, every event kind inside the closed
    taxonomy — mirroring the ``monotone-time``/``taxonomy`` legs of the
    fleetd merged-invariant sweep.  Returns a list of violation strings.
    """
    from repro.obs.events import EVENT_KINDS

    violations = []
    last = None
    kinds = set()
    for event in observatory.trace.events:
        row = event.to_row()
        if last is not None and row["time"] < last:
            violations.append("monotone-time: %r at %.6f after %.6f"
                              % (row["kind"], row["time"], last))
        last = row["time"]
        kinds.add(row["kind"])
    for kind in sorted(kinds - EVENT_KINDS):
        violations.append("taxonomy: unknown event kind %r" % kind)
    return violations


@dataclass
class RunResult:
    """What :func:`run_spec` hands back, whatever the family."""

    spec: ScenarioSpec
    seed: int
    summary: dict
    testbed: object = None
    reports: tuple = None
    checkers: list = field(default_factory=list)


def _script_summary(testbed):
    from repro.obs.scenarios import fingerprint
    digest = fingerprint(testbed)
    summary = {key: digest[key] for key in (
        "end_time", "cml_len", "cml_appended", "cml_optimized",
        "cml_reintegrated", "chunks_committed", "bytes_shipped",
        "fetches", "operations", "validation_attempts")}
    injector = getattr(testbed, "faults", None)
    if injector is not None:
        summary["faults_injected"] = len(injector.log)
    return summary


def _fleet_summary(desktops, laptops, extras=None):
    reports = list(desktops) + list(laptops)
    attempts = sum(report.attempts for report in reports)
    summary = {
        "clients": len(reports),
        "desktops": len(desktops),
        "laptops": len(laptops),
        "cache_miss_attempts": attempts,
        "mean_missing_pct": round(
            sum(report.missing_pct for report in reports)
            / len(reports), 3) if reports else 0.0,
        "mean_success_pct": round(
            sum(report.success_pct for report in reports)
            / len(reports), 3) if reports else 0.0,
    }
    if extras:
        summary.update(extras)
    return summary


def run_spec(spec, observatory=None, schedule_log=None, checker=None,
             seed=None, days=None, plan=None, check_invariants=False):
    """Validate, compile, and run ``spec``; returns a :class:`RunResult`.

    ``seed`` is the user-facing seed, folded through the spec's
    ``seed_kind`` by :func:`~repro.spec.seeds.master_seed`.  ``days``
    overrides a fleet spec's duration (the REPRO_FAST hook).
    ``check_invariants`` attaches live invariant checkers where the
    family supports them (requires ``observatory``); the caller reads
    ``result.checkers`` for violations.
    """
    spec.check()
    master = master_seed(spec.seed_kind, spec.name, seed)
    checkers = []

    if spec.kind == "fleet":
        from repro.spec.families import fleet_study
        config = fleet_config(spec, master, days=days)
        extras = {}
        desktops, laptops = fleet_study(spec.family)(
            config, observatory=observatory, extras=extras,
            checkers=checkers if check_invariants else None)
        return RunResult(spec=spec, seed=master,
                         summary=_fleet_summary(desktops, laptops, extras),
                         reports=(tuple(desktops), tuple(laptops)),
                         checkers=checkers)

    if check_invariants and checker is None and observatory is not None:
        from repro.analysis.invariants import InvariantChecker
        checker = InvariantChecker(strict=False)
    if checker is not None:
        checkers.append(checker)

    if spec.family == "script":
        testbed = run_script_spec(spec, observatory=observatory,
                                  schedule_log=schedule_log,
                                  checker=checker, seed=master, plan=plan)
        return RunResult(spec=spec, seed=master,
                         summary=_script_summary(testbed), testbed=testbed,
                         checkers=checkers)

    from repro.spec import families
    runner = families.testbed_runner(spec.family)
    testbed, summary = runner(spec, master, observatory=observatory,
                              schedule_log=schedule_log, checker=checker,
                              checkers=checkers)
    return RunResult(spec=spec, seed=master, summary=summary,
                     testbed=testbed, checkers=checkers)
