"""The one sanctioned scenario-seed helper.

``obs``, ``faults``, and ``perf`` each grew a near-identical
``scenario_seed`` that folds a user-facing ``--seed`` into a per-
scenario master seed via :func:`repro.sim.rand.derive_rng`.  The seed
*strings* differ only in the kind prefix (``"obs"``, ``"faults"``,
``"perf"``) and in two conventions that must stay byte-identical so no
golden digest moves:

* obs/faults treat ``seed=None`` as "the historical default": master
  seed ``0``, skipping derivation entirely;
* perf always derives (there is no ``None`` case) and keeps 32 bits
  because :class:`~repro.bench.fleet.FleetConfig` seeds were pinned
  that way.

Spec-native scenarios use kind ``"spec"`` and the default 63 bits.
"""

from repro.sim.rand import derive_rng

#: Seed-kind prefixes with pinned golden digests; new families use
#: "spec".  Kept closed so a typo cannot silently fork a seed universe.
SEED_KINDS = ("obs", "faults", "perf", "spec")


def scenario_seed(kind, name, seed, bits=63):
    """Master seed for scenario ``name`` of ``kind`` given CLI ``seed``.

    ``None`` means "the historical default run" and maps to master seed
    0 — the seed the golden digests were pinned under.  Any integer is
    folded through ``derive_rng(kind, name, seed)`` so different
    scenarios never share a master seed even for equal CLI seeds.
    """
    if kind not in SEED_KINDS:
        raise ValueError("unknown seed kind %r (choose from %s)"
                         % (kind, ", ".join(SEED_KINDS)))
    if seed is None:
        return 0
    return derive_rng(kind, name, seed).getrandbits(bits)


def master_seed(kind, name, seed):
    """Like :func:`scenario_seed` but with each kind's legacy defaults.

    This is what the spec compiler calls.  ``perf``-kind specs keep
    their pinned 32-bit ``FleetConfig`` seeds and always derive (the
    perf CLI default was ``seed=0``, derived, not a literal 0 master);
    ``spec``-kind scenarios likewise always derive, at 63 bits.  Only
    the ``obs``/``faults`` kinds keep the ``None`` → master-0 shortcut
    their golden digests were pinned under.
    """
    if kind == "perf":
        return scenario_seed(kind, name, 0 if seed is None else seed, bits=32)
    if kind == "spec":
        return scenario_seed(kind, name, 0 if seed is None else seed)
    return scenario_seed(kind, name, seed)
