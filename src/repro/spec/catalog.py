"""The shipped scenario catalogue.

Every canned scenario the CLIs know — the obs instrumentation
workloads, the fault scenarios, the perf/fleetd fleet studies, and the
three new families — expressed as :class:`~repro.spec.model.ScenarioSpec`
values.  The legacy subsystems import their scenario tables from here
(via thin wrappers that preserve their public APIs), so this module is
the single source of truth for what a scenario *is*; the golden
timeline digests prove the specs reproduce the hand-written originals
byte for byte.
"""

from repro.spec.model import (
    ClientSpec,
    NetworkSpec,
    OpStep,
    Outage,
    ScenarioSpec,
    VolumeSpec,
    WorkloadSpec,
)

MOUNT = "/coda/usr/bob"

#: The standard one-client testbed volume every ported scenario uses.
STANDARD_VOLUME = VolumeSpec(mount=MOUNT, tree=(
    (MOUNT + "/work", "dir", 0),
    (MOUNT + "/work/draft.tex", "file", 15_000),
    (MOUNT + "/work/figure.eps", "file", 40_000),
    (MOUNT + "/work/notes.txt", "file", 4_000),
))


def _op(op, **fields):
    return OpStep(op=op, **fields)


def _script(name, seed_kind, title, profile, venus, steps, outages=(),
            faults=()):
    return ScenarioSpec(
        name=name, kind="testbed", family="script", seed_kind=seed_kind,
        title=title, venus=venus,
        network=NetworkSpec(profile=profile, outages=outages,
                            faults=faults),
        volumes=(STANDARD_VOLUME,),
        workload=WorkloadSpec(script=steps))


def _fleet(name, seed_kind, title, desktops, laptops, days, shards=None,
           family="figure9", params=()):
    return ScenarioSpec(
        name=name, kind="fleet", family=family, seed_kind=seed_kind,
        title=title, duration=days, shards=shards,
        clients=ClientSpec(count=1, desktops=desktops, laptops=laptops),
        params=params)


# ----------------------------------------------------------------------
# obs ports (repro.obs.scenarios)

TRICKLE = _script(
    "trickle", "obs",
    "Weak-link trickle reintegration over a 9.6 Kb/s modem",
    "Modem",
    {"aging_window": 300.0, "chunk_seconds": 30.0, "daemon_period": 5.0},
    (
        _op("connect"),
        _op("write", path=MOUNT + "/work/draft.tex", size=16_000),
        _op("sleep", seconds=120.0),
        _op("write", path=MOUNT + "/work/draft.tex", size=17_000),
        _op("write", path=MOUNT + "/work/results.dat", size=120_000),
        _op("sleep", seconds=600.0),
        _op("evict", path=MOUNT + "/work/figure.eps"),
        _op("hoard", path=MOUNT + "/work/figure.eps", priority=900),
        _op("read", path=MOUNT + "/work/figure.eps"),
        _op("sleep", seconds=900.0),
    ))

OUTAGE = _script(
    "outage", "obs",
    "Intermittence over WaveLan: outage, reconnection, validation",
    "WaveLan",
    {"aging_window": 60.0, "daemon_period": 5.0, "probe_interval": 30.0},
    (
        _op("connect"),
        _op("write", path=MOUNT + "/work/notes.txt", size=6_000),
        _op("sleep", seconds=90.0),    # now inside the outage
        _op("write", path=MOUNT + "/work/draft.tex", size=18_000,
            ignore_errors=True),
        _op("sleep", seconds=300.0),   # probes fire, CML drains
        _op("read", path=MOUNT + "/work/figure.eps"),
        _op("sleep", seconds=120.0),
    ),
    outages=(Outage(after=60.0, duration=120.0),))


# ----------------------------------------------------------------------
# faults ports (repro.faults.scenarios)

SMOKE = _script(
    "smoke", "faults",
    "Everything once, briefly: outage, loss burst, client crash",
    "Modem",
    # The short walk interval gives the client volume stamps (and the
    # snapshot taken at the crash keeps them), so the restart goes
    # through rapid validation, Figures 8-9.
    {"aging_window": 30.0, "daemon_period": 5.0, "probe_interval": 30.0,
     "hoard_walk_interval": 120.0},
    (
        _op("connect"),
        _op("write", path=MOUNT + "/work/notes.txt", size=6_000,
            tag=("smoke", 1)),
        _op("sleep", seconds=55.0),
        _op("write", path=MOUNT + "/work/draft.tex", size=16_000,
            tag=("smoke", 2)),
        _op("sleep", seconds=100.0),
        _op("write", path=MOUNT + "/work/results.dat", size=40_000,
            tag=("smoke", 3)),
        _op("sleep", seconds=130.0),
        # ~290 s: logged just before the scripted crash at 310 s; the
        # record must survive the crash inside the snapshot.
        _op("write", path=MOUNT + "/work/report.txt", size=8_000,
            tag=("smoke", 4)),
        _op("sleep", seconds=400.0),
        # The restarted Venus has reconnected and drained by now.
        _op("read", path=MOUNT + "/work/draft.tex"),
    ),
    faults=(
        {"kind": "link_outage", "at": 90.0, "duration": 40.0},
        {"kind": "loss_burst", "at": 200.0, "duration": 40.0,
         "loss_rate": 0.25},
        {"kind": "client_crash", "at": 310.0},
        {"kind": "client_restart", "at": 340.0},
    ))

CLIENT_CRASH = _script(
    "client-crash", "faults",
    "A client dies mid-trickle and resumes from the barrier",
    "Modem",
    {"aging_window": 30.0, "daemon_period": 5.0, "probe_interval": 30.0},
    (
        _op("connect"),
        _op("write", path=MOUNT + "/work/notes.txt", size=5_000,
            tag=("ccrash", 1)),
        _op("sleep", seconds=80.0),
        # Aged at ~115 s, this 60 KB store is mid-flight (≈55 s on a
        # modem) when the crash lands at 130 s.
        _op("write", path=MOUNT + "/work/results.dat", size=60_000,
            tag=("ccrash", 2)),
        _op("sleep", seconds=520.0),
        _op("read", path=MOUNT + "/work/results.dat"),
    ),
    faults=(
        {"kind": "client_crash", "at": 130.0},
        {"kind": "client_restart", "at": 160.0},
    ))

SERVER_CRASH = _script(
    "server-crash", "faults",
    "A server dies mid-reintegration and comes back 30 s later",
    "Modem",
    {"aging_window": 20.0, "daemon_period": 5.0, "probe_interval": 30.0},
    (
        _op("connect"),
        _op("write", path=MOUNT + "/work/draft.tex", size=16_000,
            tag=("scrash", 1)),
        _op("sleep", seconds=65.0),
        # Aged at ~90 s; the ~27 s transfer straddles the crash at 100.
        _op("write", path=MOUNT + "/work/results.dat", size=30_000,
            tag=("scrash", 2)),
        _op("sleep", seconds=500.0),
        _op("read", path=MOUNT + "/work/results.dat"),
    ),
    faults=(
        {"kind": "server_crash", "at": 100.0},
        {"kind": "server_restart", "at": 130.0},
    ))


# ----------------------------------------------------------------------
# fleet studies (repro.perf.scenarios / repro.fleetd.plan)

FLEET_8 = _fleet("fleet-8", "perf", "Figure 9 fleet, 8 clients",
                 desktops=5, laptops=3, days=2.0, shards=2)
FLEET_32 = _fleet("fleet-32", "perf", "Figure 9 fleet, 32 clients",
                  desktops=20, laptops=12, days=1.0, shards=4)
FLEET_64 = _fleet("fleet-64", "perf", "Figure 9 fleet, 64 clients",
                  desktops=40, laptops=24, days=1.0, shards=8)
FLEET_GOLDEN = _fleet("fleet-golden", "perf",
                      "Tiny pinned fleet for the golden fixtures",
                      desktops=2, laptops=1, days=0.5)
FLEET_256 = _fleet("fleet-256", "perf", "Figure 9 fleet, 256 clients",
                   desktops=160, laptops=96, days=0.5, shards=16)
FLEET_1024 = _fleet("fleet-1024", "perf", "Figure 9 fleet, 1024 clients",
                    desktops=640, laptops=384, days=0.125, shards=32)


# ----------------------------------------------------------------------
# new families

COMMUTER = _fleet(
    "commuter", "spec",
    "Diurnal fleet: laptops commute off the network twice a day",
    desktops=16, laptops=12, days=1.0, shards=4, family="commuter",
    params={"work_start": 9.0, "work_end": 17.5,
            "commute_minutes": 40.0, "off_hours_activity": 0.15})

CONFLICT_STORM = ScenarioSpec(
    name="conflict-storm", kind="testbed", family="conflict-storm",
    seed_kind="spec",
    title="Many writers on one shared volume: reintegration conflicts"
          " and repair",
    params={"writers": 6, "files": 8, "file_size": 12_000, "rounds": 2,
            "round_minutes": 30.0, "writes_per_round": 3,
            "keep_mine_every": 2, "drain_seconds": 240.0})

DOC_ARCHIVE = ScenarioSpec(
    name="doc-archive", kind="testbed", family="doc-archive",
    seed_kind="spec",
    title="Stanski-style archive: hoarded prefetch containers under"
          " the patience model",
    params={"containers": 6, "docs_per_container": 8, "doc_size": 24_000,
            "hoarded_containers": 2, "hoard_priority": 600, "reads": 60,
            "think_seconds": 40.0, "annotate_every": 5,
            "note_size": 2_000, "locality": 0.7, "commute_at": 600.0,
            "weak_bps": 9_600.0, "weak_minutes": 90.0})


#: name -> spec, in presentation order.
CATALOG = {spec.name: spec for spec in (
    TRICKLE, OUTAGE,
    SMOKE, CLIENT_CRASH, SERVER_CRASH,
    FLEET_8, FLEET_32, FLEET_64, FLEET_GOLDEN, FLEET_256, FLEET_1024,
    COMMUTER, CONFLICT_STORM, DOC_ARCHIVE,
)}


def shipped():
    """Every shipped spec, catalogue order."""
    return list(CATALOG.values())


def get(name):
    """Spec by name; ValueError lists the valid choices."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ValueError("unknown spec %r (have %s)"
                         % (name, ", ".join(sorted(CATALOG)))) from None


#: REPRO_FAST parameter overrides per family (fleet days are scaled
#: separately, mirroring the fleetd CLI's days/8 convention).
FAST_PARAMS = {
    "conflict-storm": {"writers": 4, "rounds": 1},
    "doc-archive": {"reads": 16, "containers": 3, "hoarded_containers": 1,
                    "commute_at": 200.0},
}

#: REPRO_FAST fleet shapes per family.  The generic days/8 cut is
#: wrong for the diurnal commuter — a 3 h window misses both commute
#: edges — so its fast variant shrinks the fleet instead and keeps
#: 0.75 day, long enough to cover the morning and evening commutes.
FAST_FLEET = {
    "commuter": {"desktops": 2, "laptops": 2, "days": 0.75},
}


def fast_spec(spec):
    """The REPRO_FAST-scale variant of a shipped spec."""
    overrides = FAST_PARAMS.get(spec.family)
    return spec.with_params(**overrides) if overrides else spec
