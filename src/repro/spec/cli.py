"""``repro spec`` — inspect, validate, and run declarative scenarios.

Subcommands::

    repro spec list                  # the shipped catalogue, one line each
    repro spec show <name>           # a spec's canonical JSON document
    repro spec validate --all        # strict-check every shipped spec
    repro spec validate <name>...    # ...or just the named ones
    repro spec run <name>            # compile and run, with a summary

``run`` honors ``REPRO_FAST=1`` the way the fleetd CLI does: fleet
specs get an eighth of their catalogue duration (or the family's
:data:`~repro.spec.catalog.FAST_FLEET` shape, where a straight time
cut would skip the behaviour under test), testbed families get their
:data:`~repro.spec.catalog.FAST_PARAMS` overrides.  Golden digests
always pin the full-scale entry points in :mod:`repro.spec.golden`,
which ignore the environment.
"""

import argparse
import json
import os
import sys


def _cmd_list(args):
    from repro.spec.catalog import shipped
    for spec in shipped():
        clients = (spec.clients.desktops + spec.clients.laptops
                   if spec.kind == "fleet" else spec.clients.count)
        duration = ("%g day(s)" % spec.duration
                    if spec.kind == "fleet" else "workload")
        print("%-16s %-8s %-15s %4d client(s)  %-10s %s"
              % (spec.name, spec.kind, spec.family, clients, duration,
                 spec.title))
    return 0


def _cmd_show(args):
    from repro.spec.catalog import get
    try:
        spec = get(args.name)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(spec.to_json(indent=2))
    return 0


def _validate_one(spec):
    """Strict-check one spec plus its serialization round trip.

    Returns a list of error strings (empty when the spec is sound).
    The round trip — spec -> JSON -> spec, compared for equality —
    catches fields that validate live but do not survive the canonical
    document form, which would break every consumer of shipped specs.
    """
    from repro.spec.model import ScenarioSpec, SpecError
    try:
        spec.check()
    except SpecError as exc:
        return list(exc.errors)
    try:
        again = ScenarioSpec.from_json(spec.to_json())
    except (SpecError, ValueError) as exc:
        return ["round-trip: %s" % exc]
    if again != spec:
        return ["round-trip: spec != from_json(to_json(spec))"]
    return []


def _cmd_validate(args):
    from repro.spec.catalog import get, shipped
    if args.all:
        specs = shipped()
    elif args.names:
        specs = []
        for name in args.names:
            try:
                specs.append(get(name))
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
    else:
        print("repro spec validate: name one or more specs, or --all",
              file=sys.stderr)
        return 2
    failures = 0
    for spec in specs:
        errors = _validate_one(spec)
        if errors:
            failures += 1
            print("%-16s INVALID" % spec.name)
            for error in errors:
                print("    " + error)
        else:
            print("%-16s ok" % spec.name)
    if failures:
        print("%d of %d spec(s) invalid" % (failures, len(specs)))
        return 1
    print("%d spec(s) valid" % len(specs))
    return 0


def _fast_variant(spec, days):
    """(spec, days) after REPRO_FAST scaling, CLI override winning."""
    if not os.environ.get("REPRO_FAST"):
        return spec, days
    from repro.spec.catalog import FAST_FLEET, fast_spec
    if spec.kind == "fleet":
        shape = FAST_FLEET.get(spec.family)
        if shape:
            from dataclasses import replace
            clients = replace(spec.clients,
                              count=shape["desktops"] + shape["laptops"],
                              desktops=shape["desktops"],
                              laptops=shape["laptops"])
            spec = replace(spec, clients=clients)
            return spec, shape["days"] if days is None else days
        return spec, spec.duration / 8.0 if days is None else days
    return fast_spec(spec), days


def _cmd_run(args):
    from repro.obs import Observatory, report
    from repro.spec.catalog import get
    from repro.spec.compile import run_spec, stream_sweep

    try:
        spec = get(args.name)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    spec, days = _fast_variant(spec, args.days)
    observatory = Observatory()
    result = run_spec(spec, observatory=observatory, seed=args.seed,
                      days=days, check_invariants=args.check_invariants)
    print("spec %s (%s/%s): %s"
          % (spec.name, spec.kind, spec.family, spec.title))
    for key in sorted(result.summary):
        print("  %-26s %s" % (key, result.summary[key]))
    print(report.summary(observatory))
    if args.json:
        payload = {"spec": spec.to_dict(), "seed": result.seed,
                   "summary": result.summary}
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.out)
    if not args.check_invariants:
        return 0
    violations = list(stream_sweep(observatory))
    checks = 0
    for checker in result.checkers:
        checker.check_all()
        checks += checker.checks
        violations.extend(v.format() for v in checker.violations)
    print("invariants: %d checker(s), %d check(s), %d violation(s)"
          % (len(result.checkers), checks, len(violations)))
    for violation in violations:
        print("  " + violation)
    return 1 if violations else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro spec",
        description="Inspect, validate, and run declarative scenario "
                    "specs (the shipped catalogue)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="the shipped catalogue, one per line")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("show", help="print a spec's canonical JSON")
    p.add_argument("name")
    p.set_defaults(fn=_cmd_show)

    p = sub.add_parser(
        "validate",
        help="strict-check specs (exit 1 on any invalid, listing "
             "per-spec errors)")
    p.add_argument("names", nargs="*",
                   help="spec names (default: require --all)")
    p.add_argument("--all", action="store_true",
                   help="validate every shipped spec")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "run",
        help="compile and run a spec; print its summary report")
    p.add_argument("name")
    p.add_argument("--seed", type=int, default=None,
                   help="alternate stream universe (folded through the "
                        "spec's seed kind); default: the canonical "
                        "golden-pinned streams")
    p.add_argument("--days", type=float, default=None,
                   help="override a fleet spec's simulated days")
    p.add_argument("--check-invariants", action="store_true",
                   help="attach invariant checkers and audit the event "
                        "stream; exit 1 on any violation")
    p.add_argument("--json", action="store_true",
                   help="write the spec, seed, and summary as JSON")
    p.add_argument("--out", default="SPEC_report.json",
                   help="path for --json output "
                        "(default SPEC_report.json)")
    p.set_defaults(fn=_cmd_run)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
