"""The declarative scenario model.

A :class:`ScenarioSpec` is a frozen, hashable value describing one
experiment: clients (count, cache size, hoard profile), volumes
(mount, tree), network (profile, loss, outages, fault plan), workload
(script of ops or a stochastic mix), and duration.  Specs validate
strictly (:meth:`ScenarioSpec.validate` collects *every* problem, not
just the first) and round-trip through dicts and JSON without loss:
``ScenarioSpec.from_json(spec.to_json()) == spec``.

Nothing in this module runs a simulation; compilation to the live
testbed/fleet machinery lives in :mod:`repro.spec.compile`.
"""

import json
import re
from dataclasses import dataclass, field, fields, replace

from repro.spec.seeds import SEED_KINDS

_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")

#: Scenario kinds: "testbed" runs one instrumented client against one
#: server; "fleet" runs a population study (optionally sharded).
KINDS = ("testbed", "fleet")

#: Families per kind.  "script" interprets workload.script on a single
#: testbed; the others are measured workload generators in
#: :mod:`repro.spec.families` / :mod:`repro.bench.fleet`.
TESTBED_FAMILIES = ("script", "conflict-storm", "doc-archive")
FLEET_FAMILIES = ("figure9", "commuter")

#: Script op vocabulary: op -> (required fields, optional fields).
#: "ignore_errors" is accepted by every op.
OPS = {
    "connect": ((), ()),
    "sleep": (("seconds",), ()),
    "write": (("path", "size"), ("tag",)),
    "read": (("path",), ()),
    "stat": (("path",), ()),
    "readdir": (("path",), ()),
    "evict": (("path",), ()),
    "hoard": (("path", "priority"), ("children",)),
    "walk": ((), ()),
}

#: Tunable parameters each non-script family accepts (values are
#: checked to be positive numbers; semantics live in the family's
#: config dataclass in repro.spec.families).
FAMILY_PARAMS = {
    "script": (),
    "figure9": (),
    "conflict-storm": ("writers", "files", "file_size", "rounds",
                       "round_minutes", "writes_per_round",
                       "keep_mine_every", "drain_seconds"),
    "doc-archive": ("containers", "docs_per_container", "doc_size",
                    "hoarded_containers", "hoard_priority", "reads",
                    "think_seconds", "annotate_every", "note_size",
                    "locality", "commute_at", "weak_bps",
                    "weak_minutes"),
    "commuter": ("work_start", "work_end", "commute_minutes",
                 "off_hours_activity", "shared_volumes",
                 "system_volumes", "extra_volumes", "files_per_volume",
                 "file_size", "private_writes_per_day",
                 "shared_writes_per_day", "reads_per_day",
                 "roams_per_day", "evictions_per_day",
                 "system_updates_per_day", "desktop_outages_per_day",
                 "outage_minutes", "flaky_reconnect_prob"),
}


class SpecError(ValueError):
    """A scenario spec failed validation; ``errors`` lists everything."""

    def __init__(self, name, errors):
        self.name = name
        self.errors = tuple(errors)
        lines = "\n".join("  - %s" % error for error in self.errors)
        super().__init__("invalid spec %r (%d error%s):\n%s" % (
            name, len(self.errors),
            "" if len(self.errors) == 1 else "s", lines))


def _pairs(value):
    """Canonicalise a mapping/iterable-of-pairs to a sorted tuple."""
    if isinstance(value, dict):
        items = value.items()
    else:
        items = [tuple(item) for item in value]
    return tuple(sorted((str(key), val) for key, val in items))


def _number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class OpStep:
    """One step of a scripted workload session."""

    op: str
    path: str = None
    size: int = None
    tag: tuple = None
    seconds: float = None
    priority: int = None
    children: bool = False
    ignore_errors: bool = False

    def __post_init__(self):
        if isinstance(self.tag, list):
            object.__setattr__(self, "tag", tuple(self.tag))

    def validate(self, where):
        errors = []
        if self.op not in OPS:
            errors.append("%s: unknown op %r (choose from %s)"
                          % (where, self.op, ", ".join(sorted(OPS))))
            return errors
        required, optional = OPS[self.op]
        allowed = set(required) | set(optional)
        for name in required:
            if getattr(self, name) is None:
                errors.append("%s: op %r requires %r"
                              % (where, self.op, name))
        for spec_field in fields(self):
            name = spec_field.name
            if name in ("op", "ignore_errors") or name in allowed:
                continue
            if getattr(self, name) not in (None, False):
                errors.append("%s: op %r does not take %r"
                              % (where, self.op, name))
        if self.seconds is not None and (
                not _number(self.seconds) or self.seconds < 0):
            errors.append("%s: seconds must be a non-negative number"
                          % where)
        if self.size is not None and (
                not isinstance(self.size, int) or self.size < 0):
            errors.append("%s: size must be a non-negative int" % where)
        if self.priority is not None and (
                not isinstance(self.priority, int) or self.priority <= 0):
            errors.append("%s: priority must be a positive int" % where)
        if self.path is not None and (
                not isinstance(self.path, str)
                or not self.path.startswith("/")):
            errors.append("%s: path must be absolute" % where)
        return errors

    def to_dict(self):
        data = {"op": self.op}
        for spec_field in fields(self):
            name = spec_field.name
            value = getattr(self, name)
            if name != "op" and value not in (None, False):
                data[name] = list(value) if isinstance(value, tuple) else value
        return data

    @classmethod
    def from_dict(cls, data, where="op"):
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(where, ["%s: unknown key(s) %s"
                                    % (where, ", ".join(unknown))])
        return cls(**data)


@dataclass(frozen=True)
class Outage:
    """A single scheduled link outage (arms ``link.outage``)."""

    after: float
    duration: float

    def validate(self, where):
        errors = []
        if not _number(self.after) or self.after < 0:
            errors.append("%s: after must be a non-negative number" % where)
        if not _number(self.duration) or self.duration <= 0:
            errors.append("%s: duration must be a positive number" % where)
        return errors


@dataclass(frozen=True)
class NetworkSpec:
    """Connectivity: a named profile plus outages and a fault plan.

    ``faults`` holds :class:`repro.faults.plan.FaultPlan` rows in their
    ``to_dicts`` form so specs stay plain data; the compiler rebuilds
    the plan with ``FaultPlan.from_dicts``.  Rows are canonicalised to
    sorted key/value pair tuples so the whole spec stays hashable;
    :meth:`fault_rows` gives them back as the dicts the fault plan
    machinery takes.
    """

    profile: str = "Modem"
    loss_rate: float = None
    outages: tuple = ()
    faults: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "outages", tuple(
            outage if isinstance(outage, Outage) else Outage(**outage)
            for outage in self.outages))
        object.__setattr__(self, "faults", tuple(
            _pairs(row) for row in self.faults))

    def fault_rows(self):
        """The fault plan as ``FaultPlan.from_dicts`` rows."""
        return [dict(row) for row in self.faults]

    def validate(self, where="network"):
        errors = []
        from repro.net.profiles import profile_by_name
        try:
            profile_by_name(self.profile)
        except (KeyError, TypeError):
            errors.append("%s: unknown profile %r" % (where, self.profile))
        if self.loss_rate is not None and (
                not _number(self.loss_rate)
                or not 0.0 <= self.loss_rate <= 1.0):
            errors.append("%s: loss_rate must be in [0, 1]" % where)
        for index, outage in enumerate(self.outages):
            errors.extend(outage.validate("%s.outages[%d]" % (where, index)))
        if self.faults:
            from repro.faults.plan import FaultPlan
            try:
                FaultPlan.from_dicts(self.fault_rows())
            except (ValueError, TypeError, KeyError) as exc:
                errors.append("%s.faults: %s" % (where, exc))
        return errors

    def to_dict(self):
        data = {"profile": self.profile}
        if self.loss_rate is not None:
            data["loss_rate"] = self.loss_rate
        if self.outages:
            data["outages"] = [{"after": outage.after,
                                "duration": outage.duration}
                               for outage in self.outages]
        if self.faults:
            data["faults"] = self.fault_rows()
        return data


@dataclass(frozen=True)
class VolumeSpec:
    """A server volume: mount point plus its initial tree.

    ``tree`` is a tuple of ``(path, kind, size)`` triples with kind
    ``"dir"`` or ``"file"`` — the serialisable form of the dict
    :func:`repro.bench.common.populate_volume` takes.
    """

    mount: str
    tree: tuple = ()
    warm: bool = True

    def __post_init__(self):
        object.__setattr__(self, "tree", tuple(
            tuple(entry) for entry in self.tree))

    def validate(self, where="volume"):
        errors = []
        if not isinstance(self.mount, str) or not self.mount.startswith("/"):
            errors.append("%s: mount must be an absolute path" % where)
            return errors
        for entry in self.tree:
            if len(entry) != 3:
                errors.append("%s: tree entries are (path, kind, size),"
                              " got %r" % (where, (entry,)))
                continue
            path, kind, size = entry
            if not isinstance(path, str) or not path.startswith(
                    self.mount + "/"):
                errors.append("%s: tree path %r must live under %s/"
                              % (where, path, self.mount))
            if kind not in ("dir", "file"):
                errors.append("%s: tree kind for %r must be 'dir' or"
                              " 'file'" % (where, path))
            if not isinstance(size, int) or size < 0 or (
                    kind == "dir" and size != 0):
                errors.append("%s: bad size %r for %r" % (where, size, path))
        return errors

    def tree_dict(self):
        """The ``populate_volume`` form: path -> (kind, size)."""
        return {path: (kind, size) for path, kind, size in self.tree}

    def to_dict(self):
        data = {"mount": self.mount,
                "tree": [list(entry) for entry in self.tree]}
        if not self.warm:
            data["warm"] = False
        return data


@dataclass(frozen=True)
class ClientSpec:
    """The client population.

    Testbed scenarios use ``count`` (currently always 1 instrumented
    client) plus optional cache sizing and a hoard profile applied
    after the volumes exist; fleet scenarios use the desktop/laptop
    split.  ``hoard`` entries are ``(path, priority, children)``.
    """

    count: int = 1
    desktops: int = 0
    laptops: int = 0
    cache_capacity: int = None
    hoard: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "hoard", tuple(
            tuple(entry) for entry in self.hoard))

    def validate(self, kind, where="clients"):
        errors = []
        if kind == "testbed":
            if self.count != 1:
                errors.append("%s: testbed scenarios take exactly one"
                              " scripted client (count=1)" % where)
            if self.desktops or self.laptops:
                errors.append("%s: desktops/laptops are fleet-only" % where)
        else:
            if self.desktops + self.laptops < 1:
                errors.append("%s: fleet scenarios need desktops +"
                              " laptops >= 1" % where)
            if self.cache_capacity is not None or self.hoard:
                errors.append("%s: cache_capacity/hoard are testbed-only"
                              % where)
        if self.cache_capacity is not None and (
                not isinstance(self.cache_capacity, int)
                or self.cache_capacity <= 0):
            errors.append("%s: cache_capacity must be a positive int" % where)
        for entry in self.hoard:
            if (len(entry) != 3 or not isinstance(entry[0], str)
                    or not entry[0].startswith("/")
                    or not isinstance(entry[1], int) or entry[1] <= 0
                    or not isinstance(entry[2], bool)):
                errors.append("%s: hoard entries are (path, priority,"
                              " children), got %r" % (where, (entry,)))
        return errors

    def to_dict(self):
        data = {}
        if self.count != 1:
            data["count"] = self.count
        if self.desktops:
            data["desktops"] = self.desktops
        if self.laptops:
            data["laptops"] = self.laptops
        if self.cache_capacity is not None:
            data["cache_capacity"] = self.cache_capacity
        if self.hoard:
            data["hoard"] = [list(entry) for entry in self.hoard]
        return data


@dataclass(frozen=True)
class WorkloadSpec:
    """What the clients do: a script of ops, or a stochastic mix.

    ``mix`` overrides rate fields of the fleet family's config (e.g.
    ``reads_per_day``) as a sorted tuple of ``(name, value)`` pairs.
    """

    script: tuple = ()
    mix: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "script", tuple(
            step if isinstance(step, OpStep) else OpStep.from_dict(step)
            for step in self.script))
        object.__setattr__(self, "mix", _pairs(self.mix))

    def validate(self, where="workload"):
        errors = []
        for index, step in enumerate(self.script):
            errors.extend(step.validate("%s.script[%d]" % (where, index)))
        for name, value in self.mix:
            if not _number(value) or value < 0:
                errors.append("%s.mix: %s must be a non-negative number"
                              % (where, name))
        return errors

    def mix_dict(self):
        return dict(self.mix)

    def to_dict(self):
        data = {}
        if self.script:
            data["script"] = [step.to_dict() for step in self.script]
        if self.mix:
            data["mix"] = dict(self.mix)
        return data


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable experiment description."""

    name: str
    kind: str
    family: str
    seed_kind: str = "spec"
    title: str = ""
    duration: float = None
    shards: int = None
    venus: tuple = ()
    network: NetworkSpec = field(default_factory=NetworkSpec)
    volumes: tuple = ()
    clients: ClientSpec = field(default_factory=ClientSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    params: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "venus", _pairs(self.venus))
        object.__setattr__(self, "params", _pairs(self.params))
        if isinstance(self.network, dict):
            object.__setattr__(self, "network", NetworkSpec(**self.network))
        object.__setattr__(self, "volumes", tuple(
            volume if isinstance(volume, VolumeSpec) else VolumeSpec(**volume)
            for volume in self.volumes))
        if isinstance(self.clients, dict):
            object.__setattr__(self, "clients", ClientSpec(**self.clients))
        if isinstance(self.workload, dict):
            object.__setattr__(self, "workload",
                               WorkloadSpec(**self.workload))

    # -- accessors ---------------------------------------------------

    def venus_dict(self):
        return dict(self.venus)

    def params_dict(self):
        return dict(self.params)

    def with_params(self, **overrides):
        """A copy with ``params`` entries merged in (family knobs)."""
        merged = dict(self.params)
        merged.update(overrides)
        return replace(self, params=_pairs(merged))

    # -- validation --------------------------------------------------

    def validate(self):
        """Return a list of every problem with this spec (empty = ok)."""
        errors = []
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            errors.append("name: must match %s" % _NAME_RE.pattern)
        if self.kind not in KINDS:
            errors.append("kind: %r is not one of %s"
                          % (self.kind, ", ".join(KINDS)))
            return errors
        families = (TESTBED_FAMILIES if self.kind == "testbed"
                    else FLEET_FAMILIES)
        if self.family not in families:
            errors.append("family: %r is not a %s family (choose from %s)"
                          % (self.family, self.kind, ", ".join(families)))
            return errors
        if self.seed_kind not in SEED_KINDS:
            errors.append("seed_kind: %r is not one of %s"
                          % (self.seed_kind, ", ".join(SEED_KINDS)))
        if self.kind == "fleet":
            if not _number(self.duration) or self.duration <= 0:
                errors.append("duration: fleet scenarios need a positive"
                              " duration in days")
            if self.shards is not None and (
                    not isinstance(self.shards, int) or self.shards < 2):
                errors.append("shards: must be an int >= 2 (or omitted)")
            if self.workload.script:
                errors.append("workload.script: fleet scenarios are"
                              " mix-driven, not scripted")
            if self.venus or self.volumes:
                errors.append("venus/volumes: fleet scenarios derive both"
                              " from the family config")
        else:
            if self.shards is not None:
                errors.append("shards: testbed scenarios cannot shard")
            if self.duration is not None and (
                    not _number(self.duration) or self.duration <= 0):
                errors.append("duration: must be a positive number of"
                              " seconds (or omitted)")
            if self.workload.mix:
                errors.append("workload.mix: rate mixes are fleet-only")
        if self.family == "script" and not self.workload.script:
            errors.append("workload.script: the script family needs at"
                          " least one op")
        if self.family != "script" and self.workload.script:
            errors.append("workload.script: only the script family takes"
                          " a script")
        errors.extend(self._validate_venus())
        errors.extend(self.network.validate())
        mounts = set()
        for index, volume in enumerate(self.volumes):
            where = "volumes[%d]" % index
            errors.extend(volume.validate(where))
            if volume.mount in mounts:
                errors.append("%s: duplicate mount %r" % (where, volume.mount))
            mounts.add(volume.mount)
        errors.extend(self.clients.validate(self.kind))
        errors.extend(self.workload.validate())
        errors.extend(self._validate_params())
        return errors

    def _validate_venus(self):
        errors = []
        if not self.venus:
            return errors
        from repro.venus.venus import VenusConfig
        known = {config_field.name for config_field in fields(VenusConfig)}
        for name, value in self.venus:
            if name not in known:
                errors.append("venus: %r is not a VenusConfig field" % name)
            elif not isinstance(value, (int, float, bool)):
                errors.append("venus: %s must be a number or bool" % name)
        return errors

    def _validate_params(self):
        errors = []
        allowed = FAMILY_PARAMS[self.family]
        for name, value in self.params:
            if name not in allowed:
                errors.append("params: %r is not a %s parameter"
                              % (name, self.family))
            elif not _number(value) or value < 0:
                errors.append("params: %s must be a non-negative number"
                              % name)
        if self.workload.mix and self.family != "figure9":
            known = set(allowed)
            for name, _ in self.workload.mix:
                if name not in known:
                    errors.append("workload.mix: %r is not a %s rate"
                                  % (name, self.family))
        elif self.workload.mix:
            from repro.bench.fleet import FleetConfig
            fixed = {"desktops", "laptops", "days", "seed", "name_prefix"}
            known = {config_field.name
                     for config_field in fields(FleetConfig)} - fixed
            for name, _ in self.workload.mix:
                if name not in known:
                    errors.append("workload.mix: %r is not a FleetConfig"
                                  " rate" % name)
        return errors

    def check(self):
        """Raise :class:`SpecError` if invalid; return self otherwise."""
        errors = self.validate()
        if errors:
            raise SpecError(self.name, errors)
        return self

    # -- serialisation -----------------------------------------------

    def to_dict(self):
        data = {"name": self.name, "kind": self.kind, "family": self.family,
                "seed_kind": self.seed_kind}
        if self.title:
            data["title"] = self.title
        if self.duration is not None:
            data["duration"] = self.duration
        if self.shards is not None:
            data["shards"] = self.shards
        if self.venus:
            data["venus"] = dict(self.venus)
        network = self.network.to_dict()
        if network != {"profile": "Modem"}:
            data["network"] = network
        if self.volumes:
            data["volumes"] = [volume.to_dict() for volume in self.volumes]
        clients = self.clients.to_dict()
        if clients:
            data["clients"] = clients
        workload = self.workload.to_dict()
        if workload:
            data["workload"] = workload
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise SpecError("?", ["spec must be a mapping, got %s"
                                  % type(data).__name__])
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        name = data.get("name", "?")
        if unknown:
            raise SpecError(name, ["unknown key(s): %s" % ", ".join(unknown)])
        try:
            spec = cls(**data)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, SpecError):
                raise
            raise SpecError(name, [str(exc)]) from exc
        return spec.check()

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("?", ["not valid JSON: %s" % exc]) from exc
        return cls.from_dict(data)
