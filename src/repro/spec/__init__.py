"""repro.spec: declarative, serializable, seedable scenario specs.

Every experiment in the paper is a (clients, volumes, network,
workload, duration) tuple.  This package makes that tuple a first-
class, validated, JSON-round-trippable object — a
:class:`~repro.spec.model.ScenarioSpec` — and provides the compiler
(:mod:`repro.spec.compile`) that turns a spec into exactly the
testbed/fleet constructions the ``obs``, ``faults``, ``perf``, and
``fleetd`` subsystems build: the canned scenarios of those subsystems
are now thin wrappers over catalogue specs, proven byte-identical by
the golden timeline digests.

Beyond the ports, the spec DSL opens workload families the original
evaluation never ran (:mod:`repro.spec.families`): ``commuter``
(diurnal connect/disconnect day-cycles across a fleet),
``conflict-storm`` (many writers on one shared volume stressing
reintegration and repair), and ``doc-archive`` (Stanski-style
prefetch-container archiving driving hoard misses under the patience
model).

Seeds route through the one sanctioned helper
(:mod:`repro.spec.seeds`): ``derive_rng("<kind>", name, seed)`` with
legacy-compatible seed strings, so no golden digest moves.
"""

from repro.spec.catalog import CATALOG, get, shipped
from repro.spec.compile import RunResult, run_spec
from repro.spec.model import (
    ClientSpec,
    NetworkSpec,
    OpStep,
    Outage,
    ScenarioSpec,
    SpecError,
    VolumeSpec,
    WorkloadSpec,
)
from repro.spec.seeds import master_seed, scenario_seed

__all__ = [
    "CATALOG",
    "ClientSpec",
    "NetworkSpec",
    "OpStep",
    "Outage",
    "RunResult",
    "ScenarioSpec",
    "SpecError",
    "VolumeSpec",
    "WorkloadSpec",
    "get",
    "master_seed",
    "run_spec",
    "scenario_seed",
    "shipped",
]
