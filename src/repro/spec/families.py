"""Measured workload families the spec DSL opens up.

Three families the original evaluation never ran, each exercising a
different leg of the paper's weak-connectivity machinery:

* **commuter** — a fleet living a diurnal day-cycle: laptops commute
  off the network every morning and evening, desktops hum along with
  rare outages, and all activity follows office hours.  Reintegration
  and reconnection validation happen at the day boundaries instead of
  Poisson-random times (Figure 9's phenomena under a periodic rhythm).
* **conflict-storm** — many writers sharing one volume, repeatedly
  writing overlapping files while disconnected.  Reintegration detects
  the update/update conflicts (section 2.2, after Kumar), parks them,
  and the writers repair deterministically — half keep "mine", half
  keep "theirs".
* **doc-archive** — a Stanski-style document-archiving client: hoard a
  couple of prefetch containers while strongly connected, walk, then
  roam onto a weak link and read documents in and out of the hoarded
  set, driving transparent fetches, patience-denied misses (section
  4.4.1, Figure 5), and trickle-reintegrated annotations.

Every stochastic draw comes from a named stream of the run's master
seed, so each family is byte-identical across runs — pinned by golden
timeline digests like every other scenario.
"""

from dataclasses import dataclass

DAY = 86_400.0

#: Commuter fleet client names: same musical register as the Figure 9
#: fleet, distinct hosts (these clients commute, those don't).
_COMMUTER_DESKTOPS = ["elgar", "faure", "handel", "haydn", "janacek",
                      "liszt", "purcell", "rameau", "ravel", "satie",
                      "smetana", "tallis", "telemann", "walton",
                      "webern", "wolf"]
_COMMUTER_LAPTOPS = ["aida", "carmen", "fidelio", "lakme", "louise",
                     "manon", "mignon", "norma", "rusalka", "salome"]


def fleet_study(family):
    """The ``(config, observatory=, extras=, checkers=) -> reports``
    runner for a fleet family; the fleetd executor and the spec
    compiler both dispatch through here."""
    if family == "commuter":
        return run_commuter_study
    if family == "figure9":
        return _run_figure9
    raise ValueError("unknown fleet family %r" % family)


def testbed_runner(family):
    """The spec-level runner for a non-script testbed family."""
    runners = {"conflict-storm": run_conflict_storm,
               "doc-archive": run_doc_archive}
    try:
        return runners[family]
    except KeyError:
        raise ValueError("unknown testbed family %r" % family) from None


def _run_figure9(config, observatory=None, extras=None, checkers=None):
    """The classic Figure 9 fleet study behind the family interface.

    ``extras``/``checkers`` are accepted for interface parity but the
    classic study takes no live checkers (fleetd's merged-invariant
    sweep covers it); passing them changes nothing about the run.
    """
    from repro.bench.fleet import run_fleet_study
    return run_fleet_study(config, observatory=observatory)


def _attach_client_checkers(checkers, facades, sample=4):
    """Attach one non-strict invariant checker per sampled client.

    A checker per client wraps ``observatory.event`` once each, so the
    sample is bounded: first/last of the list (plus up to ``sample``
    total) keeps fleet-scale runs tractable while still watching both
    populations.  No-op unless the caller asked for checkers and the
    run is instrumented.
    """
    if checkers is None or not facades:
        return []
    from repro.analysis.invariants import InvariantChecker

    picked = (facades if len(facades) <= sample
              else facades[:sample - 1] + [facades[-1]])
    attached = []
    for facade in picked:
        checker = InvariantChecker(strict=False)
        checker.attach(facade)
        checkers.append(checker)
        attached.append(checker)
    return attached


# ----------------------------------------------------------------------
# commuter


@dataclass
class CommuterConfig:
    """A fleet living office hours (times in hours of the sim day)."""

    desktops: int = 16
    laptops: int = 12
    days: float = 1.0
    seed: int = 0
    name_prefix: str = ""
    # volumes (as in the Figure 9 fleet)
    shared_volumes: int = 6
    system_volumes: int = 8
    extra_volumes: int = 12
    files_per_volume: int = 55
    file_size: int = 8_000
    # diurnal shape
    work_start: float = 9.0
    work_end: float = 17.5
    commute_minutes: float = 40.0
    off_hours_activity: float = 0.15   # fraction of the in-hours rate
    # in-hours activity rates (per client per day)
    private_writes_per_day: float = 40.0
    shared_writes_per_day: float = 5.0
    reads_per_day: float = 80.0
    roams_per_day: float = 10.0
    evictions_per_day: float = 6.0
    system_updates_per_day: float = 0.6
    desktop_outages_per_day: float = 0.5
    outage_minutes: float = 18.0
    flaky_reconnect_prob: float = 0.5


def run_commuter_study(config=None, observatory=None, extras=None,
                       checkers=None):
    """Simulate the commuting fleet; returns (desktops, laptops) reports.

    Same shape as :func:`repro.bench.fleet.run_fleet_study` — per-client
    Figure 9 validation reports — so fleetd shards, merges, and verifies
    commuter runs with the machinery it already has.  ``extras``, when
    a dict, receives family-level metrics (commutes taken, disconnected
    seconds, reintegrated records).
    """
    from repro.bench.common import Testbed, populate_volume, warm_cache
    from repro.bench.fleet import (
        ClientReport,
        _administrator,
        _outage_process,
        _volume_tree,
    )
    from repro.net import ETHERNET, Network
    from repro.net.host import LAPTOP_1995, SERVER_1995
    from repro.server import CodaServer
    from repro.sim import RandomStreams, Simulator
    from repro.venus import Venus, VenusConfig

    config = config or CommuterConfig()
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    streams = RandomStreams(config.seed)
    net = Network(sim, rng=streams.stream("net"))
    server = CodaServer(sim, net, "server", SERVER_1995)

    shared = [populate_volume(server, "/coda/project/p%02d" % i,
                              _volume_tree("/coda/project/p%02d" % i,
                                           config, streams))
              for i in range(config.shared_volumes)]
    system = [populate_volume(server, "/coda/misc/s%02d" % i,
                              _volume_tree("/coda/misc/s%02d" % i,
                                           config, streams))
              for i in range(config.system_volumes)]
    extra = [populate_volume(server, "/coda/extra/e%02d" % i,
                             _volume_tree("/coda/extra/e%02d" % i,
                                          config, streams))
             for i in range(config.extra_volumes)]

    specs = ([(config.name_prefix + _COMMUTER_DESKTOPS[i % 16]
               + ("" if i < 16 else str(i)),
               "desktop") for i in range(config.desktops)]
             + [(config.name_prefix + _COMMUTER_LAPTOPS[i % 10]
                 + ("" if i < 10 else str(i)),
                 "laptop") for i in range(config.laptops)])
    clients = []
    commute_stats = {}
    facades = []
    for name, kind in specs:
        rng = streams.stream("client::" + name)
        link = net.add_link(name, "server", profile=ETHERNET)
        private = populate_volume(server, "/coda/usr/%s" % name,
                                  _volume_tree("/coda/usr/%s" % name,
                                               config, streams))
        host = LAPTOP_1995 if kind == "laptop" else SERVER_1995
        venus = Venus(sim, net, name, "server", host,
                      config=VenusConfig(probe_interval=120.0,
                                         hoard_walk_interval=600.0))
        warm_cache(venus, server, private)
        for volume in rng.sample(shared, min(3, len(shared))):
            warm_cache(venus, server, volume)
        for volume in rng.sample(system, min(6, len(system))):
            warm_cache(venus, server, volume)
        clients.append((name, kind, venus))
        sim.process(_diurnal_life(sim, config, venus, private, shared,
                                  extra, rng, kind),
                    name="life-%s" % name)
        if kind == "laptop":
            stats = commute_stats.setdefault(
                name, {"commutes": 0, "disconnected_seconds": 0.0})
            sim.process(_commute_process(
                sim, config, venus, link,
                streams.stream("commute::" + name), stats),
                name="commute-%s" % name)
        else:
            sim.process(_outage_process(sim, config, venus, link,
                                        streams.stream("outage::" + name),
                                        kind),
                        name="outage-%s" % name)
        if checkers is not None and observatory is not None:
            facades.append(Testbed(sim=sim, net=net, link=link,
                                   server=server, venus=venus,
                                   obs=observatory, streams=streams))

    sim.process(_administrator(sim, config, server, system + extra,
                               streams.stream("admin")), name="admin")
    attached = _attach_client_checkers(checkers, facades)
    sim.run(until=config.days * DAY)
    for checker in attached:
        checker.check_all()

    desktops, laptops = [], []
    for name, kind, venus in clients:
        stats = venus.validator.stats
        report = ClientReport(
            name=name, kind=kind,
            missing_pct=100.0 * stats.missing_stamp_fraction,
            attempts=stats.attempts,
            success_pct=100.0 * stats.success_fraction,
            objs_per_success=stats.objects_per_success)
        (desktops if kind == "desktop" else laptops).append(report)
    if isinstance(extras, dict):
        extras["commutes"] = sum(
            stats["commutes"] for stats in commute_stats.values())
        extras["disconnected_seconds"] = round(sum(
            stats["disconnected_seconds"]
            for stats in commute_stats.values()), 1)
        extras["cml_reintegrated"] = sum(
            venus.cml.stats.reintegrated_records
            for _name, _kind, venus in clients)
    return desktops, laptops


def _hour_of_day(now):
    return (now % DAY) / 3600.0


def _diurnal_life(sim, config, venus, private, shared, extra, rng, kind):
    """The Figure 9 client life, gated by office hours.

    Activity draws gaps at the in-hours rate; a draw landing outside
    work hours is stretched by ``1 / off_hours_activity``, so evenings
    and nights see a trickle of activity instead of none (people do
    open their laptops at home — that is the point of the family).
    """
    from repro.bench.fleet import _evict_volume, _read_something

    yield sim.sleep(rng.uniform(0, 600))
    yield from venus.connect()
    mean_gap = DAY / (config.private_writes_per_day
                      + config.shared_writes_per_day
                      + config.reads_per_day
                      + config.roams_per_day
                      + config.evictions_per_day)
    weights = [config.reads_per_day, config.private_writes_per_day,
               config.shared_writes_per_day, config.roams_per_day,
               config.evictions_per_day]
    total_weight = sum(weights)
    counter = 0
    while True:
        gap = rng.expovariate(1.0 / mean_gap)
        hour = _hour_of_day(sim.now)
        if not config.work_start <= hour < config.work_end:
            gap /= max(config.off_hours_activity, 1e-6)
        yield sim.sleep(gap)
        counter += 1
        pick = rng.random() * total_weight
        try:
            if pick < weights[0]:
                yield from _read_something(venus, private, shared, rng)
            elif pick < weights[0] + weights[1]:
                path = "/coda/usr/%s/data/w%d" % (venus.node, counter % 60)
                yield from venus.write_file(
                    path, rng.randrange(2_000, 20_000))
            elif pick < weights[0] + weights[1] + weights[2]:
                volume = rng.choice(shared)
                path = "/coda/project/p%02d/data/%s-%d" % (
                    shared.index(volume), venus.node, counter % 40)
                yield from venus.write_file(
                    path, rng.randrange(2_000, 20_000))
            elif pick < sum(weights[:4]):
                index = rng.randrange(len(extra))
                yield from venus.read_file(
                    "/coda/extra/e%02d/data/f%03d"
                    % (index, rng.randrange(config.files_per_volume)))
            else:
                _evict_volume(venus, rng)
        except Exception:
            # Misses and races with commutes are part of life.
            pass


def _commute_process(sim, config, venus, link, rng, stats):
    """Twice a day the laptop leaves the network: commute in, commute
    out.  Departure times jitter around the office-hour boundaries, and
    the laptop reconnects (triggering validation and any queued
    reintegration) when it arrives."""
    commute = config.commute_minutes * 60.0
    day = 0
    while True:
        for edge_hour in (config.work_start, config.work_end):
            depart = (day * DAY + edge_hour * 3600.0 - commute
                      + rng.uniform(-600.0, 600.0))
            if depart <= sim.now:
                continue
            yield sim.sleep(depart - sim.now)
            link.set_up(False)
            venus.handle_disconnection()
            duration = commute * rng.uniform(0.8, 1.3)
            yield sim.sleep(duration)
            link.set_up(True)
            yield from venus.connect()
            stats["commutes"] += 1
            stats["disconnected_seconds"] += duration
        day += 1
        resume = day * DAY + config.work_start * 3600.0 - commute - 1_200.0
        if resume > sim.now:
            yield sim.sleep(resume - sim.now)


# ----------------------------------------------------------------------
# conflict-storm


@dataclass
class ConflictStormConfig:
    """Many writers, one volume, overlapping disconnected writes."""

    writers: int = 6
    files: int = 8
    file_size: int = 12_000
    rounds: int = 2
    round_minutes: float = 30.0        # disconnected window per round
    writes_per_round: int = 3
    keep_mine_every: int = 2           # every k-th conflict keeps "mine"
    drain_seconds: float = 240.0       # reconnection settle time
    seed: int = 0


_STORM_INT_FIELDS = ("writers", "files", "file_size", "rounds",
                     "writes_per_round", "keep_mine_every")


def _storm_config(spec):
    params = spec.params_dict()
    for name in _STORM_INT_FIELDS:
        if name in params:
            params[name] = int(params[name])
    return ConflictStormConfig(**params)


def run_conflict_storm(spec, master, observatory=None, schedule_log=None,
                       checker=None, checkers=None):
    """Run the conflict-storm family; returns (testbed, summary).

    The returned testbed is writer 0's facade (sim, link, venus) so
    callers can fingerprint a representative client; the summary
    carries the storm-wide conflict accounting.
    """
    from repro.bench.common import Testbed, populate_volume, warm_cache
    from repro.net import WAVELAN, Network
    from repro.net.host import LAPTOP_1995, SERVER_1995
    from repro.server import CodaServer
    from repro.sim import RandomStreams, Simulator
    from repro.spec.compile import probe_schedule
    from repro.venus import Venus, VenusConfig

    config = _storm_config(spec)
    config.seed = master
    sim = Simulator()
    if observatory is not None:
        observatory.install(sim)
    if schedule_log is not None:
        probe_schedule(sim, schedule_log)
    streams = RandomStreams(config.seed)
    sim.rand = streams
    net = Network(sim, rng=streams.stream("net"))
    server = CodaServer(sim, net, "server", SERVER_1995)

    mount = "/coda/project/storm"
    tree = {mount + "/doc": ("dir", 0)}
    for index in range(config.files):
        tree["%s/doc/f%02d" % (mount, index)] = ("file", config.file_size)
    volume = populate_volume(server, mount, tree)

    writers = []
    facades = []
    for index in range(config.writers):
        name = "writer%02d" % index
        link = net.add_link(name, "server", profile=WAVELAN)
        venus = Venus(sim, net, name, "server", LAPTOP_1995,
                      config=VenusConfig(aging_window=30.0,
                                         daemon_period=5.0,
                                         probe_interval=30.0))
        warm_cache(venus, server, volume)
        writers.append((name, venus, link))
        facades.append(Testbed(sim=sim, net=net, link=link, server=server,
                               venus=venus, obs=observatory,
                               streams=streams))

    resolutions = {"mine": 0, "theirs": 0}
    for index, (name, venus, link) in enumerate(writers):
        sim.process(_storm_writer(sim, config, index, venus, link, mount,
                                  streams.stream("storm::" + name),
                                  resolutions),
                    name="storm-%s" % name)

    attached = []
    if checker is not None:
        checker.attach(facades[0])
        attached = _attach_client_checkers(
            checkers, facades[1:], sample=config.writers)
    cycle = (config.round_minutes * 60.0 + config.drain_seconds + 120.0)
    sim.run(until=config.rounds * cycle + 600.0)
    for active in attached:
        active.check_all()

    conflicts = []
    for _name, venus, _link in writers:
        conflicts.extend(venus.conflicts.all())
    summary = {
        "end_time": sim.now,
        "writers": config.writers,
        "rounds": config.rounds,
        "conflicts_detected": len(conflicts),
        "conflicts_resolved_mine": resolutions["mine"],
        "conflicts_resolved_theirs": resolutions["theirs"],
        "conflicts_pending": sum(
            1 for conflict in conflicts if conflict.resolved is None),
        "cml_reintegrated": sum(
            venus.cml.stats.reintegrated_records
            for _name, venus, _link in writers),
        "reintegration_duplicates": server.reintegrator.duplicates_skipped,
        "server_versions": sum(
            vnode.version for vnode in volume.vnodes.values()),
    }
    return facades[0], summary


def _storm_writer(sim, config, index, venus, link, mount, rng,
                  resolutions):
    """One writer's storm: disconnect, collide, reconnect, repair."""
    from repro.fs.content import SyntheticContent

    yield sim.sleep(10.0 * index + rng.uniform(0.0, 20.0))
    yield from venus.connect()
    for round_no in range(config.rounds):
        yield sim.sleep(rng.uniform(10.0, 60.0))
        link.set_up(False)
        venus.handle_disconnection()
        for write_no in range(config.writes_per_round):
            target = rng.randrange(config.files)
            path = "%s/doc/f%02d" % (mount, target)
            content = SyntheticContent(
                config.file_size + 100 * index + write_no,
                tag=("storm", index, round_no, write_no))
            try:
                yield from venus.write_file(path, content)
            except Exception:
                pass
            yield sim.sleep(rng.uniform(5.0, 30.0))
        remaining = (config.round_minutes * 60.0
                     * rng.uniform(0.8, 1.2))
        yield sim.sleep(remaining)
        link.set_up(True)
        yield from venus.connect()
        yield sim.sleep(config.drain_seconds + rng.uniform(0.0, 30.0))
        for conflict in venus.list_conflicts():
            if conflict.resolved is not None:
                continue
            keep = ("mine" if conflict.ident % config.keep_mine_every == 0
                    else "theirs")
            try:
                yield from venus.repair(conflict, keep)
            except Exception:
                continue
            resolutions[keep] += 1


# ----------------------------------------------------------------------
# doc-archive


@dataclass
class DocArchiveConfig:
    """A document-archiving client on a link that turns weak."""

    containers: int = 6
    docs_per_container: int = 8
    doc_size: int = 24_000
    hoarded_containers: int = 2
    hoard_priority: int = 600
    reads: int = 60
    think_seconds: float = 40.0
    annotate_every: int = 5            # every k-th read writes a note
    note_size: int = 2_000
    locality: float = 0.7              # fraction of reads in hoarded set
    commute_at: float = 600.0          # strong office phase ends here
    weak_bps: float = 9_600.0          # modem-class bandwidth after it
    weak_minutes: float = 90.0
    seed: int = 0


def _archive_config(spec):
    params = spec.params_dict()
    config = DocArchiveConfig(**params)
    config.containers = int(config.containers)
    config.docs_per_container = int(config.docs_per_container)
    config.doc_size = int(config.doc_size)
    config.hoarded_containers = min(int(config.hoarded_containers),
                                    config.containers)
    config.hoard_priority = int(config.hoard_priority)
    config.reads = int(config.reads)
    config.annotate_every = max(1, int(config.annotate_every))
    config.note_size = int(config.note_size)
    return config


def run_doc_archive(spec, master, observatory=None, schedule_log=None,
                    checker=None, checkers=None):
    """Run the doc-archive family; returns (testbed, summary)."""
    from repro.bench.common import make_testbed, populate_volume
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan, LinkDegrade
    from repro.net import WAVELAN
    from repro.venus import VenusConfig

    config = _archive_config(spec)
    config.seed = master
    mount = "/coda/archive"
    venus_config = VenusConfig(aging_window=60.0, daemon_period=5.0,
                               probe_interval=30.0,
                               hoard_walk_interval=600.0)
    testbed = make_testbed(WAVELAN, venus_config=venus_config,
                           seed=master, observatory=observatory)
    sim = testbed.sim
    if schedule_log is not None:
        from repro.spec.compile import probe_schedule
        probe_schedule(sim, schedule_log)
    if checker is not None:
        checker.attach(testbed)

    # Container tree: doc sizes drawn from a named stream so the whole
    # archive — including which documents are small enough to fetch
    # transparently over the weak link — is a pure function of the
    # master seed.
    tree_rng = testbed.streams.stream("doc-archive::tree")
    tree = {}
    for c_index in range(config.containers):
        container = "%s/c%02d" % (mount, c_index)
        tree[container] = ("dir", 0)
        for d_index in range(config.docs_per_container):
            if tree_rng.random() < 0.3:
                size = tree_rng.randrange(600, 2_400)
            else:
                size = max(2_000, int(tree_rng.expovariate(
                    1.0 / config.doc_size)))
            tree["%s/d%02d" % (container, d_index)] = ("file", size)
    populate_volume(testbed.server, mount, tree)
    # No cache warming: hoard walks do the prefetching, that is the
    # family's point.  The client still needs the mount map.
    testbed.venus.learn_mounts(testbed.server.registry)

    plan = FaultPlan([LinkDegrade(at=config.commute_at,
                                  duration=config.weak_minutes * 60.0,
                                  bandwidth_bps=config.weak_bps)])
    testbed.faults = FaultInjector(testbed, plan)
    testbed.faults.start()

    session_rng = testbed.streams.stream("doc-archive::session")

    def session():
        venus = testbed.venus
        yield from venus.connect()
        for c_index in range(config.hoarded_containers):
            venus.hoard("%s/c%02d" % (mount, c_index),
                        config.hoard_priority, children=True)
        yield from venus.hoard_walk()
        notes = 0
        for read_no in range(config.reads):
            yield sim.sleep(session_rng.expovariate(
                1.0 / config.think_seconds))
            if (session_rng.random() < config.locality
                    and config.hoarded_containers):
                c_index = session_rng.randrange(config.hoarded_containers)
            else:
                c_index = session_rng.randrange(config.containers)
            d_index = session_rng.randrange(config.docs_per_container)
            path = "%s/c%02d/d%02d" % (mount, c_index, d_index)
            try:
                yield from venus.read_file(path)
            except Exception:
                continue
            if (read_no + 1) % config.annotate_every == 0:
                notes += 1
                from repro.fs.content import SyntheticContent
                yield from venus.write_file(
                    "%s/c%02d/note%03d" % (mount, c_index, notes),
                    SyntheticContent(config.note_size,
                                     tag=("note", notes)))
        yield sim.sleep(600.0)

    sim.run(sim.process(session()))
    if checker is not None:
        checker.check_all()

    venus = testbed.venus
    stats = venus.stats
    summary = {
        "end_time": sim.now,
        "containers": config.containers,
        "hoarded_containers": config.hoarded_containers,
        "reads": config.reads,
        "fetches": stats.fetches,
        "fetch_bytes": stats.fetch_bytes,
        "hoard_walks": stats.hoard_walks,
        "misses_transparent": stats.misses_transparent,
        "misses_denied": stats.misses_denied,
        "misses_disconnected": stats.misses_disconnected,
        "miss_log_records": venus.misses.total_recorded,
        "cml_reintegrated": venus.cml.stats.reintegrated_records,
        "bytes_shipped": venus.trickle.stats.bytes_shipped,
    }
    return testbed, summary
