"""Pinnable spec-family scenarios: golden runs for the digest fixtures.

The golden machinery (:mod:`repro.analysis.golden`) pins obs timelines
of ``mod:<module>:<function>`` specs across checkouts.  These three
functions expose reduced-scale runs of the new spec families —
``commuter``, ``conflict-storm``, ``doc-archive`` — built through the
identical :func:`~repro.spec.compile.run_spec` path the CLI uses.
Pinning them means no change can silently alter what the families
simulate: each family's schedule is a committed fixture, and
``repro check-determinism`` can probe the same entry points for
hidden nondeterminism.

The reduced scales are deliberately independent of ``REPRO_FAST`` and
of the catalogue's shipped parameters: fixtures must hash the same
simulation everywhere.  ``commuter`` runs 18 simulated hours so both
commute edges (morning and evening) are inside the pinned window.
"""

from dataclasses import replace

from repro.spec.catalog import get
from repro.spec.compile import run_spec

#: Simulated duration of the pinned commuter run, in days.  0.75 days
#: covers 0:00-18:00: the 9:00 work-start commute, the office phase,
#: and the 17:30 work-end commute all land inside the window.
COMMUTER_GOLDEN_DAYS = 0.75


def commuter_golden(observatory=None):
    """``mod:repro.spec.golden:commuter_golden`` for repro golden.

    The shipped commuter spec shrunk to 2 desktops + 2 laptops over
    0.75 days — small enough for fixtures and CI determinism probes,
    big enough to exercise the diurnal life, both commute edges, and
    the reintegration-on-reconnect path.
    """
    spec = get("commuter")
    spec = replace(spec, clients=replace(spec.clients, count=4,
                                         desktops=2, laptops=2))
    result = run_spec(spec, observatory=observatory,
                      days=COMMUTER_GOLDEN_DAYS)
    return result.summary


def conflict_storm_golden(observatory=None):
    """``mod:repro.spec.golden:conflict_storm_golden`` for repro golden.

    The shipped conflict-storm spec at 3 writers and a single round:
    still enough concurrent disconnected writers to detect and repair
    conflicts, at fixture-friendly cost.
    """
    spec = get("conflict-storm").with_params(writers=3, rounds=1)
    return run_spec(spec, observatory=observatory).summary


def doc_archive_golden(observatory=None):
    """``mod:repro.spec.golden:doc_archive_golden`` for repro golden.

    The shipped doc-archive spec at 3 containers / 16 reads with one
    hoarded container and an early commute (the link degrades at
    t=200 s): covers hoarding, the hoard walk, the weak-link commute,
    and the patience-gated transparent-miss path.
    """
    spec = get("doc-archive").with_params(containers=3, reads=16,
                                          hoarded_containers=1,
                                          commute_at=200.0)
    return run_spec(spec, observatory=observatory).summary
