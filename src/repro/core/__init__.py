"""The paper's primary contribution: the adaptive policies.

Four mechanisms let Coda span four orders of magnitude of network
bandwidth (section 4):

* :mod:`repro.core.adaptation` — classifying connectivity from the
  transport's shared RTT/bandwidth estimates, with hysteresis;
* :mod:`repro.core.validation` — rapid cache validation with volume
  version stamps and volume callbacks;
* :mod:`repro.core.trickle` — trickle reintegration with the aging
  window, reintegration barrier, adaptive chunking and fragmentation;
* :mod:`repro.core.patience` — the user patience model that decides
  which cache misses are serviced transparently.
"""

from repro.core.adaptation import ConnectivityMonitor, ConnectionStrength
from repro.core.cost import (
    CELLULAR,
    FREE,
    LONG_DISTANCE,
    CostAwarePolicy,
    CostLedger,
    NetworkTariff,
)
from repro.core.patience import PatienceModel
from repro.core.trickle import TrickleReintegrator
from repro.core.validation import RapidValidator, ValidationStats

__all__ = [
    "CELLULAR",
    "ConnectionStrength",
    "ConnectivityMonitor",
    "CostAwarePolicy",
    "CostLedger",
    "FREE",
    "LONG_DISTANCE",
    "NetworkTariff",
    "PatienceModel",
    "RapidValidator",
    "TrickleReintegrator",
    "ValidationStats",
]
