"""The user patience model (section 4.4.4).

A user's patience threshold tau for an object grows with its perceived
importance, captured by hoard priority P.  Conjecturing that patience,
like other human processes, is logarithmic in sensitivity, the paper
posits::

    tau = alpha + beta * e**(gamma * P)

with alpha = 2 s (a floor: even for an unimportant object the user
prefers a short delay to a miss), beta = 1, gamma = 0.01.  A miss whose
estimated service time falls below tau is serviced transparently;
above it, Venus returns a miss and records the object for the user.
The same comparison pre-approves fetches during hoard walks
(section 4.4.3).
"""

import math


class PatienceModel:
    """tau(P) = alpha + beta * exp(gamma * P), in seconds."""

    def __init__(self, alpha=2.0, beta=1.0, gamma=0.01):
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def threshold(self, priority):
        """Patience in seconds for an object of hoard priority P."""
        return self.alpha + self.beta * math.exp(self.gamma * priority)

    def approves(self, priority, estimated_seconds):
        """True if a wait of ``estimated_seconds`` is acceptable."""
        return estimated_seconds <= self.threshold(priority)

    def max_file_bytes(self, priority, bandwidth_bps):
        """Largest file fetchable within patience at ``bandwidth_bps``.

        This is the Figure 7 transformation: tau expressed as a file
        size at a given (nominal) bandwidth, e.g. 60 s at 64 Kb/s is
        480 KB.
        """
        return self.threshold(priority) * bandwidth_bps / 8.0

    def curve(self, priorities, bandwidth_bps):
        """(priority, max file size) pairs — one Figure 7 curve."""
        return [(p, self.max_file_bytes(p, bandwidth_bps))
                for p in priorities]

    def priority_needed(self, estimated_seconds):
        """Smallest priority whose threshold admits the given wait."""
        if estimated_seconds <= self.threshold(0):
            return 0
        return math.ceil(
            math.log((estimated_seconds - self.alpha) / self.beta)
            / self.gamma)
