"""Trickle reintegration (section 4.3).

A background daemon propagates aged CML records to the server while
Venus is write disconnected:

* the *aging window* A keeps records in the log long enough for
  optimizations to cancel them (section 4.3.4; default 600 s);
* the *reintegration barrier* freezes the chunk being shipped
  (Figure 3); concurrent updates append to the right of it;
* the *chunk size* C adapts to bandwidth — 30 seconds' worth of
  transmission (36 KB at 9.6 Kb/s, 240 KB at 64 Kb/s, 7.7 MB at
  2 Mb/s) — bounding how long a chunk can monopolize a slow link
  (section 4.3.5);
* a store record bigger than C ships its file as a series of
  *fragments* of at most C bytes; a failure resumes after the last
  successful fragment, and the server only attempts reintegration
  once the entire file is present.
"""

from dataclasses import dataclass

from repro.rpc2.errors import ConnectionDead
from repro.rpc2.packets import RPC2_HEADER
from repro.venus.cml import RECORD_OVERHEAD, CmlOp
from repro.venus.states import VenusState


@dataclass
class TrickleStats:
    """Wire accounting for the Figure 14 style tables."""

    chunks_attempted: int = 0
    chunks_committed: int = 0
    records_shipped: int = 0
    bytes_shipped: int = 0          # CML data put on the wire
    fragments_shipped: int = 0
    conflicts: int = 0
    aborts: int = 0                 # network/server failures mid-chunk


class TrickleReintegrator:
    """The reintegration daemon plus forced-drain entry points."""

    def __init__(self, venus):
        from repro.sim.resources import Lock
        self.venus = venus
        self.sim = venus.sim
        self.stats = TrickleStats()
        self._fragment_progress = {}    # seqno -> fragments already acked
        self._draining = False
        self._process = None
        # The daemon, user-forced drains, and the write-disconnected ->
        # hoarding transition can all try to reintegrate concurrently;
        # only one may hold the barrier at a time.
        self._chunk_lock = Lock(venus.sim)

    # ------------------------------------------------------------------
    # Policy

    @property
    def config(self):
        return self.venus.config

    def chunk_bytes(self):
        """C: the current chunk budget, 30 s of estimated bandwidth."""
        bandwidth = self.venus.current_bandwidth_bps()
        return max(RECORD_OVERHEAD,
                   int(self.config.chunk_seconds * bandwidth / 8.0))

    # ------------------------------------------------------------------
    # Daemon

    def start(self):
        if self._process is None or not self._process.is_alive:
            self._process = self.sim.process(self._run(), name="trickle",
                                             owner=self.venus.node)
        return self._process

    def _run(self):
        period = self.config.daemon_period
        while True:
            yield self.sim.sleep(period)
            venus = self.venus
            if venus.state.state is not VenusState.WRITE_DISCONNECTED:
                continue
            if self._draining:
                continue
            yield from self._pass(venus.effective_aging_window(),
                                  defer_to_foreground=True)

    def _pass(self, aging_window, defer_to_foreground):
        """Ship chunks until nothing is eligible (one daemon activation)."""
        venus = self.venus
        while venus.state.state is not VenusState.EMULATING:
            if defer_to_foreground and venus.foreground_ops > 0:
                return
            now = self.sim.now
            if not venus.cml.eligible_records(now, aging_window):
                return
            progressed = yield from self._one_chunk(aging_window)
            if not progressed:
                return

    def drain(self):
        """Process body: reintegrate everything now, regardless of age.

        Used for user-forced reintegration ("about to move out of
        range") and for the write disconnected -> hoarding transition.
        Returns True if the CML fully drained.
        """
        self._draining = True
        try:
            while len(self.venus.cml) \
                    and self.venus.state.state is not VenusState.EMULATING:
                progressed = yield from self._one_chunk(aging_window=0.0)
                if not progressed:
                    return False
            return len(self.venus.cml) == 0
        finally:
            self._draining = False

    def reintegrate_records(self, records):
        """Process body: ship an explicit, dependency-closed record set.

        This is the section 4.3.5 refinement the paper was
        "considering": forcing immediate reintegration of one subtree's
        updates without waiting for the rest of the log.  The caller
        (Venus) computes the precedence closure; records ship in
        temporal order as a single atomic chunk.  Returns True when the
        records left the CML (committed, or conflicted out).
        """
        venus = self.venus
        cml = venus.cml
        if not records:
            return True
        yield self._chunk_lock.acquire()
        try:
            still_here = {id(r) for r in cml.records}
            records = [r for r in records if id(r) in still_here]
            if not records:
                return True   # optimized away or already shipped
            records.sort(key=lambda r: r.seqno)
            self.stats.chunks_attempted += 1
            cml.freeze_records(records)
            try:
                yield from self._reintegrate_frozen(records, set())
                return True
            except ConnectionDead:
                self.stats.aborts += 1
                cml.abort_frozen()
                venus.handle_disconnection()
                return False
            except BaseException:
                if cml.frozen_count:
                    cml.abort_frozen()
                raise
        finally:
            self._chunk_lock.release()

    # ------------------------------------------------------------------
    # One chunk

    def _one_chunk(self, aging_window):
        """Ship one chunk (or one fragmented big store).

        Returns True if records left the CML (progress), False on
        failure (disconnection, or conflicts that only shrank the log).
        """
        venus = self.venus
        cml = venus.cml
        yield self._chunk_lock.acquire()
        try:
            now = self.sim.now
            budget = self.chunk_bytes() \
                if not self.config.whole_chunk_mode else float("inf")
            chunk = cml.select_chunk(now, aging_window, budget)
            if not chunk:
                return False
            preshipped = set()
            self.stats.chunks_attempted += 1
            cml.freeze(len(chunk))
            try:
                if (len(chunk) == 1 and chunk[0].op is CmlOp.STORE
                        and chunk[0].size > budget):
                    yield from self._ship_fragments(chunk[0], budget)
                    preshipped.add(chunk[0].seqno)
                yield from self._reintegrate_frozen(chunk, preshipped)
                return True
            except ConnectionDead:
                self.stats.aborts += 1
                cml.abort_frozen()
                venus.handle_disconnection()
                return False
            except BaseException:
                if cml.frozen_count:
                    cml.abort_frozen()
                raise
        finally:
            self._chunk_lock.release()

    def _ship_fragments(self, record, budget):
        """Ship one large store's file as fragments of at most C bytes."""
        size = record.content.size
        fragment = max(1, int(budget))
        total = (size + fragment - 1) // fragment
        start = self._fragment_progress.get(record.seqno, 0)
        for index in range(start, total):
            nbytes = min(fragment, size - index * fragment)
            yield self.venus.conn.call(
                "PutFragment",
                {"key": record.seqno, "index": index, "total_size": size},
                args_size=RPC2_HEADER, send_size=nbytes)
            self._fragment_progress[record.seqno] = index + 1
            self.stats.fragments_shipped += 1
            self.stats.bytes_shipped += nbytes
            obs = self.sim.obs
            if obs.enabled:
                obs.metrics.counter("reintegration.fragments",
                                    node=self.venus.node).inc()
                obs.metrics.counter("reintegration.fragment_bytes",
                                    node=self.venus.node).inc(nbytes)
                obs.event("fragment", node=self.venus.node,
                          seqno=record.seqno, index=index, total=total,
                          bytes=nbytes)
            # Between fragments, defer to foreground activity.
            while self.venus.foreground_ops > 0 and not self._draining:
                yield self.sim.sleep(1.0)

    def _reintegrate_frozen(self, chunk, preshipped):
        venus = self.venus
        cml = venus.cml
        inline_bytes = sum(
            r.content.size for r in chunk
            if r.op is CmlOp.STORE and r.content is not None
            and r.seqno not in preshipped)
        result = yield venus.conn.call(
            "Reintegrate",
            {"records": list(chunk), "preshipped": sorted(preshipped)},
            args_size=16 + RECORD_OVERHEAD * len(chunk),
            send_size=inline_bytes)
        outcome = result.result
        if outcome["status"] == "ok":
            records = cml.commit_frozen()
            self.stats.chunks_committed += 1
            self.stats.records_shipped += len(records)
            shipped = inline_bytes + RECORD_OVERHEAD * len(records)
            self.stats.bytes_shipped += shipped
            for record in records:
                self._fragment_progress.pop(record.seqno, None)
            venus.on_reintegration_success(
                records, outcome["new_versions"], outcome["volume_stamps"])
            self._observe_chunk("committed", len(records), shipped)
        elif outcome["status"] == "conflict":
            conflicted_seqnos = {seqno for seqno, _ in outcome["conflicts"]}
            reasons = dict(outcome["conflicts"])
            doomed = [r for r in chunk if r.seqno in conflicted_seqnos]
            self.stats.conflicts += len(doomed)
            cml.abort_frozen()
            cml.discard(doomed)
            venus.on_reintegration_conflict(
                [(record, reasons[record.seqno]) for record in doomed])
            self._observe_chunk("conflict", len(chunk), inline_bytes,
                                conflicts=len(doomed))
        elif outcome["status"] == "missing_data":
            # The server lost fragments; forget our progress and let the
            # next pass re-ship them.
            for seqno in outcome["missing"]:
                self._fragment_progress.pop(seqno, None)
            cml.abort_frozen()
            self._observe_chunk("missing_data", len(chunk), 0)
        else:
            raise AssertionError("unknown reintegration status %r"
                                 % (outcome,))

    def _observe_chunk(self, status, records, shipped_bytes, **extra):
        """Record one concluded reintegration chunk."""
        obs = self.sim.obs
        if not obs.enabled:
            return
        venus = self.venus
        obs.metrics.counter("reintegration.chunks", node=venus.node,
                            status=status).inc()
        obs.metrics.counter("reintegration.records",
                            node=venus.node).inc(records)
        obs.metrics.counter("reintegration.bytes",
                            node=venus.node).inc(shipped_bytes)
        obs.event("reintegration_chunk", node=venus.node, status=status,
                  records=records, bytes=shipped_bytes,
                  cml_records=len(venus.cml),
                  cml_bytes=venus.cml.size_bytes, **extra)
