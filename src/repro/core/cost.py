"""Cost-aware adaptation (the paper's stated future work).

"Our work so far has assumed that performance is the only metric of
cost.  In practice, many networks used in mobile computing cost real
money.  We therefore plan to explore techniques by which Venus can
electronically inquire about network cost, and base its adaptation on
both cost and quality." (section 8)

This module implements that plan:

* a :class:`NetworkTariff` describes what a link costs — per megabyte
  (cellular data), per connected minute (long-distance phone), or
  nothing (the office LAN);
* a :class:`CostAwarePolicy` folds the tariff into Venus's decisions:

  - *aging*: on per-byte tariffs the aging window stretches, giving
    log optimizations more time to cancel records before they are
    paid for;
  - *miss handling*: a fetch must pass a *spending* threshold as well
    as the time-patience threshold; like patience, willingness to pay
    grows exponentially with hoard priority;
  - *drain preference*: on per-minute tariffs the right strategy
    reverses — ship everything quickly and hang up, so the policy
    recommends immediate draining instead of trickling.

* a :class:`CostLedger` accounts for what a session actually spent.
"""

import math
from dataclasses import dataclass

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class NetworkTariff:
    """What using a network costs, in abstract currency units."""

    name: str
    per_mb: float = 0.0        # per megabyte transferred
    per_minute: float = 0.0    # per minute of connection time

    @property
    def is_free(self):
        return self.per_mb == 0.0 and self.per_minute == 0.0

    def cost_of(self, nbytes=0, connected_seconds=0.0):
        """Total cost of moving ``nbytes`` over ``connected_seconds``."""
        return (self.per_mb * nbytes / MB
                + self.per_minute * connected_seconds / 60.0)


#: Common 1995 tariffs (currency units are "dollars-ish").
FREE = NetworkTariff("free")
LONG_DISTANCE = NetworkTariff("long-distance-phone", per_minute=0.12)
CELLULAR = NetworkTariff("cellular-data", per_mb=2.50)


class CostAwarePolicy:
    """Scales Venus's adaptive knobs by what the network costs.

    ``spend(priority) = spend_alpha + spend_beta * e**(gamma*P)`` is
    the analogue of the patience model: the most a user will pay to
    fetch one object of hoard priority P.  The defaults tolerate about
    a cent for an unhoarded object and a few dollars at priority 900.
    """

    def __init__(self, tariff=FREE, spend_alpha=0.01, spend_beta=0.002,
                 gamma=0.01, aging_stretch_per_unit=2.0,
                 max_aging_stretch=8.0):
        self.tariff = tariff
        self.spend_alpha = spend_alpha
        self.spend_beta = spend_beta
        self.gamma = gamma
        self.aging_stretch_per_unit = aging_stretch_per_unit
        self.max_aging_stretch = max_aging_stretch

    # -- miss handling ---------------------------------------------------

    def spend_threshold(self, priority):
        """Most the user will pay to fetch one object of priority P."""
        return self.spend_alpha + self.spend_beta * math.exp(
            self.gamma * priority)

    def fetch_cost(self, size_bytes):
        """Money a fetch of ``size_bytes`` costs on this tariff."""
        return self.tariff.cost_of(nbytes=size_bytes)

    def approves_fetch(self, priority, size_bytes):
        """True if fetching is affordable at this priority."""
        return self.fetch_cost(size_bytes) <= self.spend_threshold(priority)

    # -- update propagation -----------------------------------------------

    def effective_aging_window(self, base_window):
        """Stretch A on per-byte tariffs: every cancelled record is
        money unspent."""
        stretch = 1.0 + self.aging_stretch_per_unit * self.tariff.per_mb
        return base_window * min(stretch, self.max_aging_stretch)

    @property
    def prefers_fast_drain(self):
        """Per-minute tariffs reward finishing quickly and hanging up
        (the 'terminate a long distance phone call' case of 4.3.2)."""
        return self.tariff.per_minute > 0.0 and self.tariff.per_mb == 0.0


class CostLedger:
    """Accounts a session's actual network spending."""

    def __init__(self, tariff=FREE):
        self.tariff = tariff
        self.bytes_transferred = 0
        self.connected_seconds = 0.0

    def add_bytes(self, nbytes):
        self.bytes_transferred += nbytes

    def add_connected_time(self, seconds):
        self.connected_seconds += seconds

    @property
    def total_cost(self):
        return self.tariff.cost_of(self.bytes_transferred,
                                   self.connected_seconds)

    def __repr__(self):
        return "<CostLedger %.2f units (%d bytes, %.0f s)>" % (
            self.total_cost, self.bytes_transferred,
            self.connected_seconds)
