"""Rapid cache validation (section 4.2).

On reconnection a client must validate every cached object.  With
volume version stamps, one batched RPC validates whole volumes: "If a
volume stamp is still valid, so is every object cached from that
volume."  Stale or missing stamps fall back to batched per-object
validation — no worse than the original scheme.

The :class:`ValidationStats` counters mirror the instrumentation
behind Figure 9: how often a stamp was missing, how many volume
validations were attempted, how many succeeded, and how many
per-object validations each success saved.
"""

from dataclasses import dataclass

from repro.rpc2.packets import FID_VERSION_BYTES

#: Per-object validation batch size (ViceValidateAttrs batching).
VALIDATE_BATCH = 50


@dataclass
class ValidationStats:
    """Counters matching the paper's Figure 9 columns."""

    volume_opportunities: int = 0   # volumes needing validation
    missing_stamp: int = 0          # ... for which no stamp was cached
    attempts: int = 0               # volume validations attempted
    successes: int = 0              # ... that were still valid
    objects_saved: int = 0          # object validations skipped
    objects_validated: int = 0      # per-object validations performed

    @property
    def missing_stamp_fraction(self):
        if not self.volume_opportunities:
            return 0.0
        return self.missing_stamp / self.volume_opportunities

    @property
    def success_fraction(self):
        if not self.attempts:
            return 0.0
        return self.successes / self.attempts

    @property
    def objects_per_success(self):
        if not self.successes:
            return 0.0
        return self.objects_saved / self.successes


class RapidValidator:
    """Client-side validation engine used on reconnection and walks."""

    def __init__(self, sim, cache, conn, use_volume_callbacks=True,
                 batch_size=VALIDATE_BATCH, cpu=None,
                 per_object_cpu=0.004):
        self.sim = sim
        self.cache = cache
        self.conn = conn
        self.use_volume_callbacks = use_volume_callbacks
        self.batch_size = batch_size
        self.cpu = cpu
        # Client CPU spent walking each cached object's metadata during
        # a validation pass (RVM lookups and status checks on 1995
        # hardware).  This local work dominates validation time on fast
        # networks, which is why volume callbacks make a 9.6 Kb/s
        # validation "only about 25% longer than at 10 Mb/s".
        self.per_object_cpu = per_object_cpu
        self.stats = ValidationStats()

    def _observe_rpc(self, kind, objects, **extra):
        """Record one validation RPC (volume-stamp or per-object batch)."""
        obs = self.sim.obs
        if not obs.enabled:
            return
        node = self.conn.endpoint.node
        obs.metrics.counter("validation.rpcs", node=node, kind=kind).inc()
        if kind == "volume":
            obs.metrics.counter("validation.volumes", node=node).inc(objects)
        else:
            obs.metrics.counter("validation.objects", node=node).inc(objects)
        obs.event("validation_rpc", node=node, scope=kind,
                  objects=objects, **extra)

    def _charge_cpu(self, n_objects):
        cost = self.per_object_cpu * n_objects
        if cost <= 0:
            return
        if self.cpu is not None:
            yield from self.cpu.use(cost)
        else:
            yield self.sim.sleep(cost)

    def validate_all(self):
        """Process body: revalidate every cached object.

        Returns the number of objects whose validity was individually
        checked (i.e. not covered by a volume stamp).
        """
        by_volume = {}
        for entry in self.cache.iter_entries():
            if entry.local:
                continue
            by_volume.setdefault(entry.fid.volume, []).append(entry)
        yield from self._charge_cpu(sum(len(v) for v in by_volume.values()))

        need_object_validation = []
        if self.use_volume_callbacks:
            stamps = {}
            for volid, entries in by_volume.items():
                self.stats.volume_opportunities += 1
                info = self.cache.volume_info(volid)
                if info.stamp is None:
                    self.stats.missing_stamp += 1
                    need_object_validation.extend(entries)
                else:
                    stamps[volid] = info.stamp
            if stamps:
                # All volume validations batched into a single RPC.
                self.stats.attempts += len(stamps)
                result = yield self.conn.call(
                    "ValidateVolumes", {"stamps": stamps},
                    args_size=8 + FID_VERSION_BYTES * len(stamps))
                valid_count = sum(
                    1 for valid, _ in result.result["results"].values()
                    if valid)
                self._observe_rpc("volume", len(stamps), valid=valid_count)
                for volid, (valid, stamp) in result.result["results"].items():
                    info = self.cache.volume_info(volid)
                    if valid:
                        self.stats.successes += 1
                        self.stats.objects_saved += len(by_volume[volid])
                        info.callback = True
                        info.stamp = stamp
                    else:
                        info.drop()
                        need_object_validation.extend(by_volume[volid])
        else:
            for entries in by_volume.values():
                need_object_validation.extend(entries)

        yield from self.validate_objects(need_object_validation)
        return len(need_object_validation)

    def validate_objects(self, entries):
        """Process body: batched per-object validation of ``entries``."""
        entries = [e for e in entries if not e.local and e.version is not None]
        for start in range(0, len(entries), self.batch_size):
            batch = entries[start:start + self.batch_size]
            pairs = [(e.fid, e.version) for e in batch]
            result = yield self.conn.call(
                "ValidateAttrs", {"pairs": pairs},
                args_size=8 + FID_VERSION_BYTES * len(pairs))
            self.stats.objects_validated += len(batch)
            self._observe_rpc("object", len(batch))
            outcomes = result.result["results"]
            for entry in batch:
                valid, status = outcomes.get(entry.fid, (False, None))
                if valid:
                    entry.callback = True
                elif status is not None:
                    # Stale: keep the fresh status, drop stale data.
                    entry.apply_status(status)
                    entry.content = None
                    entry.children = None
                    entry.target = None
                    entry.callback = True
                else:
                    # Deleted on the server.
                    if not entry.dirty:
                        self.cache.remove(entry.fid)
        return len(entries)
